"""Multi-round operation of the crowdsourcing market.

Section III-B: "the reverse auction is executed round by round", with
the paper analysing a single round and noting the same design applies to
the rest.  This module supplies the round-by-round layer: a campaign of
``R`` consecutive rounds, each a fresh workload draw, with losers of one
round optionally re-entering the next (a phone whose active time ended
unallocated plausibly tries again later — the "retry" policy), and
per-round plus cumulative accounting.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro import obs
from repro.errors import SimulationError
from repro.mechanisms.base import Mechanism
from repro.metrics.summary import Summary, summarize
from repro.model.smartphone import SmartphoneProfile
from repro.obs.clock import perf_seconds
from repro.obs.live import (
    Heartbeat,
    HeartbeatConfig,
    append_worker_beat,
    merge_heartbeats,
)
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import Scenario
from repro.simulation.workload import WorkloadConfig
from repro.utils.rng import RngStreams
from repro.utils.validation import check_in_range, check_positive, check_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.faults.plan import FaultConfig

#: Retry policies for phones that ended a round unallocated.
RETRY_NONE = "none"       # every round draws a fresh population
RETRY_LOSERS = "losers"   # losers re-enter the next round
_POLICIES = (RETRY_NONE, RETRY_LOSERS)


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Outcome of a multi-round campaign.

    Attributes
    ----------
    rounds:
        The per-round :class:`~repro.simulation.SimulationResult` list.
    total_welfare / total_payment:
        Sums over rounds.
    welfare_per_round / overpayment_per_round:
        :class:`~repro.metrics.Summary` across rounds (overpayment is
        ``None`` when no round had a defined ratio).
    returning_phones:
        How many phones re-entered later rounds under the retry policy.
    dropped_phones / delivery_failures / recovered_tasks:
        Cumulative fault accounting across rounds (all zero unless the
        campaign ran with ``fault_config``).
    """

    rounds: Tuple[SimulationResult, ...]
    total_welfare: float
    total_payment: float
    welfare_per_round: Summary
    overpayment_per_round: Optional[Summary]
    returning_phones: int
    dropped_phones: int = 0
    delivery_failures: int = 0
    recovered_tasks: int = 0

    @property
    def num_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)


def _reentry_profile(
    profile: SmartphoneProfile,
    next_id: int,
    num_slots: int,
    rng,
) -> SmartphoneProfile:
    """A loser re-enters the next round: same cost, fresh window.

    The new window has the same length as the old one (the phone's idle
    pattern), starting at a uniformly random slot.
    """
    length = min(profile.active_length, num_slots)
    arrival = int(rng.integers(1, num_slots - length + 2))
    return SmartphoneProfile(
        phone_id=next_id,
        arrival=arrival,
        departure=arrival + length - 1,
        cost=profile.cost,
    )


@dataclasses.dataclass(frozen=True)
class _RoundResult:
    """One independent round's outcome, as returned by a round worker."""

    result: SimulationResult
    dropped: int
    failures: int
    recovered: int
    elapsed_seconds: float
    worker_pid: int


def _run_round(
    mechanism: Mechanism,
    workload: WorkloadConfig,
    round_seed: int,
    fault_config: Optional["FaultConfig"],
    fault_round_seed: int,
    round_index: int,
    heartbeat_path: Optional[pathlib.Path] = None,
) -> _RoundResult:
    """Execute one carried-over-free round (the process-pool entry point).

    Mirrors the serial loop's body for ``retry_policy="none"``, where no
    phones are carried between rounds; the per-round seeds are computed
    by the parent, so results do not depend on which worker runs what.
    """
    start = perf_seconds()
    base = workload.generate(seed=round_seed)
    scenario = Scenario(
        list(base.profiles),
        base.schedule,
        metadata={**base.metadata, "round": round_index},
    )
    dropped = failures = recovered = 0
    if fault_config is not None:
        from repro.faults.recovery import run_with_faults

        faulty = run_with_faults(
            scenario, fault_config, seed=fault_round_seed
        )
        result = faulty.result
        dropped = len(faulty.report.dropped)
        failures = len(faulty.report.failed_deliverers)
        recovered = len(faulty.report.recovered_tasks)
    else:
        result = SimulationEngine().run(mechanism, scenario)
    elapsed = perf_seconds() - start
    if heartbeat_path is not None:
        append_worker_beat(
            heartbeat_path, "round", round_index, elapsed
        )
    return _RoundResult(
        result=result,
        dropped=dropped,
        failures=failures,
        recovered=recovered,
        elapsed_seconds=elapsed,
        worker_pid=os.getpid(),
    )


def _run_rounds_parallel(
    mechanism: Mechanism,
    workload: WorkloadConfig,
    num_rounds: int,
    streams: RngStreams,
    fault_streams: RngStreams,
    fault_config: Optional["FaultConfig"],
    workers: int,
    heartbeat: Optional[HeartbeatConfig] = None,
) -> List[_RoundResult]:
    """Fan independent rounds out over a process pool, round order kept.

    Per-round seeds are derived in the parent from the same stream
    hierarchy the serial loop uses, so round ``k`` sees the same draw
    regardless of worker count; per-worker wall time is recorded on the
    ``campaign.worker.seconds`` histogram.  With a ``heartbeat``,
    workers pulse per-round sidecar files (merged deterministically
    after collection) and the parent pulses progress as rounds are
    collected in round order.
    """
    heartbeat_path = heartbeat.path if heartbeat is not None else None
    pulse = (
        Heartbeat(heartbeat, total=num_rounds)
        if heartbeat is not None
        else None
    )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_round,
                mechanism,
                workload,
                streams.child(round_index).seed,
                fault_config,
                fault_streams.child(round_index).seed,
                round_index,
                heartbeat_path,
            )
            for round_index in range(num_rounds)
        ]
        round_results = [future.result() for future in futures]
    for round_index, round_result in enumerate(round_results):
        obs.observe(
            "campaign.worker.seconds", round_result.elapsed_seconds
        )
        if pulse is not None:
            pulse.beat(round_index)
    if heartbeat_path is not None:
        merge_heartbeats(heartbeat_path)
    return round_results


def _run_journaled_round(
    scenario: Scenario, round_dir: pathlib.Path
) -> SimulationResult:
    """Run one fault-free round through a journaling platform.

    Drives the scenario's truthful bids slot by slot through a
    :class:`~repro.durability.JournaledPlatform` (write-ahead journal in
    ``round_dir``).  The outcome equals the plain online-greedy engine
    run's value-for-value; payments are settled at departure slots, so
    their dict insertion order follows settlement, not allocation.
    """
    # Lazy import: durability wraps the platform, which lives next door.
    from repro.durability import Journal
    from repro.durability.journaled import JournaledPlatform
    from repro.durability.replay import execute_commands, round_commands

    commands = round_commands(scenario.truthful_bids(), scenario, plan=None)
    journal = Journal(round_dir)
    try:
        journaled = JournaledPlatform(
            journal, num_slots=scenario.num_slots
        )
        outcome = execute_commands(journaled, commands)
    finally:
        journal.close()
    assert outcome is not None
    return SimulationEngine.package("online-greedy", outcome, scenario)


def run_campaign(
    mechanism: Mechanism,
    workload: WorkloadConfig,
    num_rounds: int,
    seed: int = 0,
    retry_policy: str = RETRY_NONE,
    max_retries_per_round: int = 1000,
    fault_config: Optional["FaultConfig"] = None,
    fault_seed: Optional[int] = None,
    workers: int = 1,
    journal_dir: Optional[os.PathLike] = None,
    heartbeat: Optional[HeartbeatConfig] = None,
) -> CampaignResult:
    """Run ``num_rounds`` consecutive rounds of ``workload``.

    Parameters
    ----------
    mechanism:
        The auction mechanism operating the market (same in each round).
    workload:
        Per-round workload; each round is an independent seeded draw.
    num_rounds:
        Number of rounds (>= 1).
    seed:
        Master seed; round ``k`` uses an independent child stream.
    retry_policy:
        ``"none"`` (default) or ``"losers"`` — whether phones that ended
        a round unallocated re-enter the next round with a fresh window
        (and a fresh id, since ids are per-round).
    max_retries_per_round:
        Safety cap on carried-over phones per round.
    fault_config:
        Optional :class:`~repro.faults.FaultConfig`; when given, every
        round runs through the fault-aware platform driver
        (:func:`~repro.faults.run_with_faults`) instead of the plain
        mechanism, and only *delivering* winners count as winners — a
        phone that dropped out or failed its task re-enters the next
        round under the ``"losers"`` policy.  Requires the
        ``online-greedy`` mechanism (faults are a platform-level
        phenomenon; batch mechanisms have no slot to drop out of).
    fault_seed:
        Master seed of the per-round fault draws (default: ``seed``).
    workers:
        Number of worker processes for the rounds.  Only valid with
        ``retry_policy="none"``, where rounds are mutually independent
        (each draws its own seeded population and fault plan); results
        are collected in round order and identical to a serial run.
        Under ``"losers"``, round ``k+1``'s population depends on round
        ``k``'s outcome, so the campaign is inherently sequential.
    journal_dir:
        When given, every round is driven slot by slot through a
        :class:`~repro.durability.JournaledPlatform` writing a
        write-ahead journal into ``journal_dir/round-NNNN`` — outcomes
        equal the unjournaled campaign's (winners, allocation, and
        payments value-for-value; payment *insertion order* follows the
        platform's slot-by-slot settlement rather than the batch
        mechanism's allocation order), and a killed campaign's rounds
        can be inspected or replayed with ``repro-crowd replay``.
        Requires the ``online-greedy`` mechanism (journaling is a
        platform-level concern) and ``workers=1`` (one journal writer
        per directory).
    heartbeat:
        Optional :class:`~repro.obs.live.HeartbeatConfig`; when given,
        the campaign emits periodic progress pulses (rounds/second,
        ETA, journal fsync latency, reassignment counts) to the
        configured JSONL file and/or console.  Heartbeats observe the
        run without participating in it — outcomes are bit-identical
        to an unmonitored campaign.
    """
    check_type("num_rounds", num_rounds, int)
    check_positive("num_rounds", num_rounds)
    check_in_range("max_retries_per_round", max_retries_per_round, low=0)
    if retry_policy not in _POLICIES:
        raise SimulationError(
            f"unknown retry_policy {retry_policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if workers > 1 and retry_policy != RETRY_NONE:
        raise SimulationError(
            "workers > 1 requires retry_policy='none': under 'losers' "
            "each round's population depends on the previous round"
        )
    if fault_config is not None and mechanism.name != "online-greedy":
        raise SimulationError(
            f"fault injection requires the 'online-greedy' mechanism "
            f"(faults unfold slot by slot on the platform), got "
            f"{mechanism.name!r}"
        )
    if journal_dir is not None:
        if mechanism.name != "online-greedy":
            raise SimulationError(
                f"journaling requires the 'online-greedy' mechanism "
                f"(the journal records slot-by-slot platform commands), "
                f"got {mechanism.name!r}"
            )
        if workers > 1:
            raise SimulationError(
                "journaling requires workers=1: each round journal has "
                "exactly one writer"
            )

    streams = RngStreams(seed)
    fault_streams = RngStreams(fault_seed if fault_seed is not None else seed)
    engine = SimulationEngine()
    results: List[SimulationResult] = []
    carried: List[SmartphoneProfile] = []
    returning = 0
    dropped = 0
    failures = 0
    recovered = 0

    with obs.span(
        "campaign.run",
        mechanism=mechanism.name,
        rounds=num_rounds,
        workers=workers,
    ) as tel:
        if workers > 1:
            round_results = _run_rounds_parallel(
                mechanism,
                workload,
                num_rounds,
                streams,
                fault_streams,
                fault_config,
                workers,
                heartbeat=heartbeat,
            )
            for round_result in round_results:
                results.append(round_result.result)
                dropped += round_result.dropped
                failures += round_result.failures
                recovered += round_result.recovered
        else:
            pulse = (
                Heartbeat(heartbeat, total=num_rounds)
                if heartbeat is not None
                else None
            )
            for round_index in range(num_rounds):
                round_dir: Optional[pathlib.Path] = None
                if journal_dir is not None:
                    round_dir = (
                        pathlib.Path(os.fspath(journal_dir))
                        / f"round-{round_index:04d}"
                    )
                with obs.span("campaign.round", round=round_index):
                    base = workload.generate(
                        seed=streams.child(round_index).seed
                    )
                    profiles = list(base.profiles)
                    if carried:
                        reentry_rng = streams.get(f"reentry-{round_index}")
                        next_id = (
                            max((p.phone_id for p in profiles), default=-1) + 1
                        )
                        for loser in carried[:max_retries_per_round]:
                            profiles.append(
                                _reentry_profile(
                                    loser,
                                    next_id,
                                    workload.num_slots,
                                    reentry_rng,
                                )
                            )
                            next_id += 1
                        returning += min(len(carried), max_retries_per_round)
                    scenario = Scenario(
                        profiles,
                        base.schedule,
                        metadata={**base.metadata, "round": round_index},
                    )
                    if fault_config is not None:
                        from repro.faults.recovery import run_with_faults

                        faulty = run_with_faults(
                            scenario,
                            fault_config,
                            seed=fault_streams.child(round_index).seed,
                            journal_dir=round_dir,
                        )
                        result = faulty.result
                        winner_ids = set(faulty.report.delivered)
                        dropped += len(faulty.report.dropped)
                        failures += len(faulty.report.failed_deliverers)
                        recovered += len(faulty.report.recovered_tasks)
                    elif round_dir is not None:
                        result = _run_journaled_round(scenario, round_dir)
                        winner_ids = set(result.outcome.winners)
                    else:
                        result = engine.run(mechanism, scenario)
                        winner_ids = set(result.outcome.winners)
                    results.append(result)

                    if retry_policy == RETRY_LOSERS:
                        carried = [
                            profile
                            for profile in scenario.profiles
                            if profile.phone_id not in winner_ids
                        ]
                    else:
                        carried = []
                if pulse is not None:
                    pulse.beat(round_index, welfare=result.true_welfare)
        tel.set_attribute("returning_phones", returning)
        tel.set_attribute("recovered_tasks", recovered)

    return aggregate_rounds(
        results,
        returning=returning,
        dropped=dropped,
        failures=failures,
        recovered=recovered,
    )


def aggregate_rounds(
    results: List[SimulationResult],
    returning: int = 0,
    dropped: int = 0,
    failures: int = 0,
    recovered: int = 0,
) -> CampaignResult:
    """Fold per-round results into a :class:`CampaignResult`.

    Shared by the serial/parallel campaign loop above and the sharded
    runner (:mod:`repro.experiments.sharding`), which assembles rounds
    from shard workers and checkpoints — both paths must aggregate in the
    identical float-summation order for byte-identical campaign results.
    """
    ratios = [r.overpayment_ratio for r in results]
    defined = [r for r in ratios if r is not None]
    return CampaignResult(
        rounds=tuple(results),
        total_welfare=sum(r.true_welfare for r in results),
        total_payment=sum(r.total_payment for r in results),
        welfare_per_round=summarize([r.true_welfare for r in results]),
        overpayment_per_round=summarize(defined) if defined else None,
        returning_phones=returning,
        dropped_phones=dropped,
        delivery_failures=failures,
        recovered_tasks=recovered,
    )
