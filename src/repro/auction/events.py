"""Typed event records emitted by the incremental platform.

Every state change the platform makes is logged as one event; examples
print them to narrate a round, and tests assert on the sequence (e.g.
"payment settled exactly at the reported departure slot").

Events serialise losslessly: :meth:`AuctionEvent.to_dict` produces a
JSON-friendly dict tagged with the event's class name, and
:func:`event_from_dict` reconstructs the exact event — the round-trip
the JSONL trace export (:class:`~repro.obs.JsonlSink`) relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.errors import EventDecodeError


@dataclasses.dataclass(frozen=True)
class AuctionEvent:
    """Base class: something happened in ``slot``."""

    slot: int

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return f"[slot {self.slot}] {type(self).__name__}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation, tagged with the event type."""
        payload: Dict[str, Any] = {"event": type(self).__name__}
        payload.update(dataclasses.asdict(self))
        return payload


@dataclasses.dataclass(frozen=True)
class BidSubmitted(AuctionEvent):
    """A smartphone joined and submitted its bid."""

    phone_id: int
    arrival: int
    departure: int
    cost: float

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] phone {self.phone_id} joined: window "
            f"[{self.arrival}, {self.departure}], claimed cost "
            f"{self.cost:g}"
        )


@dataclasses.dataclass(frozen=True)
class TasksAnnounced(AuctionEvent):
    """The platform announced the tasks arriving this slot.

    ``value`` is the per-task value ``ν`` of the announcement; the
    platform's own observational emission predates the field and leaves
    it at ``0.0``, while journal *command* records carry the real value
    so a replay can re-announce the tasks exactly.
    """

    count: int
    value: float = 0.0

    def describe(self) -> str:
        return f"[slot {self.slot}] {self.count} task(s) announced"


@dataclasses.dataclass(frozen=True)
class TaskAllocated(AuctionEvent):
    """A task was assigned to a smartphone."""

    task_id: int
    phone_id: int
    claimed_cost: float

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] task {self.task_id} -> phone "
            f"{self.phone_id} (claimed cost {self.claimed_cost:g})"
        )


@dataclasses.dataclass(frozen=True)
class TaskUnserved(AuctionEvent):
    """A task found no eligible smartphone."""

    task_id: int

    def describe(self) -> str:
        return f"[slot {self.slot}] task {self.task_id} went unserved"


@dataclasses.dataclass(frozen=True)
class PaymentSettled(AuctionEvent):
    """A winner was paid at its reported departure slot."""

    phone_id: int
    amount: float

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] phone {self.phone_id} paid "
            f"{self.amount:g}"
        )


@dataclasses.dataclass(frozen=True)
class SlotClosed(AuctionEvent):
    """The platform finished processing a slot."""

    pool_size: int

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] closed; {self.pool_size} active "
            f"unallocated phone(s) remain"
        )


@dataclasses.dataclass(frozen=True)
class PhoneDropped(AuctionEvent):
    """A smartphone departed early, without notice, during ``slot``."""

    phone_id: int

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] phone {self.phone_id} dropped out "
            f"before its reported departure"
        )


@dataclasses.dataclass(frozen=True)
class TaskFailed(AuctionEvent):
    """An allocated task's winner failed to deliver it.

    ``reason`` is ``"dropout"`` (the winner departed early) or
    ``"no-delivery"`` (the winner stayed but never handed in results).
    """

    task_id: int
    phone_id: int
    reason: str

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] task {self.task_id} failed: phone "
            f"{self.phone_id} did not deliver ({self.reason})"
        )


@dataclasses.dataclass(frozen=True)
class TaskReassigned(AuctionEvent):
    """A failed task was reallocated to the next cheapest eligible bid."""

    task_id: int
    from_phone: int
    to_phone: int
    claimed_cost: float

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] task {self.task_id} reassigned: phone "
            f"{self.from_phone} -> phone {self.to_phone} (claimed cost "
            f"{self.claimed_cost:g})"
        )


@dataclasses.dataclass(frozen=True)
class PaymentWithheld(AuctionEvent):
    """A non-delivering winner's payment was withheld.

    The payment rule pays for delivered sensing results only; a winner
    that drops out or fails its task is paid nothing.
    """

    phone_id: int
    reason: str

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] payment withheld from phone "
            f"{self.phone_id} ({self.reason})"
        )


@dataclasses.dataclass(frozen=True)
class RoundStarted(AuctionEvent):
    """A round opened: the platform's configuration, for the journal.

    The first record of every write-ahead journal, carrying everything
    needed to reconstruct the platform during replay.  ``slot`` is ``0``
    by convention (the round has not reached slot 1 yet).
    """

    num_slots: int
    reserve_price: bool
    payment_rule: str
    max_reassignments: int

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] round started: {self.num_slots} slot(s), "
            f"payment rule {self.payment_rule!r}"
        )


@dataclasses.dataclass(frozen=True)
class FailureReported(AuctionEvent):
    """A phone was reported as a non-deliverer (command record).

    ``CrowdsourcingPlatform.report_task_failure`` mutates state without
    emitting an observational event (the failure only *manifests* at
    settlement); the journal still needs a record of the command, which
    is this event.
    """

    phone_id: int

    def describe(self) -> str:
        return (
            f"[slot {self.slot}] phone {self.phone_id} reported as a "
            f"non-deliverer"
        )


@dataclasses.dataclass(frozen=True)
class SlotAdvanced(AuctionEvent):
    """The platform was told to close the current slot (command record)."""

    def describe(self) -> str:
        return f"[slot {self.slot}] slot close requested"


@dataclasses.dataclass(frozen=True)
class RoundFinalized(AuctionEvent):
    """The round's outcome was sealed (command record)."""

    def describe(self) -> str:
        return f"[slot {self.slot}] round finalized"


#: Every concrete event type, keyed by class name (the ``"event"`` tag
#: of :meth:`AuctionEvent.to_dict`).
EVENT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        BidSubmitted,
        TasksAnnounced,
        TaskAllocated,
        TaskUnserved,
        PaymentSettled,
        SlotClosed,
        PhoneDropped,
        TaskFailed,
        TaskReassigned,
        PaymentWithheld,
        RoundStarted,
        FailureReported,
        SlotAdvanced,
        RoundFinalized,
    )
}


def event_from_dict(payload: Dict[str, Any]) -> AuctionEvent:
    """Reconstruct an event from its :meth:`~AuctionEvent.to_dict` form.

    Raises :class:`~repro.errors.EventDecodeError` — a ``ValueError``
    subclass carrying the offending payload — when the payload is not a
    mapping, the ``"event"`` tag is missing or unknown (e.g. a trace
    written by an incompatible version), or the fields do not match the
    event class (missing, extra, or keyword-invalid).
    """
    if not isinstance(payload, dict):
        raise EventDecodeError(
            f"event payload must be a mapping, got "
            f"{type(payload).__name__}",
            payload=payload,
        )
    tag = payload.get("event")
    if tag not in EVENT_TYPES:
        raise EventDecodeError(
            f"unknown event type {tag!r}; expected one of "
            f"{sorted(EVENT_TYPES)}",
            payload=payload,
        )
    fields = {k: v for k, v in payload.items() if k != "event"}
    try:
        return EVENT_TYPES[tag](**fields)  # type: ignore[no-any-return]
    except TypeError as exc:
        raise EventDecodeError(
            f"malformed {tag} payload: {exc}", payload=payload
        ) from exc
