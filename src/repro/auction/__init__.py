"""The cloud platform: incremental, slot-by-slot auction operation.

:class:`~repro.auction.platform.CrowdsourcingPlatform` executes the
online mechanism the way Section V describes it operationally — bids are
submitted when phones join, tasks are announced per slot, allocations
happen at the start of every slot, and payments are settled at reported
departures — and produces an outcome provably identical to the batch
:class:`~repro.mechanisms.OnlineGreedyMechanism` (the integration tests
assert equality).
"""

from repro.auction.events import (
    EVENT_TYPES,
    AuctionEvent,
    BidSubmitted,
    FailureReported,
    PaymentSettled,
    PaymentWithheld,
    PhoneDropped,
    RoundFinalized,
    RoundStarted,
    SlotAdvanced,
    SlotClosed,
    TaskAllocated,
    TaskFailed,
    TaskReassigned,
    TasksAnnounced,
    TaskUnserved,
    event_from_dict,
)
from repro.auction.multi_round import (
    RETRY_LOSERS,
    RETRY_NONE,
    CampaignResult,
    run_campaign,
)
from repro.auction.platform import CrowdsourcingPlatform
from repro.auction.round_driver import replay_scenario

__all__ = [
    "CrowdsourcingPlatform",
    "replay_scenario",
    "run_campaign",
    "CampaignResult",
    "RETRY_NONE",
    "RETRY_LOSERS",
    "AuctionEvent",
    "EVENT_TYPES",
    "event_from_dict",
    "BidSubmitted",
    "TasksAnnounced",
    "TaskAllocated",
    "TaskUnserved",
    "PaymentSettled",
    "SlotClosed",
    "PhoneDropped",
    "TaskFailed",
    "TaskReassigned",
    "PaymentWithheld",
    "RoundStarted",
    "FailureReported",
    "SlotAdvanced",
    "RoundFinalized",
]
