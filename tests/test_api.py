"""The public API surface: everything in ``repro.__all__`` works."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_classes_exported(self):
        for name in (
            "Bid",
            "SmartphoneProfile",
            "TaskSchedule",
            "OfflineVCGMechanism",
            "OnlineGreedyMechanism",
            "WorkloadConfig",
            "SimulationEngine",
            "CrowdsourcingPlatform",
            "run_campaign",
        ):
            assert name in repro.__all__

    def test_module_docstring_quickstart_runs(self):
        """The doctest-style snippet in the package docstring is live."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_errors_exported_and_hierarchical(self):
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.MechanismError, repro.ReproError)
        assert issubclass(repro.BidConstraintError, repro.ValidationError)
        assert issubclass(repro.ValidationError, ValueError)

    def test_mechanism_registry_reachable(self):
        names = repro.available_mechanisms()
        assert "offline-vcg" in names
        mechanism = repro.create_mechanism("online-greedy")
        assert isinstance(mechanism, repro.OnlineGreedyMechanism)


class TestEndToEndViaPublicApi:
    """The README quickstart, as a test."""

    def test_readme_quickstart(self):
        scenario = repro.WorkloadConfig.paper_default().generate(seed=7)
        engine = repro.SimulationEngine()
        offline = engine.run(repro.OfflineVCGMechanism(), scenario)
        online = engine.run(repro.OnlineGreedyMechanism(), scenario)
        assert offline.true_welfare > 0
        assert online.true_welfare > 0
        assert offline.claimed_welfare >= online.claimed_welfare

    def test_readme_worked_example(self):
        from repro.simulation.paper_example import (
            paper_example_bids,
            paper_example_schedule,
        )

        outcome = repro.OnlineGreedyMechanism().run(
            paper_example_bids(), paper_example_schedule()
        )
        assert outcome.payment(1) == pytest.approx(9.0)
