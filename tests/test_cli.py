"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSimulate:
    def test_basic_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--slots", "8", "--seed", "1"
        )
        assert code == 0
        assert "Round metrics" in out
        assert "social welfare" in out

    def test_mechanism_choice(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "simulate",
            "--slots", "8",
            "--mechanism", "offline-vcg",
        )
        assert code == 0
        assert "offline-vcg" in out

    def test_fixed_price_requires_price(self, capsys):
        code, _, err = run_cli(
            capsys, "simulate", "--slots", "8", "--mechanism", "fixed-price"
        )
        assert code == 2
        assert "--price is required" in err

    def test_fixed_price_with_price(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "simulate",
            "--slots", "8",
            "--mechanism", "fixed-price",
            "--price", "20",
        )
        assert code == 0

    def test_trace_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "round.json"
        code, out_saved, _ = run_cli(
            capsys,
            "simulate",
            "--slots", "8",
            "--seed", "4",
            "--save-trace", str(trace),
        )
        assert code == 0
        assert trace.exists()
        json.loads(trace.read_text())  # valid JSON

        code, out_replayed, _ = run_cli(
            capsys, "simulate", "--from-trace", str(trace)
        )
        assert code == 0

        def metrics_only(text):
            return [
                line
                for line in text.splitlines()
                if "welfare" in line or "payment" in line
            ]

        assert metrics_only(out_saved) == metrics_only(out_replayed)

    def test_online_options(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "simulate",
            "--slots", "8",
            "--reserve-price",
            "--payment-rule", "exact",
        )
        assert code == 0


class TestFigures:
    def test_single_figure(self, capsys):
        code, out, _ = run_cli(
            capsys, "figures", "fig7", "--repetitions", "1"
        )
        assert code == 0
        assert "Fig. 7" in out
        assert "offline" in out and "online" in out

    def test_unknown_figure(self, capsys):
        code, _, err = run_cli(capsys, "figures", "fig99")
        assert code == 2
        assert "unknown figure" in err

    def test_csv_export(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "figures",
            "fig7",
            "--repetitions", "1",
            "--csv-dir", str(tmp_path),
        )
        assert code == 0
        csv = (tmp_path / "fig7.csv").read_text()
        assert csv.startswith("phone_rate,")


class TestAudit:
    def test_truthful_mechanism_passes(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "audit",
            "--slots", "8",
            "--mechanism", "offline-vcg",
            "--max-phones", "5",
        )
        assert code == 0
        assert "PASS" in out

    def test_untruthful_mechanism_fails(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "audit",
            "--slots", "10",
            "--seed", "1",
            "--mechanism", "second-price-slot",
            "--max-phones", "15",
        )
        assert code == 1
        assert "FAIL" in out


class TestCampaign:
    def test_basic_campaign(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--slots", "6",
            "--rounds", "2",
            "--seed", "3",
        )
        assert code == 0
        assert "Per-round results" in out
        assert "total welfare" in out

    def test_retry_losers(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--slots", "6",
            "--rounds", "2",
            "--retry-losers",
        )
        assert code == 0
        assert "retry=losers" in out


class TestShardedCampaign:
    def test_cities_flag_routes_to_sharded_runner(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--cities", "2",
            "--slots", "6",
            "--rounds", "2",
            "--seed", "3",
        )
        assert code == 0
        assert "city-0" in out and "city-1" in out
        assert "total welfare" in out

    def test_json_payload_and_checkpoints(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--cities", "2",
            "--shards", "2",
            "--slots", "6",
            "--rounds", "3",
            "--seed", "3",
            "--checkpoint-dir", str(tmp_path),
            "--quiet", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["cities"] == 2
        assert payload["rounds"] == 6
        assert payload["shards_per_city"] == 2
        assert len(list(tmp_path.glob("*.ckpt.jsonl"))) == 4

    def test_sharded_rejects_retry_losers(self, capsys):
        code, _, err = run_cli(
            capsys,
            "campaign",
            "--cities", "2",
            "--rounds", "2",
            "--retry-losers",
        )
        assert code == 2
        assert "retry-losers" in err

    def test_sharded_rejects_journal_dir(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "campaign",
            "--shards", "2",
            "--rounds", "2",
            "--journal-dir", str(tmp_path),
        )
        assert code == 2
        assert "journal" in err


class TestExample:
    def test_worked_example(self, capsys):
        code, out, _ = run_cli(capsys, "example")
        assert code == 0
        assert "Fig. 4" in out
        assert "gain" in out and "4" in out


class TestLint:
    def test_dirty_tree_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        code, out, _ = run_cli(capsys, "lint", str(tmp_path))
        assert code == 1
        assert "no-global-random" in out

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("import numpy as np\n\nrng = np.random.default_rng(0)\n")
        code, out, _ = run_cli(capsys, "lint", str(tmp_path))
        assert code == 0
        assert "clean" in out

    def test_json_format(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(acc=[]):\n    return acc\n")
        code, out, _ = run_cli(
            capsys, "lint", str(tmp_path), "--format", "json"
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "no-mutable-default"

    def test_rule_selection(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\ndef f(acc=[]):\n    return acc\n")
        code, out, _ = run_cli(
            capsys, "lint", str(tmp_path), "--rule", "no-global-random"
        )
        assert code == 1
        assert "no-mutable-default" not in out

    def test_nonexistent_path_rejected(self, capsys, tmp_path):
        # A typo'd path must not look clean.
        code, _, err = run_cli(capsys, "lint", str(tmp_path / "nope"))
        assert code == 2
        assert "does not exist" in err

    def test_unknown_rule_rejected(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "lint", str(tmp_path), "--rule", "no-such-rule"
        )
        assert code == 2
        assert "unknown lint rule" in err

    def test_shipped_tree_is_clean(self, capsys):
        # The acceptance bar: the linter passes on the repo itself.
        code, out, _ = run_cli(capsys, "lint", "src", "tests", "benchmarks")
        assert code == 0, out


class TestReport:
    def test_report_to_stdout(self, capsys):
        code, out, _ = run_cli(capsys, "report", "--repetitions", "1")
        assert code == 0
        assert "# Reproduction report" in out
        assert "## fig11:" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        code, out, _ = run_cli(
            capsys,
            "report",
            "--repetitions", "1",
            "--out", str(target),
        )
        assert code == 0
        assert "written to" in out
        assert target.read_text().startswith("# Reproduction report")


class TestChaos:
    def test_chaos_smoke(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "chaos",
            "--slots", "10",
            "--dropout-prob", "0.3",
            "--failure-prob", "0.2",
            "--seed", "5",
        )
        assert code == 0
        assert "Injected faults & recovery" in out
        assert "Reliability vs. paired fault-free run" in out
        assert "completion rate" in out
        assert "passed all fault-aware invariant checks" in out

    def test_chaos_rejects_bad_probability(self, capsys):
        code, _, err = run_cli(
            capsys, "chaos", "--slots", "8", "--dropout-prob", "1.5"
        )
        assert code == 2
        assert "dropout_prob" in err

    def test_campaign_with_faults(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--slots", "8",
            "--rounds", "2",
            "--dropout-prob", "0.3",
            "--seed", "3",
        )
        assert code == 0
        assert "phones dropped" in out

    def test_figures_checkpoint_resume(self, capsys, tmp_path):
        args = (
            "figures", "fig6",
            "--repetitions", "1",
            "--checkpoint-dir", str(tmp_path),
        )
        code, first, _ = run_cli(capsys, *args)
        assert code == 0
        assert any(tmp_path.rglob("*.json"))
        code, second, _ = run_cli(capsys, *args)  # resumes from checkpoints
        assert code == 0
        assert first == second


class TestTrace:
    def test_trace_covers_every_span_family(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "trace",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
        )
        assert code == 0
        for phase in (
            "matching.solver.solve",
            "payment.algorithm2",
            "platform.slot",
            "mechanism.run",
            "sweep.run",
            "sweep.point",
        ):
            assert phase in out, phase

    def test_trace_writes_jsonl_and_snapshot(self, capsys, tmp_path):
        from repro.auction.events import event_from_dict
        from repro.obs import load_snapshot, read_jsonl

        trace_path = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            capsys,
            "trace",
            "--out", str(trace_path),
            "--snapshot-dir", str(tmp_path),
            "--label", "cli-test",
            "--repetitions", "1",
        )
        assert code == 0

        records = read_jsonl(trace_path)
        spans = [r for r in records if r["record"] == "span"]
        events = [r for r in records if r["record"] == "event"]
        assert spans and events
        # Every exported event reconstructs through the registry.
        for record in events:
            event_from_dict(record["event"])

        snapshot = load_snapshot(tmp_path / "BENCH_cli-test.json")
        assert snapshot["schema"] == "repro-perf-snapshot/v1"
        assert snapshot["span_count"] == len(spans)
        assert "greedy.candidate_evals" in snapshot["metrics"]["counters"]

    def test_trace_json_mode_emits_machine_payload(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "trace",
            "--json",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["span_count"] > 0
        assert "platform.slot" in payload["phases"]


class TestProfile:
    def test_profile_prints_phase_table_and_hotspots(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "profile",
            "--slots", "6",
            "--seed", "2",
            "--repeat", "1",
        )
        assert code == 0
        assert "Per-phase timings" in out
        assert "mechanism.run" in out
        assert "cumulative" in out  # the cProfile hotspot listing


def _write_bench_series(directory, name, means):
    """One BENCH_*.json baseline per mean, indexed in name order."""
    for index, mean in enumerate(means):
        (directory / f"BENCH_{index:04d}.json").write_text(
            json.dumps(
                {
                    "schema": "repro-bench/1",
                    "benchmarks": {
                        name: {
                            "mean_seconds": mean,
                            "min_seconds": mean,
                            "rounds": 3,
                        }
                    },
                }
            ),
            encoding="utf-8",
        )


class TestTrends:
    def test_dashboard_to_stdout(self, capsys, tmp_path):
        _write_bench_series(tmp_path, "t_solve", [0.10, 0.101, 0.099])
        code, out, _ = run_cli(
            capsys, "trends", "--bench-dir", str(tmp_path)
        )
        assert code == 0
        assert "# Bench trend dashboard" in out
        assert "`t_solve`" in out
        assert "stable" in out

    def test_committed_history_renders(self, capsys):
        # The real BENCH_0004..6 mix: two baseline schemas plus a
        # phase-snapshot file with a disjoint benchmark set.
        code, out, _ = run_cli(capsys, "trends", "--bench-dir", ".")
        assert code == 0
        assert "`BENCH_0004`" in out
        assert "`BENCH_0005`" in out
        assert "`BENCH_0006`" in out

    def test_dashboard_to_file(self, capsys, tmp_path):
        _write_bench_series(tmp_path, "t", [0.1])
        target = tmp_path / "TRENDS.md"
        code, out, _ = run_cli(
            capsys,
            "trends", "--bench-dir", str(tmp_path), "--out", str(target),
        )
        assert code == 0
        assert "written to" in out
        assert target.read_text().startswith("# Bench trend dashboard")

    def test_fail_on_drift_gates(self, capsys, tmp_path):
        _write_bench_series(tmp_path, "creeper", [0.10, 0.112, 0.126, 0.142])
        code, out, err = run_cli(
            capsys, "trends", "--bench-dir", str(tmp_path)
        )
        assert code == 0  # reporting alone never fails
        assert "**DRIFTING**" in out
        code, _, err = run_cli(
            capsys,
            "trends", "--bench-dir", str(tmp_path), "--fail-on-drift",
        )
        assert code == 1
        assert "creeper" in err

    def test_json_payload(self, capsys, tmp_path):
        _write_bench_series(tmp_path, "creeper", [0.10, 0.112, 0.126, 0.142])
        code, out, _ = run_cli(
            capsys, "trends", "--bench-dir", str(tmp_path), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["verdicts"]["creeper"] == "drifting"
        assert payload["drifting"] == ["creeper"]

    def test_missing_directory_errors(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "trends", "--bench-dir", str(tmp_path / "nope")
        )
        assert code == 2
        assert "does not exist" in err

    def test_ledger_series_joins_the_dashboard(self, capsys, tmp_path):
        _write_bench_series(tmp_path, "t", [0.1])
        ledger = tmp_path / "RUNS.jsonl"
        code, _, _ = run_cli(
            capsys,
            "campaign", "--slots", "6", "--rounds", "2",
            "--ledger", str(ledger),
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys,
            "trends", "--bench-dir", str(tmp_path),
            "--ledger", str(ledger),
        )
        assert code == 0
        assert "Ledgered runs" in out
        assert "run:campaign:online-greedy" in out


class TestLedgerFlag:
    def test_campaign_appends_a_run_record(self, capsys, tmp_path):
        from repro.obs import RunLedger

        ledger = tmp_path / "RUNS.jsonl"
        code, out, _ = run_cli(
            capsys,
            "campaign", "--slots", "6", "--rounds", "3", "--seed", "2",
            "--ledger", str(ledger),
        )
        assert code == 0
        assert "ledger: run" in out
        view = RunLedger(ledger).read()
        assert len(view.records) == 1
        record = view.records[0]
        assert record.command == "campaign"
        assert record.label == "online-greedy"
        assert record.counters["rounds"] == 3.0
        assert record.wall_seconds > 0

    def test_figures_and_trace_share_the_ledger(self, capsys, tmp_path):
        from repro.obs import RunLedger

        ledger = tmp_path / "RUNS.jsonl"
        code, _, _ = run_cli(
            capsys,
            "figures", "fig7", "--repetitions", "1",
            "--ledger", str(ledger),
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys,
            "trace",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
            "--ledger", str(ledger),
        )
        assert code == 0
        view = RunLedger(ledger).read()
        assert [r.command for r in view.records] == ["figures", "trace"]
        assert view.records[1].counters["spans"] > 0
        assert "trace" in view.records[1].artifacts

    def test_no_flag_writes_no_ledger(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _, _ = run_cli(
            capsys, "campaign", "--slots", "6", "--rounds", "2"
        )
        assert code == 0
        assert not (tmp_path / "RUNS.jsonl").exists()


class TestHeartbeatFlag:
    def test_campaign_heartbeat_file_and_notes(self, capsys, tmp_path):
        from repro.obs import read_heartbeats

        path = tmp_path / "hb.jsonl"
        code, out, _ = run_cli(
            capsys,
            "campaign", "--slots", "6", "--rounds", "6", "--seed", "2",
            "--heartbeat", str(path), "--heartbeat-every", "2",
        )
        assert code == 0
        assert "[heartbeat] round 2/6" in out
        records = read_heartbeats(path)
        assert [r["completed"] for r in records] == [2, 4, 6]

    def test_quiet_silences_the_console_pulse(self, capsys, tmp_path):
        path = tmp_path / "hb.jsonl"
        code, out, _ = run_cli(
            capsys,
            "campaign", "--slots", "6", "--rounds", "4", "--seed", "2",
            "--heartbeat", str(path), "--heartbeat-every", "2", "--quiet",
        )
        assert code == 0
        assert "[heartbeat]" not in out
        assert path.exists()  # the file channel still pulses

    def test_heartbeat_does_not_change_the_outcome(self, capsys, tmp_path):
        args = ("campaign", "--slots", "6", "--rounds", "4", "--seed", "9")
        code, plain, _ = run_cli(capsys, *args)
        assert code == 0
        code, pulsed, _ = run_cli(
            capsys,
            *args,
            "--heartbeat", str(tmp_path / "hb.jsonl"),
            "--heartbeat-every", "2",
        )
        assert code == 0

        def result_lines(text):
            return [
                line
                for line in text.splitlines()
                if "welfare" in line or "payment" in line
            ]

        assert result_lines(plain) == result_lines(pulsed)


class TestTraceTop:
    def test_top_renders_the_hotspot_table(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "trace",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
            "--top", "3",
        )
        assert code == 0
        assert "Hotspots (top 3 by self time)" in out
        assert "self ms" in out

    def test_top_json_payload_names_hotspots(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "trace", "--json",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
            "--top", "2",
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload["hotspots"]) == 2

    def test_without_top_no_hotspot_table(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "trace",
            "--out", str(tmp_path / "trace.jsonl"),
            "--snapshot-dir", str(tmp_path),
            "--repetitions", "1",
        )
        assert code == 0
        assert "Hotspots" not in out


class TestOutputModes:
    def test_default_output_unchanged_by_common_flags(self, capsys):
        _, plain, _ = run_cli(capsys, "example")
        _, again, _ = run_cli(capsys, "example")
        assert plain == again

    def test_quiet_hides_progress_notes_only(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        code, out, _ = run_cli(
            capsys,
            "report", "--repetitions", "1", "--out", str(target), "--quiet",
        )
        assert code == 0
        assert "written to" not in out
        assert target.exists()

    def test_json_mode_replaces_stdout_with_payload(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--slots", "6", "--seed", "1", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["mechanism"] == "online-greedy"
        assert "welfare" in payload

    def test_json_mode_keeps_errors_on_stderr(self, capsys):
        code, out, err = run_cli(
            capsys,
            "simulate", "--slots", "6", "--mechanism", "fixed-price",
            "--json",
        )
        assert code == 2
        assert "--price is required" in err
        assert out.strip() in ("", "{}")


class TestEngineFlag:
    def test_simulate_streaming_engine_matches_batch(self, capsys):
        code_b, out_b, _ = run_cli(
            capsys,
            "simulate", "--slots", "8", "--seed", "1", "--json",
        )
        code_s, out_s, _ = run_cli(
            capsys,
            "simulate", "--slots", "8", "--seed", "1", "--json",
            "--engine", "streaming",
        )
        assert code_b == 0 and code_s == 0
        assert json.loads(out_s) == json.loads(out_b)

    def test_campaign_accepts_engine(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "campaign",
            "--slots", "6",
            "--rounds", "2",
            "--seed", "3",
            "--engine", "streaming",
        )
        assert code == 0
        assert "Per-round results" in out

    def test_figures_accepts_engine(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "figures", "fig7", "--repetitions", "1",
            "--engine", "streaming",
        )
        assert code == 0
        assert "Fig. 7" in out

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "simulate", "--slots", "6", "--engine", "warp",
            )
