"""Smoke tests: every example script must run cleanly.

Examples are user-facing documentation; a broken example is a bug.  Each
script is executed in-process (fast, importable) with its ``main()``
entry point; ``paper_figures`` gets a tiny repetition count via argv.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "second_price_failure.py",
    "noise_mapping.py",
    "traffic_monitoring.py",
    "strategic_agents.py",
    "campaign_cashflow.py",
    "heterogeneous_sensors.py",
    "unreliable_phones.py",
    "crash_recovery.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_paper_figures_example(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(
        sys,
        "argv",
        [
            "paper_figures.py",
            "--repetitions", "1",
            "--out", str(tmp_path),
        ],
    )
    runpy.run_path(
        str(EXAMPLES_DIR / "paper_figures.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    for name in ("FIG6", "FIG7", "FIG8", "FIG9", "FIG10", "FIG11"):
        assert name in out
    for name in ("fig6", "fig11"):
        assert (tmp_path / f"{name}.csv").exists()


def test_every_example_has_a_smoke_test():
    """New example scripts must be added to the smoke list above."""
    scripts = {
        p.name
        for p in EXAMPLES_DIR.glob("*.py")
        if not p.name.startswith("_")
    }
    covered = set(FAST_EXAMPLES) | {"paper_figures.py"}
    assert scripts == covered, (
        f"examples without smoke tests: {scripts - covered}; "
        f"stale entries: {covered - scripts}"
    )
