"""Perf snapshots: aggregation, serialisation, and rendering."""

from __future__ import annotations

from repro.obs import (
    SNAPSHOT_SCHEMA,
    ManualClock,
    Tracer,
    aggregate_spans,
    build_snapshot,
    load_snapshot,
    render_phase_table,
    render_span_tree,
    snapshot_path,
    write_snapshot,
)


def _traced_tracer():
    """Deterministic trace: two 'solve' spans (1s, 3s) under one root."""
    tracer = Tracer(clock=ManualClock(tick=1.0))
    # Readings: root.start=0, s1.start=1, s1.end=2, s2.start=3,
    # (advance 2) s2.end=6, root.end=7.
    with tracer.span("round"):
        with tracer.span("solve", rows=2):
            pass
        with tracer.span("solve", rows=5) as span:
            tracer.clock.advance(2.0)
            span.set_attribute("pivots", 4)
    return tracer


class TestAggregation:
    def test_phases_group_by_name_with_exact_stats(self):
        phases = {p.name: p for p in aggregate_spans(_traced_tracer().spans)}
        solve = phases["solve"]
        assert solve.count == 2
        assert solve.total_seconds == 4.0
        assert solve.mean_seconds == 2.0
        assert (solve.min_seconds, solve.max_seconds) == (1.0, 3.0)
        assert phases["round"].count == 1

    def test_sorted_by_total_time_descending(self):
        names = [p.name for p in aggregate_spans(_traced_tracer().spans)]
        assert names == ["round", "solve"]

    def test_open_spans_are_excluded(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        handle = tracer.span("open.phase")
        handle.__enter__()
        assert aggregate_spans(tracer._stack) == []


class TestSnapshotDocuments:
    def test_build_write_load_round_trip(self, tmp_path):
        tracer = _traced_tracer()
        snapshot = build_snapshot(
            tracer, label="unit", meta={"workload": "tiny"}
        )
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["label"] == "unit"
        assert snapshot["meta"] == {"workload": "tiny"}
        assert snapshot["span_count"] == 3
        assert {p["name"] for p in snapshot["phases"]} == {"round", "solve"}
        # The auto latency histograms appear in the metrics dump.
        assert snapshot["metrics"]["histograms"]["solve.seconds"]["count"] == 2

        path = snapshot_path(tmp_path, "unit")
        assert path.name == "BENCH_unit.json"
        written = write_snapshot(path, snapshot)
        assert load_snapshot(written) == snapshot

    def test_snapshot_path_sanitises_the_label(self, tmp_path):
        path = snapshot_path(tmp_path, "perf smoke/v1")
        assert path.name == "BENCH_perf_smoke_v1.json"


class TestRendering:
    def test_phase_table_lists_every_phase(self):
        table = render_phase_table(aggregate_spans(_traced_tracer().spans))
        assert "phase" in table and "total ms" in table
        assert "round" in table and "solve" in table

    def test_span_tree_indents_children_and_shows_attributes(self):
        tree = render_span_tree(_traced_tracer().spans)
        lines = tree.splitlines()
        assert lines[0].startswith("round")
        assert lines[1].startswith("  solve")
        assert "rows=5" in tree and "pivots=4" in tree

    def test_span_tree_truncates_and_reports_elisions(self):
        tree = render_span_tree(_traced_tracer().spans, max_spans=1)
        assert tree.splitlines()[0].startswith("round")
        assert "2 more span(s) elided" in tree

    def test_empty_trace_renders_placeholder(self):
        assert render_span_tree([]) == "(no spans recorded)"
