"""Counters, gauges, and histogram quantile math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import MODE_BOUNDED, MODE_EXACT, Histogram, MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        assert registry.counters == {"hits": 5.0}

    def test_counter_rejects_negative_amounts(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            registry.increment("hits", -1)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3)
        registry.set_gauge("depth", 1)
        assert registry.gauges == {"depth": 1.0}


class TestHistogramQuantiles:
    def test_quantiles_match_numpy_linear_interpolation(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0]
        histogram = Histogram("latency")
        for value in values:
            histogram.observe(value)
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            expected = float(np.quantile(values, q, method="linear"))
            assert histogram.quantile(q) == pytest.approx(expected)

    def test_median_of_even_sample_interpolates(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(2.5)

    def test_single_observation_is_every_quantile(self):
        histogram = Histogram("latency")
        histogram.observe(42.0)
        assert histogram.quantile(0.0) == 42.0
        assert histogram.quantile(0.5) == 42.0
        assert histogram.quantile(1.0) == 42.0

    def test_observing_after_a_quantile_resorts(self):
        histogram = Histogram("latency")
        histogram.observe(10.0)
        assert histogram.quantile(0.5) == 10.0
        histogram.observe(0.0)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 10.0

    def test_values_keep_recording_order(self):
        histogram = Histogram("latency")
        histogram.observe(3.0)
        histogram.observe(1.0)
        assert histogram.values() == (3.0, 1.0)

    def test_empty_histogram_has_no_quantiles(self):
        with pytest.raises(ObservabilityError, match="empty"):
            Histogram("latency").quantile(0.5)

    def test_quantile_outside_unit_interval_rejected(self):
        histogram = Histogram("latency")
        histogram.observe(1.0)
        with pytest.raises(ObservabilityError, match=r"\[0, 1\]"):
            histogram.quantile(1.5)

    def test_summary_of_empty_histogram(self):
        assert Histogram("latency").summary() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
        }

    def test_summary_statistics(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p50"] == pytest.approx(2.0)


class TestBoundedHistogram:
    def test_quantile_error_stays_within_the_pinned_bound(self):
        # The documented contract: bucket midpoints bound the relative
        # quantile error by (growth - 1) / 2.
        growth = 1.04
        bound = (growth - 1.0) / 2.0
        # 201 points so the probed ranks q * (n - 1) are integers and
        # the exact quantile is a sample value, not an interpolation —
        # the bound is a per-observation bucketing guarantee.
        values = [0.0001 * (1.13**i) for i in range(201)]
        exact = Histogram("lat")
        bounded = Histogram("lat", mode=MODE_BOUNDED, growth=growth)
        for value in values:
            exact.observe(value)
            bounded.observe(value)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95):
            truth = exact.quantile(q)
            approx = bounded.quantile(q)
            assert abs(approx - truth) / truth <= bound + 1e-12, q

    def test_memory_bounded_by_dynamic_range_not_count(self):
        bounded = Histogram("lat", mode=MODE_BOUNDED)
        for i in range(100_000):
            bounded.observe(0.001 + (i % 100) * 0.0001)
        assert bounded.count == 100_000
        # 100 distinct values over a tiny range fold into few buckets.
        assert bounded.bucket_count < 100

    def test_exact_aggregates_survive_bucketing(self):
        bounded = Histogram("lat", mode=MODE_BOUNDED)
        for value in (1.0, 2.0, 3.0):
            bounded.observe(value)
        assert bounded.count == 3
        assert bounded.total == pytest.approx(6.0)
        assert bounded.mean == pytest.approx(2.0)
        assert bounded.min == 1.0
        assert bounded.max == 3.0

    def test_quantiles_clamped_to_observed_range(self):
        bounded = Histogram("lat", mode=MODE_BOUNDED, growth=2.0)
        bounded.observe(1.5)
        assert bounded.quantile(0.0) == 1.5
        assert bounded.quantile(1.0) == 1.5

    def test_zero_and_negative_values_bucket_correctly(self):
        bounded = Histogram("delta", mode=MODE_BOUNDED)
        for value in (-2.0, 0.0, 2.0):
            bounded.observe(value)
        assert bounded.quantile(0.5) == 0.0
        assert bounded.quantile(0.0) <= -2.0 * (1 - 0.02)
        assert bounded.quantile(1.0) >= 2.0 * (1 - 0.02)

    def test_raw_values_unavailable_in_bounded_mode(self):
        bounded = Histogram("lat", mode=MODE_BOUNDED)
        bounded.observe(1.0)
        with pytest.raises(ObservabilityError, match="not retained"):
            bounded.values()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown mode"):
            Histogram("lat", mode="sketchy")

    def test_growth_must_exceed_one(self):
        with pytest.raises(ObservabilityError, match="> 1"):
            Histogram("lat", mode=MODE_BOUNDED, growth=1.0)

    def test_summary_marks_bounded_mode_only(self):
        exact = Histogram("lat")
        bounded = Histogram("lat", mode=MODE_BOUNDED)
        exact.observe(1.0)
        bounded.observe(1.0)
        assert "mode" not in exact.summary()
        assert bounded.summary()["mode"] == MODE_BOUNDED


class TestRegistryHistogramModes:
    def test_default_mode_applies_to_one_shot_observe(self):
        registry = MetricsRegistry(default_histogram_mode=MODE_BOUNDED)
        registry.observe("lat", 1.0)
        assert registry.histograms["lat"].mode == MODE_BOUNDED

    def test_explicit_mode_overrides_the_default(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", mode=MODE_BOUNDED)
        assert histogram.mode == MODE_BOUNDED
        # Unnamed re-access returns the same instrument unchanged.
        assert registry.histogram("lat") is histogram

    def test_mode_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", mode=MODE_EXACT)
        with pytest.raises(ObservabilityError, match="cannot reopen"):
            registry.histogram("lat", mode=MODE_BOUNDED)

    def test_unknown_default_mode_rejected(self):
        with pytest.raises(ObservabilityError, match="default histogram"):
            MetricsRegistry(default_histogram_mode="sketchy")


class TestRegistryDump:
    def test_to_dict_nests_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.increment("hits", 2)
        registry.set_gauge("depth", 4)
        registry.observe("latency", 0.5)
        payload = registry.to_dict()
        assert payload["counters"] == {"hits": 2.0}
        assert payload["gauges"] == {"depth": 4.0}
        assert payload["histograms"]["latency"]["count"] == 1

    def test_dumps_are_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.increment("zeta")
        registry.increment("alpha")
        assert list(registry.counters) == ["alpha", "zeta"]
