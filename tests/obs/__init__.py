"""Tests of the telemetry subsystem (``repro.obs``)."""
