"""Trend observatory: series math, schema tolerance, and the dashboard."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_DRIFT_THRESHOLD,
    RunLedger,
    RunRecord,
    TrendError,
    TrendPoint,
    TrendSeries,
    collect_trends,
    render_trend_dashboard,
    sparkline,
)
from repro.obs.trends import (
    VERDICT_DRIFTING,
    VERDICT_IMPROVING,
    VERDICT_SHORT,
    VERDICT_STABLE,
    discover_bench_files,
    ledger_run_series,
    read_bench_means,
)


def _series(*values):
    return TrendSeries(
        name="bench",
        points=tuple(
            TrendPoint(source=f"BENCH_{i:04d}", mean_seconds=v)
            for i, v in enumerate(values)
        ),
    )


def _write_baseline(path, benchmarks):
    path.write_text(
        json.dumps(
            {
                "schema": "repro-bench/1",
                "note": "",
                "benchmarks": {
                    name: {
                        "mean_seconds": mean,
                        "min_seconds": mean,
                        "rounds": 3,
                    }
                    for name, mean in benchmarks.items()
                },
            }
        ),
        encoding="utf-8",
    )


def _write_snapshot(path, phases):
    path.write_text(
        json.dumps(
            {
                "schema": "repro-perf-snapshot/v1",
                "label": "x",
                "phases": [
                    {"name": name, "mean_seconds": mean, "count": 1}
                    for name, mean in phases.items()
                ],
            }
        ),
        encoding="utf-8",
    )


class TestSeriesMath:
    def test_slope_of_linear_creep_matches_the_step(self):
        # 100 -> 110 -> 120 -> 130 ms: +10ms/step on a 115ms mean.
        series = _series(0.100, 0.110, 0.120, 0.130)
        assert series.slope_per_step() == pytest.approx(0.010 / 0.115)

    def test_slope_of_flat_series_is_zero(self):
        assert _series(0.5, 0.5, 0.5).slope_per_step() == 0.0

    def test_single_point_has_no_slope_or_net(self):
        series = _series(1.0)
        assert series.slope_per_step() == 0.0
        assert series.net_change == 0.0

    def test_net_change_is_last_over_first(self):
        assert _series(0.10, 0.12).net_change == pytest.approx(0.2)

    def test_sustained_creep_is_flagged_drifting(self):
        # The acceptance case: +10%/PR slips under a 20% pairwise gate
        # forever, but the series verdict catches it.
        series = _series(0.100, 0.110, 0.121, 0.133, 0.146)
        assert series.verdict() == VERDICT_DRIFTING

    def test_sustained_speedup_is_improving(self):
        assert _series(0.146, 0.133, 0.121, 0.110).verdict() == (
            VERDICT_IMPROVING
        )

    def test_noise_without_trend_is_stable(self):
        assert _series(0.100, 0.103, 0.099, 0.101).verdict() == (
            VERDICT_STABLE
        )

    def test_two_points_are_too_short_to_call(self):
        assert _series(0.1, 0.9).verdict() == VERDICT_SHORT

    def test_drift_needs_last_above_first(self):
        # A dip-then-recover run can fit a positive slope without the
        # endpoints actually worsening; that is not a drift alert.
        series = _series(0.200, 0.100, 0.140, 0.190)
        assert series.slope_per_step() > 0
        assert series.verdict(threshold=0.01) != VERDICT_DRIFTING

    def test_threshold_is_respected(self):
        series = _series(0.100, 0.104, 0.108)
        assert series.verdict(threshold=0.5) == VERDICT_STABLE
        assert series.verdict(threshold=0.01) == VERDICT_DRIFTING


class TestSparkline:
    def test_monotone_ramp_uses_the_full_range(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant_series_renders_mid_blocks(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"

    def test_empty_series_is_empty(self):
        assert sparkline([]) == ""


class TestBenchReaders:
    def test_baseline_schema_is_read(self, tmp_path):
        path = tmp_path / "BENCH_0004.json"
        _write_baseline(path, {"test_a": 0.05, "test_b": 0.10})
        assert read_bench_means(path) == {"test_a": 0.05, "test_b": 0.10}

    def test_snapshot_schema_is_read(self, tmp_path):
        path = tmp_path / "BENCH_0005.json"
        _write_snapshot(path, {"phase.x": 0.2})
        assert read_bench_means(path) == {"phase.x": 0.2}

    def test_unknown_schema_returns_none(self, tmp_path):
        path = tmp_path / "BENCH_0009.json"
        path.write_text(json.dumps({"schema": "other/1"}), encoding="utf-8")
        assert read_bench_means(path) is None

    def test_unreadable_file_returns_none(self, tmp_path):
        path = tmp_path / "BENCH_0009.json"
        path.write_text("{ truncated", encoding="utf-8")
        assert read_bench_means(path) is None

    def test_malformed_entry_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "BENCH_0004.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-bench/1",
                    "benchmarks": {
                        "good": {"mean_seconds": 0.1},
                        "bad": {"mean_seconds": "not-a-number"},
                    },
                }
            ),
            encoding="utf-8",
        )
        assert read_bench_means(path) == {"good": 0.1}

    def test_discovery_is_name_sorted(self, tmp_path):
        for name in ("BENCH_0006.json", "BENCH_0004.json"):
            _write_baseline(tmp_path / name, {"t": 0.1})
        (tmp_path / "unrelated.json").write_text("{}", encoding="utf-8")
        assert [p.name for p in discover_bench_files(tmp_path)] == [
            "BENCH_0004.json",
            "BENCH_0006.json",
        ]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(TrendError, match="does not exist"):
            discover_bench_files(tmp_path / "absent")


class TestCollectTrends:
    def test_gap_and_schema_mix_is_tolerated(self, tmp_path):
        # Mirrors the committed history: two baseline files share a
        # benchmark, a snapshot file measures something disjoint, and a
        # junk file sits alongside.
        _write_baseline(
            tmp_path / "BENCH_0004.json", {"shared": 0.10, "only4": 0.05}
        )
        _write_baseline(tmp_path / "BENCH_0005.json", {"shared": 0.12})
        _write_snapshot(tmp_path / "BENCH_0006.json", {"disjoint": 0.30})
        (tmp_path / "BENCH_0007.json").write_text("junk", encoding="utf-8")

        report = collect_trends(tmp_path)
        assert report.sources == ("BENCH_0004", "BENCH_0005", "BENCH_0006")
        assert report.skipped == ("BENCH_0007.json",)
        assert set(report.series) == {"shared", "only4", "disjoint"}
        assert report.series["shared"].values == (0.10, 0.12)
        # The gap series keeps its single point, no padding invented.
        assert report.series["only4"].points[0].source == "BENCH_0004"

    def test_synthetic_drift_is_flagged(self, tmp_path):
        for i, mean in enumerate((0.100, 0.112, 0.125, 0.140)):
            _write_baseline(
                tmp_path / f"BENCH_{i:04d}.json", {"creeper": mean}
            )
        report = collect_trends(tmp_path)
        assert report.verdicts()["creeper"] == VERDICT_DRIFTING
        assert report.drifting() == ["creeper"]

    def test_threshold_must_be_positive(self, tmp_path):
        with pytest.raises(TrendError, match="> 0"):
            collect_trends(tmp_path, threshold=0.0)

    def test_default_threshold_is_exported(self):
        assert DEFAULT_DRIFT_THRESHOLD == pytest.approx(0.05)


class TestLedgerRunSeries:
    def _record(self, run_id, command, label, wall):
        return RunRecord(
            run_id=run_id,
            command=command,
            label=label,
            started_at=0.0,
            wall_seconds=wall,
            git_sha=None,
            config_digest="0" * 12,
        )

    def test_groups_by_command_and_label(self, tmp_path):
        ledger = RunLedger(tmp_path / "RUNS.jsonl")
        ledger.append(self._record("a", "campaign", "greedy", 1.0))
        ledger.append(self._record("b", "campaign", "greedy", 1.5))
        ledger.append(self._record("c", "figures", "fig3", 9.0))
        series = ledger_run_series(ledger.read())
        assert set(series) == {"run:campaign:greedy", "run:figures:fig3"}
        assert series["run:campaign:greedy"].values == (1.0, 1.5)

    def test_collect_trends_merges_the_ledger(self, tmp_path):
        _write_baseline(tmp_path / "BENCH_0004.json", {"t": 0.1})
        ledger = RunLedger(tmp_path / "RUNS.jsonl")
        ledger.append(self._record("a", "campaign", "greedy", 1.0))
        report = collect_trends(tmp_path, ledger=ledger)
        assert "run:campaign:greedy" in report.run_series
        assert "run:campaign:greedy" in report.verdicts()


class TestDashboard:
    def test_dashboard_covers_every_readable_source(self, tmp_path):
        _write_baseline(tmp_path / "BENCH_0004.json", {"t_x": 0.031})
        _write_snapshot(tmp_path / "BENCH_0005.json", {"phase.y": 0.002})
        (tmp_path / "BENCH_0006.json").write_text("junk", encoding="utf-8")
        report = collect_trends(tmp_path)
        dashboard = render_trend_dashboard(report)
        assert "`BENCH_0004`" in dashboard
        assert "`BENCH_0005`" in dashboard
        assert "Skipped" in dashboard and "BENCH_0006.json" in dashboard
        assert "`t_x`" in dashboard
        assert "`phase.y`" in dashboard
        assert "## Drift alerts" in dashboard
        assert "- none" in dashboard

    def test_drifting_series_gets_an_alert_line(self, tmp_path):
        for i, mean in enumerate((0.100, 0.115, 0.132, 0.152)):
            _write_baseline(
                tmp_path / f"BENCH_{i:04d}.json", {"creeper": mean}
            )
        dashboard = render_trend_dashboard(collect_trends(tmp_path))
        assert "**DRIFTING**" in dashboard
        assert "sustained creep" in dashboard

    def test_dashboard_is_deterministic(self, tmp_path):
        _write_baseline(
            tmp_path / "BENCH_0004.json", {"b": 0.2, "a": 0.1}
        )
        report = collect_trends(tmp_path)
        assert render_trend_dashboard(report) == render_trend_dashboard(
            report
        )

    def test_empty_directory_renders_a_placeholder(self, tmp_path):
        dashboard = render_trend_dashboard(collect_trends(tmp_path))
        assert "(no benchmark series found)" in dashboard
