"""Metric-name taxonomy drift: emitted names ↔ the ARCHITECTURE table.

`docs/ARCHITECTURE.md` carries the authoritative "Metric taxonomy"
table.  This test AST-scans every ``obs.counter`` / ``obs.gauge`` /
``obs.observe`` call under ``src/`` for *literal* metric names and
fails in both directions: a name the code emits but the table omits
(undocumented telemetry), and a name the table lists but nothing emits
(documentation rot).  Computed names (``span.name + ".seconds"``,
``f"platform.events.{...}"``) belong to the dynamic families the table
documents in prose and are out of scope by construction — only string
constants are collected.
"""

from __future__ import annotations

import ast
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src" / "repro"
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"

#: The ambient emission helpers whose first argument names a metric.
_EMITTERS = {"counter", "gauge", "observe"}


def emitted_metric_names():
    """Every literal metric name passed to an ``obs.*`` emitter."""
    names = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _EMITTERS
                and isinstance(func.value, ast.Name)
                and func.value.id == "obs"
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                names.add(first.value)
    return names


def documented_metric_names():
    """First-column names of the ARCHITECTURE "Metric taxonomy" table."""
    text = ARCHITECTURE.read_text(encoding="utf-8")
    match = re.search(
        r"### Metric taxonomy\n(.*?)(?=\n## |\n### |\Z)", text, re.DOTALL
    )
    assert match, "ARCHITECTURE.md lost its '### Metric taxonomy' section"
    names = set()
    for line in match.group(1).splitlines():
        row = re.match(r"\| `([^`]+)` \|", line)
        if row and "<" not in row.group(1):
            names.add(row.group(1))
    return names


class TestTaxonomyDrift:
    def test_every_emitted_name_is_documented(self):
        undocumented = emitted_metric_names() - documented_metric_names()
        assert not undocumented, (
            f"metrics emitted but missing from the ARCHITECTURE.md "
            f"taxonomy table: {sorted(undocumented)}"
        )

    def test_every_documented_name_is_emitted(self):
        rotted = documented_metric_names() - emitted_metric_names()
        assert not rotted, (
            f"metrics documented in ARCHITECTURE.md but emitted "
            f"nowhere under src/: {sorted(rotted)}"
        )

    def test_the_scan_actually_finds_the_new_instruments(self):
        # Guard against the scanner silently matching nothing.
        emitted = emitted_metric_names()
        for expected in (
            "ledger.appends",
            "heartbeat.emits",
            "journal.fsync.seconds",
            "platform.progress.slot",
            "platform.reassignments",
        ):
            assert expected in emitted

    def test_documented_names_follow_the_dotted_scheme(self):
        for name in documented_metric_names():
            assert re.fullmatch(r"[a-z0-9_]+(\.[a-z0-9_]+)+", name), name
