"""Run-ledger durability, identity, and session lifecycle."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    LEDGER_SCHEMA,
    LedgerError,
    LedgerSession,
    ManualClock,
    RunLedger,
    RunRecord,
    Tracer,
    config_digest,
    make_run_id,
    set_perf_clock,
    set_wall_clock,
)


@pytest.fixture
def manual_clocks():
    """Freeze both process clocks; restore the real ones afterwards."""
    wall = ManualClock(start=1_000_000.0)
    perf = ManualClock(start=100.0)
    previous_wall = set_wall_clock(wall)
    previous_perf = set_perf_clock(perf)
    try:
        yield wall, perf
    finally:
        set_wall_clock(previous_wall)
        set_perf_clock(previous_perf)


def _record(run_id="abc123def456", command="campaign", label="greedy"):
    return RunRecord(
        run_id=run_id,
        command=command,
        label=label,
        started_at=1_000_000.0,
        wall_seconds=2.5,
        git_sha="f" * 40,
        config_digest="0" * 12,
        counters={"rounds": 50.0},
        artifacts={"journal_dir": "/tmp/journal"},
    )


class TestConfigDigest:
    def test_key_order_never_matters(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )

    def test_different_configs_differ(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_non_json_values_fall_back_to_str(self):
        import pathlib

        digest = config_digest({"path": pathlib.Path("/tmp/x")})
        assert len(digest) == 12


class TestRunId:
    def test_deterministic(self):
        first = make_run_id("campaign", "greedy", 1000.0, "aa" * 6)
        second = make_run_id("campaign", "greedy", 1000.0, "aa" * 6)
        assert first == second
        assert len(first) == 12

    def test_start_time_changes_the_id(self):
        assert make_run_id("c", "l", 1.0, "d") != make_run_id(
            "c", "l", 2.0, "d"
        )


class TestRunRecordRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        original = _record()
        assert RunRecord.from_dict(original.to_dict()) == original

    def test_to_dict_carries_the_schema(self):
        assert _record().to_dict()["schema"] == LEDGER_SCHEMA

    def test_foreign_schema_rejected(self):
        payload = _record().to_dict()
        payload["schema"] = "something-else/9"
        with pytest.raises(LedgerError, match="schema"):
            RunRecord.from_dict(payload)

    def test_missing_field_rejected(self):
        payload = _record().to_dict()
        del payload["wall_seconds"]
        with pytest.raises(LedgerError, match="malformed"):
            RunRecord.from_dict(payload)

    def test_null_git_sha_round_trips(self):
        import dataclasses

        record = dataclasses.replace(_record(), git_sha=None)
        assert RunRecord.from_dict(record.to_dict()).git_sha is None


class TestRunLedgerIO:
    def test_append_then_read(self, tmp_path):
        ledger = RunLedger(tmp_path / "RUNS.jsonl")
        ledger.append(_record(run_id="aaa"))
        ledger.append(_record(run_id="bbb", command="figures"))
        view = ledger.read()
        assert [r.run_id for r in view.records] == ["aaa", "bbb"]
        assert view.skipped_lines == 0

    def test_missing_file_reads_empty(self, tmp_path):
        view = RunLedger(tmp_path / "absent.jsonl").read()
        assert view.records == ()

    def test_parent_directories_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "RUNS.jsonl"
        RunLedger(path).append(_record())
        assert path.exists()

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "RUNS.jsonl"
        ledger = RunLedger(path)
        ledger.append(_record(run_id="good"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema": "foreign/1"}) + "\n")
        ledger.append(_record(run_id="also-good"))
        view = ledger.read()
        assert [r.run_id for r in view.records] == ["good", "also-good"]
        assert view.skipped_lines == 2

    def test_skipped_lines_feed_the_counter(self, tmp_path):
        path = tmp_path / "RUNS.jsonl"
        path.write_text("garbage\n", encoding="utf-8")
        tracer = Tracer(clock=ManualClock())
        with obs.activate(tracer):
            RunLedger(path).read()
        assert tracer.metrics.counters["ledger.skipped_lines"] == 1.0

    def test_appends_feed_the_counter(self, tmp_path):
        tracer = Tracer(clock=ManualClock())
        with obs.activate(tracer):
            RunLedger(tmp_path / "RUNS.jsonl").append(_record())
        assert tracer.metrics.counters["ledger.appends"] == 1.0

    def test_unwritable_path_raises_ledger_error(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("", encoding="utf-8")
        # Parent "directory" is a file -> mkdir/open must fail.
        ledger = RunLedger(blocker / "RUNS.jsonl")
        with pytest.raises((LedgerError, OSError)):
            ledger.append(_record())

    def test_for_command_filters_in_append_order(self, tmp_path):
        ledger = RunLedger(tmp_path / "RUNS.jsonl")
        ledger.append(_record(run_id="a", command="campaign"))
        ledger.append(_record(run_id="b", command="figures"))
        ledger.append(_record(run_id="c", command="campaign"))
        view = ledger.read()
        assert [r.run_id for r in view.for_command("campaign")] == [
            "a",
            "c",
        ]


class TestLedgerSession:
    def test_full_lifecycle_appends_one_record(
        self, tmp_path, manual_clocks
    ):
        wall, perf = manual_clocks
        ledger = RunLedger(tmp_path / "RUNS.jsonl")
        session = LedgerSession.start(
            "campaign",
            label="greedy",
            config={"rounds": 50, "seed": 7},
            ledger=ledger,
            git_sha="e" * 40,
        )
        perf.advance(3.25)
        session.add_counters(rounds=50, welfare=123.5)
        session.add_artifact("journal_dir", "/tmp/j")
        record = session.finish()
        assert record is not None
        assert record.wall_seconds == pytest.approx(3.25)
        assert record.started_at == pytest.approx(1_000_000.0)
        assert record.counters == {"rounds": 50.0, "welfare": 123.5}
        assert record.artifacts == {"journal_dir": "/tmp/j"}
        assert ledger.read().records == (record,)

    def test_run_id_reproducible_under_manual_clocks(
        self, tmp_path, manual_clocks
    ):
        def run():
            session = LedgerSession.start(
                "trace",
                label="smoke",
                config={"seed": 1},
                ledger=RunLedger(tmp_path / "RUNS.jsonl"),
                git_sha=None,
            )
            record = session.finish()
            assert record is not None
            return record.run_id

        wall, _ = manual_clocks
        first = run()
        # Reset the wall clock to the same instant: same identity.
        set_wall_clock(ManualClock(start=1_000_000.0))
        assert run() == first

    def test_disabled_session_is_a_no_op(self, manual_clocks):
        session = LedgerSession.start(
            "campaign", label="x", config={}, ledger=None, git_sha=None
        )
        assert not session.enabled
        session.add_counters(rounds=1)
        assert session.finish() is None

    def test_double_finish_raises(self, tmp_path, manual_clocks):
        session = LedgerSession.start(
            "campaign",
            label="x",
            config={},
            ledger=RunLedger(tmp_path / "RUNS.jsonl"),
            git_sha=None,
        )
        session.finish()
        with pytest.raises(LedgerError, match="already finished"):
            session.finish()
