"""Telemetry of platform fault recovery: counters must match events.

The platform routes every event through one emission choke point, so a
traced run's ``platform.reassignments`` counter and its
``platform.events.TaskReassigned`` counter must both equal the number of
:class:`~repro.auction.events.TaskReassigned` records in the event log —
and the sink must have received exactly the logged events.
"""

from __future__ import annotations

from repro import obs
from repro.auction import CrowdsourcingPlatform
from repro.auction.events import TaskReassigned
from repro.model import Bid, SensingTask, SmartphoneProfile, TaskSchedule
from repro.obs import InMemorySink, ManualClock, Tracer
from repro.simulation.scenario import Scenario


def _dropout_round(platform):
    """Two phones, one task; the cheap winner drops after slot 1."""
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=3, cost=1.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=4, cost=5.0),
    ]
    schedule = TaskSchedule(
        num_slots=4,
        tasks=[SensingTask(task_id=0, slot=1, index=1, value=20.0)],
    )
    for bid in Scenario(profiles, schedule).truthful_bids():
        platform.submit_bid(bid)
    platform.submit_tasks(1, value=20.0)
    platform.close_slot()  # phone 1 (cheaper) wins task 0
    platform.report_dropout(1)  # recovery reassigns to phone 2
    for _ in range(3):
        platform.close_slot()
    return platform.finalize()


class TestFaultRecoveryTelemetry:
    def test_reassignment_counters_match_emitted_events(self):
        tracer = Tracer(clock=ManualClock(tick=1.0), sink=InMemorySink())
        platform = CrowdsourcingPlatform(num_slots=4)
        with obs.activate(tracer):
            outcome = _dropout_round(platform)

        reassigned = [
            e for e in platform.events if isinstance(e, TaskReassigned)
        ]
        assert len(reassigned) == 1  # the scenario forces exactly one
        counters = tracer.metrics.counters
        assert counters["platform.reassignments"] == len(reassigned)
        assert counters["platform.events.TaskReassigned"] == len(reassigned)
        assert outcome.allocation == {0: 2}

    def test_sink_received_exactly_the_logged_events(self):
        sink = InMemorySink()
        tracer = Tracer(clock=ManualClock(tick=1.0), sink=sink)
        platform = CrowdsourcingPlatform(num_slots=4)
        with obs.activate(tracer):
            _dropout_round(platform)

        assert list(sink.events) == list(platform.events)
        # Per-class counters sum to the event-log length.
        event_counters = {
            name: value
            for name, value in tracer.metrics.counters.items()
            if name.startswith("platform.events.")
        }
        assert sum(event_counters.values()) == len(platform.events)
        for name, value in event_counters.items():
            kind = name.rsplit(".", 1)[1]
            logged = [
                e for e in platform.events if type(e).__name__ == kind
            ]
            assert value == len(logged)

    def test_slot_spans_cover_every_slot(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        platform = CrowdsourcingPlatform(num_slots=4)
        with obs.activate(tracer):
            _dropout_round(platform)
        slots = [s for s in tracer.spans if s.name == "platform.slot"]
        assert [s.attributes["slot"] for s in slots] == [1, 2, 3, 4]

    def test_untraced_run_is_identical_and_emits_nothing(self):
        traced_platform = CrowdsourcingPlatform(num_slots=4)
        with obs.activate(Tracer(clock=ManualClock(tick=1.0))):
            traced = _dropout_round(traced_platform)
        untraced_platform = CrowdsourcingPlatform(num_slots=4)
        untraced = _dropout_round(untraced_platform)
        assert traced == untraced
        assert untraced_platform.events == traced_platform.events
