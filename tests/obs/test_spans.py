"""Span trees under a deterministic clock, and the no-op fast path."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import InMemorySink, ManualClock, Tracer


@pytest.fixture
def tracer():
    """A tracer whose n-th clock reading is exactly ``n - 1`` seconds."""
    return Tracer(clock=ManualClock(tick=1.0), sink=InMemorySink())


class TestSpanLifecycle:
    def test_single_span_duration_is_exact(self, tracer):
        with tracer.span("phase.a") as span:
            pass
        assert span.finished
        assert span.start == 0.0
        assert span.end == 1.0
        assert span.duration == 1.0

    def test_open_span_has_no_duration(self, tracer):
        with tracer.span("phase.a") as span:
            assert not span.finished
            with pytest.raises(ObservabilityError, match="still open"):
                _ = span.duration

    def test_nested_spans_record_parent_and_depth(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        # Children close first, so completion order is innermost-first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.roots() == (outer,)
        assert tracer.children_of(outer) == (inner,)

    def test_sibling_spans_share_a_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        children = tracer.children_of(outer)
        assert [s.name for s in children] == ["first", "second"]
        assert all(s.parent_id == outer.span_id for s in children)

    def test_manual_clock_gives_deterministic_tree_timings(self, tracer):
        # Readings: outer.start=0, inner.start=1, inner.end=2, outer.end=3.
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert (inner.start, inner.end) == (1.0, 2.0)
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert outer.duration == 3.0

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError, match="innermost-first"):
            outer.__exit__(None, None, None)

    def test_exception_annotates_and_closes_the_span(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("phase.a") as span:
                raise ValueError("boom")
        assert span.finished
        assert span.attributes["error"] == "ValueError"
        assert tracer.open_depth == 0

    def test_attributes_flow_from_kwargs_and_set_attribute(self, tracer):
        with tracer.span("phase.a", rows=3) as span:
            span.set_attribute("pivots", 7)
        assert span.attributes == {"rows": 3, "pivots": 7}

    def test_every_span_feeds_a_latency_histogram(self, tracer):
        with tracer.span("phase.a"):
            pass
        with tracer.span("phase.a"):
            pass
        histogram = tracer.metrics.histogram("phase.a.seconds")
        assert histogram.count == 2
        assert histogram.values() == (1.0, 1.0)

    def test_finished_spans_reach_the_sink(self, tracer):
        with tracer.span("phase.a"):
            pass
        assert [s.name for s in tracer.sink.spans] == ["phase.a"]

    def test_to_dict_is_json_friendly(self, tracer):
        with tracer.span("phase.a", rows=3) as span:
            pass
        payload = span.to_dict()
        assert payload["name"] == "phase.a"
        assert payload["duration"] == 1.0
        assert payload["attributes"] == {"rows": 3}


class TestAmbientHelpers:
    def test_disabled_helpers_share_one_null_span(self):
        assert obs.current_tracer() is None
        assert not obs.tracing_enabled()
        first = obs.span("anything", rows=1)
        second = obs.span("else")
        # One shared no-op object: the disabled path allocates nothing.
        assert first is second
        with first as span:
            span.set_attribute("ignored", 1)  # must not raise

    def test_disabled_metric_helpers_are_no_ops(self):
        obs.counter("some.counter", 5)
        obs.gauge("some.gauge", 1.0)
        obs.observe("some.histogram", 0.5)
        obs.record_event(object())  # dropped, not recorded anywhere

    def test_activate_routes_helpers_to_the_tracer(self, tracer):
        with obs.activate(tracer) as active:
            assert active is tracer
            assert obs.current_tracer() is tracer
            assert obs.tracing_enabled()
            with obs.span("phase.a"):
                obs.counter("hits", 2)
        assert obs.current_tracer() is None
        assert [s.name for s in tracer.spans] == ["phase.a"]
        assert tracer.metrics.counters["hits"] == 2

    def test_activations_nest_and_restore(self, tracer):
        other = Tracer(clock=ManualClock(tick=1.0))
        with obs.activate(tracer):
            with obs.activate(other):
                with obs.span("inner.only"):
                    pass
            assert obs.current_tracer() is tracer
        assert [s.name for s in other.spans] == ["inner.only"]
        assert tracer.spans == ()

    def test_record_event_counts_by_event_class(self, tracer):
        class FakeEvent:
            def to_dict(self):
                return {"event": "FakeEvent"}

        with obs.activate(tracer):
            obs.record_event(FakeEvent())
            obs.record_event(FakeEvent())
        assert tracer.metrics.counters["platform.events.FakeEvent"] == 2
        assert len(tracer.sink.events) == 2
