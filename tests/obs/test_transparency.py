"""Tracing must not change outcomes: traced == untraced, everywhere.

``check_trace_transparency`` runs a mechanism twice — once with no
tracer installed, once under a fresh one — and demands bit-identical
:class:`~repro.model.AuctionOutcome` objects.  Here it is applied to
every mechanism the registry serves, plus instrumentation-coverage
checks that the expected spans and counters actually appear when the
hot paths run traced.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis import check_trace_transparency
from repro.errors import SanitizationError
from repro.extensions.capabilities import CapabilityModel
from repro.mechanisms import registry
from repro.mechanisms.base import Mechanism
from repro.obs import ManualClock, Tracer
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.simulation.paper_example import (
    EXAMPLE_TASK_VALUE,
    paper_example_bids,
    paper_example_schedule,
)

#: Factory kwargs for mechanisms whose constructors take required
#: arguments (same convention as the sanitizer registry tests).
_FACTORY_KWARGS = {
    "fixed-price": {"price": EXAMPLE_TASK_VALUE},
    "typed-offline-vcg": {"model": CapabilityModel()},
    "typed-online-greedy": {"model": CapabilityModel()},
}


class TestAllMechanismsAreTraceTransparent:
    @pytest.mark.parametrize("name", registry.available_mechanisms())
    def test_traced_outcome_identical_on_paper_example(self, name):
        mechanism = registry.create_mechanism(
            name, sanitize=False, **_FACTORY_KWARGS.get(name, {})
        )
        outcome = check_trace_transparency(
            mechanism, paper_example_bids(), paper_example_schedule()
        )
        assert outcome == mechanism.run(
            paper_example_bids(), paper_example_schedule()
        )

    @pytest.mark.parametrize("name", registry.available_mechanisms())
    def test_traced_outcome_identical_on_generated_workload(self, name):
        scenario = WorkloadConfig(
            num_slots=10, phone_rate=3.0, task_rate=2.0
        ).generate(seed=11)
        mechanism = registry.create_mechanism(
            name, sanitize=False, **_FACTORY_KWARGS.get(name, {})
        )
        check_trace_transparency(
            mechanism, scenario.truthful_bids(), scenario.schedule
        )

    def test_non_transparent_mechanism_is_rejected(self):
        class LeakyMechanism(Mechanism):
            """Pays a tracing surcharge — exactly the bug to catch."""

            name = "leaky"
            is_truthful = False
            is_online = False

            def run(self, bids, schedule, config=None):
                inner = registry.create_mechanism(
                    "online-greedy", sanitize=False
                )
                outcome = inner.run(bids, schedule, config)
                if not obs.tracing_enabled():
                    return outcome
                from repro.model import AuctionOutcome

                return AuctionOutcome(
                    bids=bids,
                    schedule=schedule,
                    allocation=dict(outcome.allocation),
                    payments={
                        phone: payment + 1.0
                        for phone, payment in outcome.payments.items()
                    },
                )

        with pytest.raises(SanitizationError, match="trace-transparent"):
            check_trace_transparency(
                LeakyMechanism(),
                paper_example_bids(),
                paper_example_schedule(),
            )


class TestInstrumentationCoverage:
    """The documented spans/counters appear when hot paths run traced."""

    def test_online_greedy_emits_allocation_and_payment_spans(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        mechanism = registry.create_mechanism("online-greedy", sanitize=False)
        with obs.activate(tracer):
            mechanism.run(paper_example_bids(), paper_example_schedule())
        names = {span.name for span in tracer.spans}
        assert "greedy.allocation" in names
        assert "payment.algorithm2" in names
        counters = tracer.metrics.counters
        assert counters["greedy.candidate_evals"] > 0

    def test_offline_vcg_emits_matching_solver_spans(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        mechanism = registry.create_mechanism("offline-vcg", sanitize=False)
        with obs.activate(tracer):
            mechanism.run(paper_example_bids(), paper_example_schedule())
        names = {span.name for span in tracer.spans}
        assert "matching.solver.solve" in names
        counters = tracer.metrics.counters
        assert counters["matching.augmentations"] > 0
        assert counters["matching.pivots"] > 0

    def test_engine_run_wraps_each_mechanism_in_a_run_span(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        engine = SimulationEngine()
        mechanism = registry.create_mechanism("online-greedy", sanitize=False)
        scenario = WorkloadConfig(
            num_slots=6, phone_rate=2.0, task_rate=1.0
        ).generate(seed=3)
        with obs.activate(tracer):
            engine.run(mechanism, scenario)
        runs = [s for s in tracer.spans if s.name == "mechanism.run"]
        assert len(runs) == 1
        assert runs[0].attributes["mechanism"] == "online-greedy"
        # Inner solver/payment spans nest under the run span.
        assert any(s.parent_id is not None for s in tracer.spans)

    def test_span_durations_deterministic_under_manual_clock(self):
        first = Tracer(clock=ManualClock(tick=1.0))
        second = Tracer(clock=ManualClock(tick=1.0))
        mechanism = registry.create_mechanism("online-greedy", sanitize=False)
        for tracer in (first, second):
            with obs.activate(tracer):
                mechanism.run(
                    paper_example_bids(), paper_example_schedule()
                )
        assert [s.to_dict() for s in first.spans] == [
            s.to_dict() for s in second.spans
        ]
