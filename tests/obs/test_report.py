"""Hotspot profiles: self-time attribution and the top-N ranking."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import (
    ManualClock,
    Tracer,
    aggregate_hotspots,
    render_hotspot_table,
    span_self_times,
    top_hotspots,
)


def _nested_trace():
    """outer(6s) { child_a(2s), child_b(1s) }, leaf(3s) — manual clock.

    Built with explicit advances so every duration is exact:
    outer self = 6 - (2 + 1) = 3, leaves keep their full duration.
    """
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    with obs.activate(tracer):
        with obs.span("outer"):
            clock.advance(1.0)
            with obs.span("child_a"):
                clock.advance(2.0)
            with obs.span("child_b"):
                clock.advance(1.0)
            clock.advance(2.0)
        with obs.span("leaf"):
            clock.advance(3.0)
    return tracer


class TestSelfTimes:
    def test_parent_excludes_direct_children(self):
        tracer = _nested_trace()
        self_times = span_self_times(tracer.spans)
        by_name = {
            span.name: self_times[span.span_id] for span in tracer.spans
        }
        assert by_name["outer"] == pytest.approx(3.0)
        assert by_name["child_a"] == pytest.approx(2.0)
        assert by_name["child_b"] == pytest.approx(1.0)
        assert by_name["leaf"] == pytest.approx(3.0)

    def test_self_time_never_negative(self):
        # A child reported longer than its parent (possible with mixed
        # clock reads) clamps to zero instead of going negative.
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with obs.activate(tracer):
            with tracer.span("parent") as parent:
                with tracer.span("child"):
                    clock.advance(5.0)
        self_times = span_self_times(tracer.spans)
        assert self_times[parent.span_id] == 0.0

    def test_unfinished_spans_are_ignored(self):
        tracer = Tracer(clock=ManualClock())
        with obs.activate(tracer):
            with obs.span("done"):
                pass
        assert len(span_self_times(tracer.spans)) == len(tracer.spans)


class TestAggregation:
    def test_shares_sum_to_one(self):
        stats = aggregate_hotspots(_nested_trace().spans)
        assert sum(h.share for h in stats) == pytest.approx(1.0)

    def test_sorted_hottest_first_with_name_tiebreak(self):
        stats = aggregate_hotspots(_nested_trace().spans)
        # outer/leaf tie at 3.0s self; names break the tie.
        assert [h.name for h in stats] == [
            "leaf",
            "outer",
            "child_a",
            "child_b",
        ]

    def test_inclusive_total_kept_alongside_self(self):
        stats = {
            h.name: h for h in aggregate_hotspots(_nested_trace().spans)
        }
        assert stats["outer"].total_seconds == pytest.approx(6.0)
        assert stats["outer"].self_seconds == pytest.approx(3.0)

    def test_mean_self_divides_by_span_count(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with obs.activate(tracer):
            for _ in range(2):
                with obs.span("repeat"):
                    clock.advance(2.0)
        stats = aggregate_hotspots(tracer.spans)[0]
        assert stats.count == 2
        assert stats.mean_self_seconds == pytest.approx(2.0)

    def test_empty_trace_aggregates_empty(self):
        assert aggregate_hotspots([]) == []


class TestTopN:
    def test_top_truncates(self):
        hotspots = top_hotspots(_nested_trace().spans, top=2)
        assert [h.name for h in hotspots] == ["leaf", "outer"]

    def test_top_larger_than_trace_returns_all(self):
        assert len(top_hotspots(_nested_trace().spans, top=99)) == 4

    def test_top_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            top_hotspots([], top=0)


class TestRendering:
    def test_table_has_self_and_share_columns(self):
        table = render_hotspot_table(
            top_hotspots(_nested_trace().spans, top=4)
        )
        assert "self ms" in table
        assert "share" in table
        assert "incl ms" in table
        assert "leaf" in table

    def test_title_override(self):
        table = render_hotspot_table([], title="Hotspots (top 3)")
        assert "Hotspots (top 3)" in table
