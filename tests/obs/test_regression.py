"""The benchmark regression gate: parsing, round-trip, verdicts."""

from __future__ import annotations

import json

import pytest

from repro.obs.regression import (
    BenchStats,
    MissingBenchmarkError,
    RegressionError,
    compare,
    load_baseline,
    load_pytest_benchmark,
    main,
    select_benchmarks,
    write_baseline,
)


def _pytest_benchmark_file(tmp_path, mean=0.05, name="test_bench[80]"):
    path = tmp_path / "bench.json"
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "name": name,
                        "stats": {
                            "mean": mean,
                            "min": mean * 0.9,
                            "rounds": 11,
                        },
                    }
                ]
            }
        )
    )
    return path


class TestParsing:
    def test_load_pytest_benchmark(self, tmp_path):
        stats = load_pytest_benchmark(_pytest_benchmark_file(tmp_path))
        assert stats["test_bench[80]"].mean_seconds == pytest.approx(0.05)
        assert stats["test_bench[80]"].rounds == 11

    def test_missing_benchmarks_key_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        with pytest.raises(RegressionError, match="benchmark-json"):
            load_pytest_benchmark(path)

    def test_baseline_round_trip(self, tmp_path):
        stats = {
            "a": BenchStats(
                mean_seconds=0.1, min_seconds=0.09, rounds=5
            )
        }
        out = tmp_path / "BASE.json"
        write_baseline(out, stats, note="n", before={"a": 0.3})
        assert load_baseline(out) == stats
        assert json.loads(out.read_text())["before_mean_seconds"] == {
            "a": 0.3
        }

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BASE.json"
        path.write_text(json.dumps({"schema": "other", "benchmarks": {}}))
        with pytest.raises(RegressionError, match="schema"):
            load_baseline(path)


class TestCompare:
    def _stats(self, mean):
        return BenchStats(mean_seconds=mean, min_seconds=mean, rounds=3)

    def test_within_tolerance_passes(self):
        [comparison] = compare(
            {"b": self._stats(0.10)}, {"b": self._stats(0.11)}, 0.20
        )
        assert not comparison.regressed
        assert comparison.ratio == pytest.approx(1.1)

    def test_beyond_tolerance_regresses(self):
        [comparison] = compare(
            {"b": self._stats(0.10)}, {"b": self._stats(0.13)}, 0.20
        )
        assert comparison.regressed
        assert "REGRESSED" in comparison.describe()

    def test_missing_fresh_benchmark_is_a_typed_error(self):
        with pytest.raises(MissingBenchmarkError, match="missing") as info:
            compare({"b": self._stats(0.1)}, {}, 0.2)
        # The typed error names the offending benchmark for CI tooling,
        # and stays catchable as a plain RegressionError.
        assert info.value.benchmark == "b"
        assert isinstance(info.value, RegressionError)

    def test_unknown_gated_name_is_an_error(self):
        with pytest.raises(RegressionError, match="matches no baseline"):
            compare({}, {}, 0.2, only=["nope"])

    def test_only_glob_restricts_the_gate(self):
        baseline = {
            "test_vcg[40]": self._stats(0.1),
            "test_vcg[80]": self._stats(0.2),
            "test_greedy[80]": self._stats(0.3),
        }
        current = {name: self._stats(0.1) for name in baseline}
        comparisons = compare(baseline, current, 0.2, only=["test_vcg*"])
        assert [c.name for c in comparisons] == [
            "test_vcg[40]",
            "test_vcg[80]",
        ]

    def test_glob_only_needs_matching_fresh_benchmarks(self):
        baseline = {
            "test_vcg[80]": self._stats(0.1),
            "test_greedy[80]": self._stats(0.1),
        }
        # The fresh run lost the gated benchmark: typed error, even
        # though the other baseline entry is present.
        with pytest.raises(MissingBenchmarkError) as info:
            compare(baseline, {"test_greedy[80]": self._stats(0.1)},
                    0.2, only=["test_vcg*"])
        assert info.value.benchmark == "test_vcg[80]"


class TestSelectBenchmarks:
    NAMES = {"test_vcg[40]", "test_vcg[80]", "test_greedy[80]"}

    def test_no_patterns_selects_everything_sorted(self):
        assert select_benchmarks(self.NAMES) == sorted(self.NAMES)

    def test_glob_expands_sorted(self):
        assert select_benchmarks(self.NAMES, ["test_vcg*"]) == [
            "test_vcg[40]",
            "test_vcg[80]",
        ]

    def test_exact_bracketed_name_beats_the_character_class(self):
        # fnmatch would read "[80]" as a character class matching one
        # of "8"/"0" — an exact baseline name must select itself.
        assert select_benchmarks(self.NAMES, ["test_vcg[80]"]) == [
            "test_vcg[80]"
        ]

    def test_question_mark_and_ranges_still_work(self):
        assert select_benchmarks(self.NAMES, ["test_greedy[[]8?]"]) == [
            "test_greedy[80]"
        ]

    def test_first_pattern_wins_on_duplicates(self):
        selected = select_benchmarks(
            self.NAMES, ["test_vcg[80]", "test_vcg*"]
        )
        assert selected == ["test_vcg[80]", "test_vcg[40]"]

    def test_unmatched_pattern_raises(self):
        with pytest.raises(RegressionError, match="matches no baseline"):
            select_benchmarks(self.NAMES, ["test_hungarian*"])


class TestMain:
    def test_record_then_check(self, tmp_path, capsys):
        results = _pytest_benchmark_file(tmp_path)
        baseline = tmp_path / "BASE.json"
        assert main(
            ["record", str(results), "--out", str(baseline)]
        ) == 0
        assert main(
            ["check", str(results), "--baseline", str(baseline)]
        ) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "BASE.json"
        write_baseline(
            baseline,
            {
                "test_bench[80]": BenchStats(
                    mean_seconds=0.01, min_seconds=0.01, rounds=3
                )
            },
        )
        results = _pytest_benchmark_file(tmp_path, mean=0.05)
        assert main(
            ["check", str(results), "--baseline", str(baseline)]
        ) == 1
        assert "FAILED" in capsys.readouterr().err
