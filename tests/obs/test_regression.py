"""The benchmark regression gate: parsing, round-trip, verdicts."""

from __future__ import annotations

import json

import pytest

from repro.obs.regression import (
    BenchStats,
    RegressionError,
    compare,
    load_baseline,
    load_pytest_benchmark,
    main,
    write_baseline,
)


def _pytest_benchmark_file(tmp_path, mean=0.05, name="test_bench[80]"):
    path = tmp_path / "bench.json"
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "name": name,
                        "stats": {
                            "mean": mean,
                            "min": mean * 0.9,
                            "rounds": 11,
                        },
                    }
                ]
            }
        )
    )
    return path


class TestParsing:
    def test_load_pytest_benchmark(self, tmp_path):
        stats = load_pytest_benchmark(_pytest_benchmark_file(tmp_path))
        assert stats["test_bench[80]"].mean_seconds == pytest.approx(0.05)
        assert stats["test_bench[80]"].rounds == 11

    def test_missing_benchmarks_key_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        with pytest.raises(RegressionError, match="benchmark-json"):
            load_pytest_benchmark(path)

    def test_baseline_round_trip(self, tmp_path):
        stats = {
            "a": BenchStats(
                mean_seconds=0.1, min_seconds=0.09, rounds=5
            )
        }
        out = tmp_path / "BASE.json"
        write_baseline(out, stats, note="n", before={"a": 0.3})
        assert load_baseline(out) == stats
        assert json.loads(out.read_text())["before_mean_seconds"] == {
            "a": 0.3
        }

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BASE.json"
        path.write_text(json.dumps({"schema": "other", "benchmarks": {}}))
        with pytest.raises(RegressionError, match="schema"):
            load_baseline(path)


class TestCompare:
    def _stats(self, mean):
        return BenchStats(mean_seconds=mean, min_seconds=mean, rounds=3)

    def test_within_tolerance_passes(self):
        [comparison] = compare(
            {"b": self._stats(0.10)}, {"b": self._stats(0.11)}, 0.20
        )
        assert not comparison.regressed
        assert comparison.ratio == pytest.approx(1.1)

    def test_beyond_tolerance_regresses(self):
        [comparison] = compare(
            {"b": self._stats(0.10)}, {"b": self._stats(0.13)}, 0.20
        )
        assert comparison.regressed
        assert "REGRESSED" in comparison.describe()

    def test_missing_fresh_benchmark_is_an_error(self):
        with pytest.raises(RegressionError, match="missing"):
            compare({"b": self._stats(0.1)}, {}, 0.2)

    def test_unknown_gated_name_is_an_error(self):
        with pytest.raises(RegressionError, match="not in the baseline"):
            compare({}, {}, 0.2, only=["nope"])


class TestMain:
    def test_record_then_check(self, tmp_path, capsys):
        results = _pytest_benchmark_file(tmp_path)
        baseline = tmp_path / "BASE.json"
        assert main(
            ["record", str(results), "--out", str(baseline)]
        ) == 0
        assert main(
            ["check", str(results), "--baseline", str(baseline)]
        ) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "BASE.json"
        write_baseline(
            baseline,
            {
                "test_bench[80]": BenchStats(
                    mean_seconds=0.01, min_seconds=0.01, rounds=3
                )
            },
        )
        results = _pytest_benchmark_file(tmp_path, mean=0.05)
        assert main(
            ["check", str(results), "--baseline", str(baseline)]
        ) == 1
        assert "FAILED" in capsys.readouterr().err
