"""Sink behaviour: JSONL round-trips, tees, and closed-sink errors."""

from __future__ import annotations

import pytest

from repro import obs
from repro.auction.events import TaskAllocated, event_from_dict
from repro.errors import ObservabilityError
from repro.obs import (
    InMemorySink,
    JsonlSink,
    ManualClock,
    NullSink,
    TeeSink,
    Tracer,
    read_jsonl,
)


def _run_traced(sink):
    """One deterministic traced run: two nested spans and one event."""
    tracer = Tracer(clock=ManualClock(tick=1.0), sink=sink)
    with obs.activate(tracer):
        with obs.span("outer", rows=2):
            with obs.span("inner"):
                pass
        obs.record_event(
            TaskAllocated(slot=1, task_id=0, phone_id=7, claimed_cost=3.5)
        )
    return tracer


class TestJsonlRoundTrip:
    def test_spans_and_events_reload_losslessly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = _run_traced(sink)

        records = read_jsonl(path)
        spans = [r for r in records if r["record"] == "span"]
        events = [r for r in records if r["record"] == "event"]
        assert len(records) == len(spans) + len(events)

        # Span lines carry exactly Span.to_dict(); completion order.
        assert [r["name"] for r in spans] == ["inner", "outer"]
        by_name = {r["name"]: r for r in spans}
        for name, original in (("inner", tracer.spans[0]),
                               ("outer", tracer.spans[1])):
            reloaded = dict(by_name[name])
            reloaded.pop("record")
            assert reloaded == original.to_dict()

        # Event lines rebuild the original dataclass via the registry.
        rebuilt = event_from_dict(events[0]["event"])
        assert rebuilt == TaskAllocated(
            slot=1, task_id=0, phone_id=7, claimed_cost=3.5
        )

    def test_closed_sink_refuses_records(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # idempotent
        tracer = Tracer(clock=ManualClock(), sink=sink)
        with pytest.raises(ObservabilityError, match="closed"):
            with tracer.span("phase.a"):
                pass

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path):
            pass
        assert path.exists()

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"record": "span"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match=":2:"):
            read_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n{"record": "span"}\n\n', encoding="utf-8")
        assert read_jsonl(path) == [{"record": "span"}]


class _FaultySink(InMemorySink):
    """A sink whose chosen methods always raise (fault injection)."""

    def __init__(self, fail=("record_span", "record_event", "close")):
        super().__init__()
        self._fail = fail
        self.close_calls = 0

    def record_span(self, span):
        if "record_span" in self._fail:
            raise OSError("disk full")
        super().record_span(span)

    def record_event(self, event):
        if "record_event" in self._fail:
            raise OSError("disk full")
        super().record_event(event)

    def close(self):
        self.close_calls += 1
        if "close" in self._fail:
            raise OSError("disk full")


class TestTeeSink:
    def test_fans_out_to_every_child(self, tmp_path):
        memory = InMemorySink()
        path = tmp_path / "trace.jsonl"
        jsonl = JsonlSink(path)
        tracer = _run_traced(TeeSink(memory, jsonl))
        tracer.sink.close()

        assert [s.name for s in memory.spans] == ["inner", "outer"]
        assert len(memory.events) == 1
        assert len(read_jsonl(path)) == 3

    def test_failing_child_never_starves_its_siblings(self):
        before = InMemorySink()
        faulty = _FaultySink(fail=("record_span",))
        after = InMemorySink()
        tee = TeeSink(before, faulty, after)
        tracer = Tracer(clock=ManualClock(), sink=tee)
        with pytest.raises(ObservabilityError, match="disk full"):
            with tracer.span("phase.a"):
                pass
        # Both healthy children recorded despite the middle one raising
        # — including the one *after* the failure.
        assert [s.name for s in before.spans] == ["phase.a"]
        assert [s.name for s in after.spans] == ["phase.a"]

    def test_failures_aggregate_into_one_error(self):
        tee = TeeSink(_FaultySink(), InMemorySink(), _FaultySink())
        tracer = Tracer(clock=ManualClock(), sink=tee)
        with pytest.raises(ObservabilityError) as excinfo:
            with tracer.span("phase.a"):
                pass
        message = str(excinfo.value)
        assert "2 of 3" in message
        assert "every child was still driven" in message
        assert "_FaultySink.record_span" in message
        assert "OSError: disk full" in message

    def test_close_drives_every_child_despite_failures(self, tmp_path):
        faulty = _FaultySink(fail=("close",))
        jsonl = JsonlSink(tmp_path / "trace.jsonl")
        trailing = _FaultySink(fail=("close",))
        tee = TeeSink(faulty, jsonl, trailing)
        with pytest.raises(ObservabilityError, match="2 of 3"):
            tee.close()
        # The JSONL sink between the two faulty ones was released.
        with pytest.raises(ObservabilityError, match="closed"):
            jsonl.record_event(
                TaskAllocated(slot=0, task_id=1, phone_id=2, claimed_cost=1.0)
            )
        assert faulty.close_calls == 1
        assert trailing.close_calls == 1

    def test_failing_event_fanout_reaches_all_children(self):
        healthy = InMemorySink()
        tee = TeeSink(_FaultySink(fail=("record_event",)), healthy)
        tracer = Tracer(clock=ManualClock(), sink=tee)
        with obs.activate(tracer):
            with pytest.raises(ObservabilityError, match="1 of 2"):
                obs.record_event(
                    TaskAllocated(
                        slot=0, task_id=1, phone_id=2, claimed_cost=1.0
                    )
                )
        assert len(healthy.events) == 1

    def test_empty_tee_is_harmless(self):
        tee = TeeSink()
        tee.close()
        _run_traced(tee)  # records go nowhere, nothing raises


class TestNullSink:
    def test_drops_everything_silently(self):
        tracer = _run_traced(NullSink())
        # Spans are still retained on the tracer itself, sink-independent.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
