"""Sink behaviour: JSONL round-trips, tees, and closed-sink errors."""

from __future__ import annotations

import pytest

from repro import obs
from repro.auction.events import TaskAllocated, event_from_dict
from repro.errors import ObservabilityError
from repro.obs import (
    InMemorySink,
    JsonlSink,
    ManualClock,
    NullSink,
    TeeSink,
    Tracer,
    read_jsonl,
)


def _run_traced(sink):
    """One deterministic traced run: two nested spans and one event."""
    tracer = Tracer(clock=ManualClock(tick=1.0), sink=sink)
    with obs.activate(tracer):
        with obs.span("outer", rows=2):
            with obs.span("inner"):
                pass
        obs.record_event(
            TaskAllocated(slot=1, task_id=0, phone_id=7, claimed_cost=3.5)
        )
    return tracer


class TestJsonlRoundTrip:
    def test_spans_and_events_reload_losslessly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = _run_traced(sink)

        records = read_jsonl(path)
        spans = [r for r in records if r["record"] == "span"]
        events = [r for r in records if r["record"] == "event"]
        assert len(records) == len(spans) + len(events)

        # Span lines carry exactly Span.to_dict(); completion order.
        assert [r["name"] for r in spans] == ["inner", "outer"]
        by_name = {r["name"]: r for r in spans}
        for name, original in (("inner", tracer.spans[0]),
                               ("outer", tracer.spans[1])):
            reloaded = dict(by_name[name])
            reloaded.pop("record")
            assert reloaded == original.to_dict()

        # Event lines rebuild the original dataclass via the registry.
        rebuilt = event_from_dict(events[0]["event"])
        assert rebuilt == TaskAllocated(
            slot=1, task_id=0, phone_id=7, claimed_cost=3.5
        )

    def test_closed_sink_refuses_records(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()  # idempotent
        tracer = Tracer(clock=ManualClock(), sink=sink)
        with pytest.raises(ObservabilityError, match="closed"):
            with tracer.span("phase.a"):
                pass

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path):
            pass
        assert path.exists()

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"record": "span"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match=":2:"):
            read_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n{"record": "span"}\n\n', encoding="utf-8")
        assert read_jsonl(path) == [{"record": "span"}]


class TestTeeSink:
    def test_fans_out_to_every_child(self, tmp_path):
        memory = InMemorySink()
        path = tmp_path / "trace.jsonl"
        jsonl = JsonlSink(path)
        tracer = _run_traced(TeeSink(memory, jsonl))
        tracer.sink.close()

        assert [s.name for s in memory.spans] == ["inner", "outer"]
        assert len(memory.events) == 1
        assert len(read_jsonl(path)) == 3


class TestNullSink:
    def test_drops_everything_silently(self):
        tracer = _run_traced(NullSink())
        # Spans are still retained on the tracer itself, sink-independent.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
