"""Live telemetry: heartbeat cadence, sidecar merging, transparency."""

from __future__ import annotations

import io
import json
import pickle

import pytest

from repro import obs
from repro.auction.multi_round import run_campaign
from repro.mechanisms import OnlineGreedyMechanism
from repro.obs import (
    HEARTBEAT_SCHEMA,
    Console,
    Heartbeat,
    HeartbeatConfig,
    HeartbeatError,
    ManualClock,
    Tracer,
    append_worker_beat,
    merge_heartbeats,
    read_heartbeats,
    set_perf_clock,
    worker_heartbeat_path,
)
from repro.simulation.workload import WorkloadConfig


@pytest.fixture
def manual_perf():
    clock = ManualClock(start=100.0)
    previous = set_perf_clock(clock)
    try:
        yield clock
    finally:
        set_perf_clock(previous)


class TestHeartbeatCadence:
    def test_emits_every_nth_completion(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=3), total=10)
        emissions = []
        for index in range(10):
            manual_perf.advance(1.0)
            record = pulse.beat(index)
            if record is not None:
                emissions.append(record["completed"])
        # Every 3rd unit, plus the final unit unconditionally.
        assert emissions == [3, 6, 9, 10]
        assert pulse.emitted == 4

    def test_final_unit_always_emits(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=100), total=5)
        records = [pulse.beat(i) for i in range(5)]
        assert [r is not None for r in records] == [
            False,
            False,
            False,
            False,
            True,
        ]

    def test_rate_and_eta_math(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=5), total=20)
        record = None
        for index in range(5):
            manual_perf.advance(0.5)  # 2 units/second
            record = pulse.beat(index) or record
        assert record is not None
        assert record["units_per_second"] == pytest.approx(2.0)
        assert record["eta_seconds"] == pytest.approx(7.5)  # 15 left @ 2/s
        assert record["elapsed_seconds"] == pytest.approx(2.5)

    def test_unknown_total_omits_eta(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=1), total=None)
        manual_perf.advance(1.0)
        record = pulse.beat(0)
        assert record is not None
        assert record["eta_seconds"] is None
        assert record["total"] is None

    def test_extras_ride_along(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=1))
        record = pulse.beat(0, welfare=42.5)
        assert record is not None
        assert record["welfare"] == 42.5

    def test_interval_must_be_positive(self):
        with pytest.raises(HeartbeatError, match=">= 1"):
            Heartbeat(HeartbeatConfig(every=0))

    def test_total_must_be_non_negative(self):
        with pytest.raises(HeartbeatError, match=">= 0"):
            Heartbeat(HeartbeatConfig(), total=-1)


class TestHeartbeatChannels:
    def test_file_channel_appends_schema_stamped_lines(
        self, tmp_path, manual_perf
    ):
        path = tmp_path / "hb.jsonl"
        pulse = Heartbeat(HeartbeatConfig(path=path, every=2), total=4)
        for index in range(4):
            pulse.beat(index)
        records = read_heartbeats(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["schema"] == HEARTBEAT_SCHEMA for r in records)

    def test_console_channel_respects_quiet(self, manual_perf):
        loud = io.StringIO()
        quiet = io.StringIO()
        for buffer, is_quiet in ((loud, False), (quiet, True)):
            pulse = Heartbeat(
                HeartbeatConfig(
                    every=1,
                    console=Console(quiet=is_quiet, stream=buffer),
                ),
                total=1,
            )
            manual_perf.advance(1.0)
            pulse.beat(0)
        assert "[heartbeat] round 1/1" in loud.getvalue()
        assert quiet.getvalue() == ""

    def test_render_includes_fsync_and_reassignments(self, manual_perf):
        buffer = io.StringIO()
        tracer = Tracer(clock=ManualClock())
        with obs.activate(tracer):
            obs.counter("platform.reassignments", 3)
            obs.observe("journal.fsync.seconds", 0.002)
            pulse = Heartbeat(
                HeartbeatConfig(every=1, console=Console(stream=buffer)),
                total=1,
            )
            manual_perf.advance(1.0)
            record = pulse.beat(0)
        assert record is not None
        assert record["metrics"]["platform.reassignments"] == 3.0
        assert record["metrics"]["journal.fsync.seconds"]["count"] == 1
        text = buffer.getvalue()
        assert "fsync mean 2.00ms" in text
        assert "reassigned 3" in text

    def test_no_tracer_means_empty_metrics(self, manual_perf):
        pulse = Heartbeat(HeartbeatConfig(every=1), total=1)
        record = pulse.beat(0)
        assert record is not None
        assert record["metrics"] == {}

    def test_emissions_feed_the_counter(self, manual_perf):
        tracer = Tracer(clock=ManualClock())
        with obs.activate(tracer):
            pulse = Heartbeat(HeartbeatConfig(every=1), total=2)
            pulse.beat(0)
            pulse.beat(1)
        assert tracer.metrics.counters["heartbeat.emits"] == 2.0


class TestWorkerSidecars:
    def test_sidecar_path_is_keyed_by_worker(self, tmp_path):
        base = tmp_path / "hb.jsonl"
        assert worker_heartbeat_path(base, 123).name == "hb.worker-123.jsonl"

    def test_merge_orders_by_unit_index_not_pid(self, tmp_path):
        base = tmp_path / "hb.jsonl"
        # Two "workers" writing interleaved unit indices, out of order.
        for pid, units in ((999, (3, 1)), (111, (2, 0))):
            sidecar = worker_heartbeat_path(base, pid)
            for unit in units:
                with open(sidecar, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(
                            {
                                "schema": HEARTBEAT_SCHEMA,
                                "label": "round",
                                "seq": 0,
                                "unit_index": unit,
                                "worker_pid": pid,
                            }
                        )
                        + "\n"
                    )
        merged = merge_heartbeats(base)
        assert merged == 4
        records = read_heartbeats(base)
        assert [r["unit_index"] for r in records] == [0, 1, 2, 3]
        # Sidecars are consumed.
        assert list(tmp_path.glob("hb.worker-*")) == []

    def test_merge_is_deterministic_across_write_orders(self, tmp_path):
        def build(tag, units):
            base = tmp_path / f"hb-{tag}.jsonl"
            for unit in units:
                append_worker_beat(base, "round", unit, 0.5, seed=unit)
            merge_heartbeats(base)
            return tuple(
                (r["unit_index"], r.get("seed"))
                for r in read_heartbeats(base)
            )

        first = build("a", [2, 0, 1])
        second = build("b", [0, 1, 2])
        assert first == second == ((0, 0), (1, 1), (2, 2))

    def test_corrupt_sidecar_lines_are_skipped(self, tmp_path):
        base = tmp_path / "hb.jsonl"
        sidecar = worker_heartbeat_path(base, 7)
        sidecar.write_text(
            "garbage\n"
            + json.dumps(
                {"schema": HEARTBEAT_SCHEMA, "unit_index": 0, "seq": 0}
            )
            + "\n",
            encoding="utf-8",
        )
        assert merge_heartbeats(base) == 1

    def test_merge_without_sidecars_is_a_no_op(self, tmp_path):
        assert merge_heartbeats(tmp_path / "hb.jsonl") == 0

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "absent.jsonl") == ()


class TestCampaignTransparency:
    """Heartbeats observe a campaign; they must never change it."""

    WORKLOAD = WorkloadConfig(num_slots=4)

    def _campaign(self, heartbeat=None, workers=1, journal_dir=None):
        return run_campaign(
            OnlineGreedyMechanism(),
            self.WORKLOAD,
            num_rounds=50,
            seed=11,
            workers=workers,
            journal_dir=journal_dir,
            heartbeat=heartbeat,
        )

    def test_journaled_campaign_is_bit_identical_with_heartbeat(
        self, tmp_path
    ):
        # The acceptance criterion: a journaled 50-round campaign with
        # --heartbeat emits periodic progress records while remaining
        # outcome-identical to the silent run.
        silent = self._campaign(journal_dir=tmp_path / "j1")
        path = tmp_path / "hb.jsonl"
        pulsed = self._campaign(
            heartbeat=HeartbeatConfig(path=path, every=10),
            journal_dir=tmp_path / "j2",
        )
        assert pickle.dumps(silent) == pickle.dumps(pulsed)
        records = read_heartbeats(path)
        assert len(records) == 5  # rounds 10, 20, 30, 40, 50
        assert [r["completed"] for r in records] == [10, 20, 30, 40, 50]

    def test_parallel_campaign_identical_across_worker_counts(
        self, tmp_path
    ):
        silent = self._campaign(workers=2)
        two = self._campaign(
            heartbeat=HeartbeatConfig(path=tmp_path / "hb2.jsonl", every=10),
            workers=2,
        )
        four = self._campaign(
            heartbeat=HeartbeatConfig(path=tmp_path / "hb4.jsonl", every=10),
            workers=4,
        )
        assert pickle.dumps(silent) == pickle.dumps(two)
        assert pickle.dumps(two) == pickle.dumps(four)
        # Worker pulses merged by unit identity: same order either way.
        order2 = [
            r["unit_index"]
            for r in read_heartbeats(tmp_path / "hb2.jsonl")
            if "worker_pid" in r
        ]
        order4 = [
            r["unit_index"]
            for r in read_heartbeats(tmp_path / "hb4.jsonl")
            if "worker_pid" in r
        ]
        assert order2 == order4 == list(range(50))
        # No sidecars survive the merge.
        assert list(tmp_path.glob("*.worker-*")) == []


class TestShardMergeIdentity:
    """Shard-aware merge key: ``(shard_id, unit_index, seq)``."""

    WORKLOAD = WorkloadConfig(num_slots=4)

    def test_merge_orders_by_shard_then_unit_then_seq(self, tmp_path):
        base = tmp_path / "hb.jsonl"
        beats = [  # (pid, shard, unit, seq) — deliberately scrambled
            (222, 1, 0, 0),
            (222, 1, 1, 0),
            (111, 0, 2, 1),
            (111, 0, 2, 0),
            (333, 0, 5, 0),
        ]
        for pid, shard, unit, seq in beats:
            sidecar = worker_heartbeat_path(base, pid)
            with open(sidecar, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {
                            "schema": HEARTBEAT_SCHEMA,
                            "label": "round",
                            "seq": seq,
                            "unit_index": unit,
                            "shard": shard,
                            "worker_pid": pid,
                        }
                    )
                    + "\n"
                )
        assert merge_heartbeats(base) == 5
        keys = [
            (r["shard"], r["unit_index"], r["seq"])
            for r in read_heartbeats(base)
        ]
        assert keys == [(0, 2, 0), (0, 2, 1), (0, 5, 0), (1, 0, 0), (1, 1, 0)]

    def test_shardless_records_sort_as_shard_zero(self, tmp_path):
        base = tmp_path / "hb.jsonl"
        append_worker_beat(base, "round", 1, 0.1, shard=1)
        append_worker_beat(base, "round", 0, 0.1)  # legacy: no shard key
        merge_heartbeats(base)
        records = read_heartbeats(base)
        assert [r.get("shard", 0) for r in records] == [0, 1]

    def test_sharded_campaign_merge_identical_2_vs_4_workers(
        self, tmp_path
    ):
        """The satellite acceptance: a sharded campaign's merged
        worker-beat stream is byte-for-byte independent of worker count."""
        from repro.experiments.config import MechanismSpec
        from repro.experiments.sharding import (
            CityConfig,
            run_sharded_campaign,
        )

        def merged_beats(tag, workers):
            path = tmp_path / f"hb-{tag}.jsonl"
            run_sharded_campaign(
                MechanismSpec.of("online-greedy"),
                [
                    CityConfig("east", self.WORKLOAD, num_rounds=3),
                    CityConfig("west", self.WORKLOAD, num_rounds=3),
                ],
                seed=7,
                workers=workers,
                shards_per_city=2,
                heartbeat=HeartbeatConfig(path=path, every=1),
            )
            return [
                {
                    key: value
                    for key, value in record.items()
                    if key not in ("worker_pid", "elapsed_seconds")
                }
                for record in read_heartbeats(path)
                if "worker_pid" in record
            ]

        two = merged_beats("w2", 2)
        four = merged_beats("w4", 4)
        assert two == four
        assert [(r["shard"], r["unit_index"]) for r in two] == [
            (0, 0),
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 1),
            (3, 2),
        ]
