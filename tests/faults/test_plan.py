"""Unit tests for the fault model: configs, plans, and the injector."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import FaultConfig, FaultInjector, FaultPlan, PhoneFaults
from repro.simulation import WorkloadConfig
from repro.utils.rng import RngStreams


@pytest.fixture
def scenario():
    return WorkloadConfig(
        num_slots=15, phone_rate=4.0, task_rate=2.0
    ).generate(seed=3)


class TestFaultConfig:
    def test_defaults_are_fault_free(self):
        config = FaultConfig()
        assert config.dropout_prob == 0.0
        assert config.task_failure_prob == 0.0
        assert config.bid_delay_prob == 0.0
        assert config.bid_loss_prob == 0.0

    @pytest.mark.parametrize(
        "field",
        [
            "dropout_prob",
            "task_failure_prob",
            "bid_delay_prob",
            "bid_loss_prob",
        ],
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5, "0.2"])
    def test_probabilities_validated(self, field, value):
        with pytest.raises(FaultError, match=field):
            FaultConfig(**{field: value})

    def test_max_bid_delay_validated(self):
        with pytest.raises(FaultError, match="max_bid_delay"):
            FaultConfig(max_bid_delay=0)

    def test_max_reassignments_validated(self):
        with pytest.raises(FaultError, match="max_reassignments"):
            FaultConfig(max_reassignments=-1)

    def test_round_trips_through_dict(self):
        config = FaultConfig(dropout_prob=0.2, bid_loss_prob=0.1)
        assert FaultConfig.from_dict(config.to_dict()) == config

    def test_malformed_dict_raises(self):
        with pytest.raises(FaultError, match="malformed"):
            FaultConfig.from_dict({"bogus_field": 1})


class TestPhoneFaults:
    def test_reliable_record_is_not_faulty(self):
        assert not PhoneFaults(phone_id=1).is_faulty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_slot": 3},
            {"fails_task": True},
            {"bid_delay": 1},
            {"bid_lost": True},
        ],
    )
    def test_any_fault_makes_it_faulty(self, kwargs):
        assert PhoneFaults(phone_id=1, **kwargs).is_faulty

    def test_dropout_slot_validated(self):
        with pytest.raises(FaultError, match="dropout_slot"):
            PhoneFaults(phone_id=1, dropout_slot=0)

    def test_bid_delay_validated(self):
        with pytest.raises(FaultError, match="bid_delay"):
            PhoneFaults(phone_id=1, bid_delay=-1)

    def test_round_trips_through_dict(self):
        record = PhoneFaults(phone_id=4, dropout_slot=2, bid_delay=1)
        assert PhoneFaults.from_dict(record.to_dict()) == record


class TestFaultPlan:
    def test_drops_reliable_records(self):
        plan = FaultPlan(
            faults={
                1: PhoneFaults(phone_id=1),
                2: PhoneFaults(phone_id=2, fails_task=True),
            }
        )
        assert plan.affected_phones == (2,)
        assert plan.for_phone(1) is None
        assert plan.for_phone(2).fails_task
        assert len(plan) == 1

    def test_key_mismatch_rejected(self):
        with pytest.raises(FaultError, match="filed under"):
            FaultPlan(faults={1: PhoneFaults(phone_id=2, bid_lost=True)})

    def test_non_record_rejected(self):
        with pytest.raises(FaultError, match="PhoneFaults"):
            FaultPlan(faults={1: "dropout"})

    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            faults={
                3: PhoneFaults(phone_id=3, dropout_slot=5),
                7: PhoneFaults(phone_id=7, bid_lost=True),
            },
            config=FaultConfig(dropout_prob=0.5),
            seed=11,
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.config == plan.config

    def test_malformed_dict_raises(self):
        with pytest.raises(FaultError, match="malformed"):
            FaultPlan.from_dict({"faults": []})


class TestFaultInjector:
    def test_requires_a_config(self):
        with pytest.raises(FaultError, match="FaultConfig"):
            FaultInjector("high")

    def test_same_seed_same_plan(self, scenario):
        injector = FaultInjector(
            FaultConfig(
                dropout_prob=0.3,
                task_failure_prob=0.2,
                bid_delay_prob=0.2,
                bid_loss_prob=0.1,
            )
        )
        assert (
            injector.plan(scenario, seed=9).to_dict()
            == injector.plan(scenario, seed=9).to_dict()
        )

    def test_different_seeds_differ(self, scenario):
        injector = FaultInjector(FaultConfig(dropout_prob=0.5))
        plans = {
            injector.plan(scenario, seed=s).affected_phones
            for s in range(6)
        }
        assert len(plans) > 1

    def test_accepts_an_rng_streams(self, scenario):
        injector = FaultInjector(FaultConfig(dropout_prob=0.4))
        from_streams = injector.plan(scenario, seed=RngStreams(5))
        from_int = injector.plan(scenario, seed=5)
        assert from_streams.to_dict() == from_int.to_dict()

    def test_dropout_slot_inside_active_window(self, scenario):
        injector = FaultInjector(FaultConfig(dropout_prob=1.0))
        plan = injector.plan(scenario, seed=1)
        windows = {
            p.phone_id: (p.arrival, p.departure)
            for p in scenario.profiles
        }
        assert len(plan) == scenario.num_phones
        for record in plan:
            arrival, departure = windows[record.phone_id]
            assert arrival <= record.dropout_slot <= departure

    def test_delay_bounded_by_config(self, scenario):
        injector = FaultInjector(
            FaultConfig(bid_delay_prob=1.0, max_bid_delay=3)
        )
        plan = injector.plan(scenario, seed=2)
        assert all(1 <= record.bid_delay <= 3 for record in plan)

    def test_categories_are_independent_streams(self, scenario):
        """Raising one probability must not reshuffle another category."""
        base = FaultInjector(
            FaultConfig(dropout_prob=0.3, task_failure_prob=0.2)
        ).plan(scenario, seed=4)
        more_failures = FaultInjector(
            FaultConfig(dropout_prob=0.3, task_failure_prob=0.9)
        ).plan(scenario, seed=4)
        dropouts = lambda plan: {  # noqa: E731
            r.phone_id: r.dropout_slot
            for r in plan
            if r.dropout_slot is not None
        }
        assert dropouts(base) == dropouts(more_failures)

    def test_probability_changes_only_flip_phones(self, scenario):
        """One draw per phone per category: a higher probability adds
        dropouts without moving anyone's scheduled drop slot."""
        low = FaultInjector(FaultConfig(dropout_prob=0.2)).plan(
            scenario, seed=8
        )
        high = FaultInjector(FaultConfig(dropout_prob=0.6)).plan(
            scenario, seed=8
        )
        low_drops = {
            r.phone_id: r.dropout_slot
            for r in low
            if r.dropout_slot is not None
        }
        high_drops = {
            r.phone_id: r.dropout_slot
            for r in high
            if r.dropout_slot is not None
        }
        assert set(low_drops) <= set(high_drops)
        for phone_id, slot in low_drops.items():
            assert high_drops[phone_id] == slot
