"""Property suite: invariants over many seeded fault scenarios.

CI rotates the base seed with the run number (``--chaos-seed``), so
every run explores a fresh region of fault-schedule space while any
failure stays reproducible from the printed seed.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import sanitize_outcome
from repro.faults import FaultConfig, run_with_faults
from repro.simulation import WorkloadConfig

NUM_SCENARIOS = 50

WORKLOAD = WorkloadConfig(
    num_slots=12,
    phone_rate=4.0,
    task_rate=2.0,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=20.0,
)

HEAVY_FAULTS = FaultConfig(
    dropout_prob=0.3,
    task_failure_prob=0.2,
    bid_delay_prob=0.2,
    bid_loss_prob=0.1,
)


@pytest.fixture(scope="module", params=range(NUM_SCENARIOS))
def faulty_run(request, chaos_seed):
    seed = chaos_seed + request.param
    scenario = WORKLOAD.generate(seed=seed)
    return seed, run_with_faults(
        scenario, HEAVY_FAULTS, seed=seed, paired=True
    )


class TestRecoveredOutcomeInvariants:
    def test_sanitizer_passes(self, faulty_run):
        """`run_with_faults` sanitizes internally; re-check explicitly."""
        seed, run = faulty_run
        violations = sanitize_outcome(
            run.outcome,
            non_deliverers=run.report.failed_deliverers,
            require_ir=True,
        )
        assert violations == [], f"seed {seed}: {violations}"

    def test_non_deliverers_paid_nothing(self, faulty_run):
        seed, run = faulty_run
        for phone_id in run.report.failed_deliverers:
            assert run.outcome.payment(phone_id) == pytest.approx(0.0), (
                f"seed {seed}: non-deliverer {phone_id} was paid"
            )
            assert phone_id not in run.outcome.winners, (
                f"seed {seed}: non-deliverer {phone_id} kept its task"
            )

    def test_every_paid_winner_delivered(self, faulty_run):
        seed, run = faulty_run
        delivered = set(run.report.delivered)
        for phone_id, amount in run.outcome.payments.items():
            if amount > 0:
                assert phone_id in delivered, (
                    f"seed {seed}: phone {phone_id} paid without delivery"
                )

    def test_ir_for_paying_winners(self, faulty_run):
        seed, run = faulty_run
        bids = {bid.phone_id: bid for bid in run.outcome.bids}
        for phone_id in run.outcome.winners:
            payment = run.outcome.payment(phone_id)
            assert payment >= bids[phone_id].cost - 1e-9, (
                f"seed {seed}: winner {phone_id} paid {payment} below "
                f"claimed cost {bids[phone_id].cost}"
            )

    def test_faulty_welfare_never_exceeds_fault_free(self, faulty_run):
        seed, run = faulty_run
        assert (
            run.reliability.welfare_faulty
            <= run.reliability.welfare_fault_free + 1e-9
        ), f"seed {seed}: faults increased welfare"

    def test_dropped_phones_hold_no_allocation(self, faulty_run):
        seed, run = faulty_run
        winners = set(run.outcome.winners)
        assert not winners & set(run.report.dropped), (
            f"seed {seed}: dropped phones kept tasks"
        )
