"""Recovery semantics: bid faults, reallocation, withheld payments."""

from __future__ import annotations

import pytest

from repro.auction import CrowdsourcingPlatform
from repro.auction.events import (
    PaymentWithheld,
    TaskFailed,
    TaskReassigned,
    TaskUnserved,
)
from repro.auction.round_driver import replay_scenario
from repro.errors import FaultError
from repro.faults import (
    FaultConfig,
    FaultPlan,
    PhoneFaults,
    apply_bid_faults,
    run_with_faults,
)
from repro.model import Bid, SensingTask, SmartphoneProfile, TaskSchedule
from repro.simulation import WorkloadConfig
from repro.simulation.scenario import Scenario


@pytest.fixture
def scenario():
    return WorkloadConfig(
        num_slots=15, phone_rate=4.0, task_rate=2.0
    ).generate(seed=6)


def _tiny_scenario():
    """Two phones, one slot-1 task, four slots."""
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=3, cost=1.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=4, cost=5.0),
    ]
    schedule = TaskSchedule(
        num_slots=4,
        tasks=[SensingTask(task_id=0, slot=1, index=1, value=20.0)],
    )
    return Scenario(profiles, schedule)


class TestApplyBidFaults:
    def test_reliable_bids_pass_through(self):
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=2.0)]
        effective, lost, delayed = apply_bid_faults(bids, FaultPlan())
        assert effective == bids
        assert lost == ()
        assert delayed == ()

    def test_lost_bid_removed(self):
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=2.0)]
        plan = FaultPlan(faults={1: PhoneFaults(phone_id=1, bid_lost=True)})
        effective, lost, delayed = apply_bid_faults(bids, plan)
        assert effective == []
        assert lost == (1,)

    def test_delayed_bid_shrinks_window(self):
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=2.0)]
        plan = FaultPlan(faults={1: PhoneFaults(phone_id=1, bid_delay=2)})
        effective, lost, delayed = apply_bid_faults(bids, plan)
        assert delayed == (1,)
        assert effective[0].arrival == 3
        assert effective[0].departure == 3

    def test_delay_past_departure_loses_the_bid(self):
        bids = [Bid(phone_id=1, arrival=2, departure=3, cost=2.0)]
        plan = FaultPlan(faults={1: PhoneFaults(phone_id=1, bid_delay=2)})
        effective, lost, delayed = apply_bid_faults(bids, plan)
        assert effective == []
        assert lost == (1,)
        assert delayed == ()

    def test_delay_past_dropout_loses_the_bid(self):
        bids = [Bid(phone_id=1, arrival=1, departure=5, cost=2.0)]
        plan = FaultPlan(
            faults={
                1: PhoneFaults(phone_id=1, bid_delay=2, dropout_slot=2)
            }
        )
        effective, lost, _ = apply_bid_faults(bids, plan)
        assert effective == []
        assert lost == (1,)


class TestPlatformRecovery:
    def test_dropped_winner_task_reassigned_payment_withheld(self):
        scenario = _tiny_scenario()
        platform = CrowdsourcingPlatform(num_slots=4)
        for bid in scenario.truthful_bids():
            platform.submit_bid(bid)
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()  # phone 1 (cheaper) wins task 0
        platform.report_dropout(1)
        for _ in range(3):
            platform.close_slot()
        outcome = platform.finalize()

        assert outcome.allocation == {0: 2}
        assert outcome.payment(1) == pytest.approx(0.0)
        assert 1 not in outcome.winners
        # IR floor: phone 2 was not the greedy choice, so its payment is
        # at least its claimed cost.
        assert outcome.payment(2) >= 5.0
        kinds = [type(e).__name__ for e in platform.events]
        assert "PhoneDropped" in kinds
        failed = [e for e in platform.events if isinstance(e, TaskFailed)]
        assert failed[0].reason == "dropout"
        withheld = [
            e for e in platform.events if isinstance(e, PaymentWithheld)
        ]
        assert withheld[0].phone_id == 1
        reassigned = [
            e for e in platform.events if isinstance(e, TaskReassigned)
        ]
        assert reassigned[0].from_phone == 1
        assert reassigned[0].to_phone == 2

    def test_unreliable_winner_fails_at_settlement(self):
        scenario = _tiny_scenario()
        platform = CrowdsourcingPlatform(num_slots=4)
        for bid in scenario.truthful_bids():
            platform.submit_bid(bid)
        platform.report_task_failure(1)
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        # Still allocated: the failure only surfaces when delivery is due.
        assert 1 not in platform.failed_deliverers
        for _ in range(3):
            platform.close_slot()
        outcome = platform.finalize()
        assert outcome.allocation == {0: 2}
        assert outcome.payment(1) == pytest.approx(0.0)
        failed = [e for e in platform.events if isinstance(e, TaskFailed)]
        assert failed[0].reason == "no-delivery"
        # The failure is recorded at phone 1's reported departure slot.
        assert platform.failed_deliverers == {1: 3}

    def test_no_candidate_abandons_the_task(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=3, cost=1.0))
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        platform.report_dropout(1)
        unserved = [
            e for e in platform.events if isinstance(e, TaskUnserved)
        ]
        assert [e.task_id for e in unserved] == [0]
        platform.close_slot()
        platform.close_slot()
        outcome = platform.finalize()
        assert outcome.allocation == {}
        assert outcome.total_payment == pytest.approx(0.0)

    def test_replacement_must_cover_the_task_slot(self):
        # Phone 3 is cheaper but arrives after the task's slot, so it
        # cannot cover constraint (4); the task goes to phone 2.
        platform = CrowdsourcingPlatform(num_slots=4)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=4, cost=1.0))
        platform.submit_bid(Bid(phone_id=2, arrival=1, departure=4, cost=9.0))
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        platform.submit_bid(Bid(phone_id=3, arrival=2, departure=4, cost=2.0))
        platform.report_dropout(1)
        reassigned = [
            e for e in platform.events if isinstance(e, TaskReassigned)
        ]
        assert reassigned[0].to_phone == 2

    def test_max_reassignments_zero_abandons_immediately(self):
        scenario = _tiny_scenario()
        platform = CrowdsourcingPlatform(num_slots=4, max_reassignments=0)
        for bid in scenario.truthful_bids():
            platform.submit_bid(bid)
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        platform.report_dropout(1)
        assert any(
            isinstance(e, TaskUnserved) for e in platform.events
        )
        for _ in range(3):
            platform.close_slot()
        assert platform.finalize().allocation == {}

    def test_failure_chain_within_one_settlement_slot(self):
        # Both phones depart in slot 2; the first winner is unreliable,
        # the replacement is due the same slot and must settle there.
        platform = CrowdsourcingPlatform(num_slots=2)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=2, cost=1.0))
        platform.submit_bid(Bid(phone_id=2, arrival=1, departure=2, cost=3.0))
        platform.report_task_failure(1)
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        platform.close_slot()
        outcome = platform.finalize()
        assert outcome.allocation == {0: 2}
        assert outcome.payment(2) >= 3.0
        assert outcome.payment_slot(2) == 2


class TestRunWithFaults:
    def test_requires_config_or_plan(self, scenario):
        with pytest.raises(FaultError, match="FaultConfig or FaultPlan"):
            run_with_faults(scenario, 0.3)

    def test_fault_free_config_matches_replay(self, scenario):
        """With nothing scheduled to fail, the fault pipeline is
        byte-identical to the plain incremental platform."""
        run = run_with_faults(scenario, FaultConfig(), seed=1)
        outcome, _ = replay_scenario(scenario)
        assert run.outcome == outcome
        assert run.report.plan.affected_phones == ()
        assert run.report.dropped == ()
        assert run.report.failed_deliverers == ()

    def test_deterministic_given_seed(self, scenario):
        config = FaultConfig(
            dropout_prob=0.3,
            task_failure_prob=0.2,
            bid_delay_prob=0.2,
            bid_loss_prob=0.1,
        )
        first = run_with_faults(scenario, config, seed=5)
        second = run_with_faults(scenario, config, seed=5)
        assert first.outcome.allocation == second.outcome.allocation
        # Determinism: the same seed must reproduce bitwise-identical
        # payments, so exact dict equality is the point here.
        assert first.outcome.payments == second.outcome.payments  # repro: noqa-no-float-equality -- determinism check
        assert first.report.dropped == second.report.dropped

    def test_accepts_a_materialised_plan(self, scenario):
        phone = scenario.profiles[0]
        plan = FaultPlan(
            faults={
                phone.phone_id: PhoneFaults(
                    phone_id=phone.phone_id, bid_lost=True
                )
            }
        )
        run = run_with_faults(scenario, plan)
        assert run.report.lost_bids == (phone.phone_id,)
        assert phone.phone_id not in run.outcome.winners

    def test_report_partitions_failed_tasks(self, scenario):
        config = FaultConfig(dropout_prob=0.4, task_failure_prob=0.2)
        run = run_with_faults(scenario, config, seed=3)
        report = run.report
        assert set(report.failed_tasks) == set(
            report.recovered_tasks
        ) | set(report.abandoned_tasks)
        assert not set(report.recovered_tasks) & set(
            report.abandoned_tasks
        )
        # Recovered tasks are exactly the failed ones finally allocated.
        for task_id in report.recovered_tasks:
            assert task_id in run.outcome.allocation
        for task_id in report.abandoned_tasks:
            assert task_id not in run.outcome.allocation

    def test_paired_run_attaches_reliability(self, scenario):
        config = FaultConfig(dropout_prob=0.3)
        run = run_with_faults(scenario, config, seed=2, paired=True)
        assert run.fault_free is not None
        assert run.reliability is not None
        reliability = run.reliability
        assert 0.0 <= reliability.completion_rate <= 1.0
        assert reliability.tasks_delivered <= reliability.tasks_total
        assert (
            reliability.welfare_faulty
            <= reliability.welfare_fault_free + 1e-9
        )
        assert reliability.phones_dropped == len(run.report.dropped)

    def test_unpaired_run_has_no_reliability(self, scenario):
        run = run_with_faults(scenario, FaultConfig(dropout_prob=0.2))
        assert run.fault_free is None
        assert run.reliability is None
