"""Unit tests for the property auditors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import CostScalingStrategy, DelayedArrivalStrategy
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import (
    RandomAllocationMechanism,
    SecondPriceSlotMechanism,
)
from repro.metrics import (
    audit_individual_rationality,
    audit_monotonicity,
    audit_truthfulness,
)
from repro.metrics.properties import default_deviation_strategies
from repro.model import SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario
from repro.simulation.paper_example import (
    paper_example_profiles,
    paper_example_schedule,
)


@pytest.fixture
def paper_scenario():
    return Scenario(paper_example_profiles(), paper_example_schedule())


@pytest.fixture
def dense_scenario(small_workload):
    return small_workload.generate(seed=7)


class TestIndividualRationality:
    def test_online_passes(self, paper_scenario):
        violations = audit_individual_rationality(
            OnlineGreedyMechanism(), paper_scenario
        )
        assert violations == []

    def test_offline_passes(self, paper_scenario):
        violations = audit_individual_rationality(
            OfflineVCGMechanism(), paper_scenario
        )
        assert violations == []

    def test_dense_scenario_passes(self, dense_scenario):
        for mechanism in (OfflineVCGMechanism(), OnlineGreedyMechanism()):
            assert (
                audit_individual_rationality(mechanism, dense_scenario)
                == []
            )

    def test_violation_detected(self):
        """A deliberately broken mechanism (pays less than cost)."""

        class Underpaying(OnlineGreedyMechanism):
            def run(self, bids, schedule, config=None):
                outcome = super().run(bids, schedule, config)
                from repro.model import AuctionOutcome

                return AuctionOutcome(
                    bids=outcome.bids,
                    schedule=outcome.schedule,
                    allocation=outcome.allocation,
                    payments={p: 0.0 for p in outcome.payments},
                )

        profiles = [
            SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=5.0)
        ]
        scenario = Scenario(
            profiles, TaskSchedule.from_counts([1], value=10.0)
        )
        violations = audit_individual_rationality(Underpaying(), scenario)
        assert len(violations) == 1
        assert violations[0].phone_id == 1
        assert violations[0].utility == pytest.approx(-5.0)


class TestTruthfulnessAudit:
    def test_online_passes_on_paper_example(self, paper_scenario, rng):
        report = audit_truthfulness(
            OnlineGreedyMechanism(), paper_scenario, rng
        )
        assert report.passed, report.violations
        assert report.deviations_tested > 0

    def test_offline_passes_on_paper_example(self, paper_scenario, rng):
        report = audit_truthfulness(
            OfflineVCGMechanism(), paper_scenario, rng
        )
        assert report.passed, report.violations

    def test_second_price_fails(self, paper_scenario, rng):
        """The audit rediscovers the Fig. 5 deviation."""
        report = audit_truthfulness(
            SecondPriceSlotMechanism(),
            paper_scenario,
            rng,
            strategies=[DelayedArrivalStrategy(2)],
        )
        assert not report.passed
        delayed = [v for v in report.violations if v.phone_id == 1]
        assert delayed
        assert delayed[0].gain == pytest.approx(4.0)

    def test_pay_as_bid_fails_on_cost_inflation(self, rng):
        profiles = [
            SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=2.0)
        ]
        scenario = Scenario(
            profiles, TaskSchedule.from_counts([1], value=10.0)
        )
        report = audit_truthfulness(
            RandomAllocationMechanism(seed=0),
            scenario,
            rng,
            strategies=[CostScalingStrategy(2.0)],
        )
        assert not report.passed
        assert report.violations[0].strategy == "cost-scaling"

    def test_max_phones_sampling(self, dense_scenario, rng):
        report = audit_truthfulness(
            OnlineGreedyMechanism(),
            dense_scenario,
            rng,
            strategies=[CostScalingStrategy(1.5)],
            max_phones=5,
        )
        assert report.deviations_tested <= 5

    def test_default_battery_covers_three_dimensions(self):
        names = {s.name for s in default_deviation_strategies()}
        assert "cost-scaling" in names
        assert "delayed-arrival" in names
        assert "early-departure" in names
        assert "combined-misreport" in names


class TestMonotonicityAudit:
    def test_online_monotone(self, paper_scenario, rng):
        report = audit_monotonicity(
            OnlineGreedyMechanism(), paper_scenario, rng, samples=60
        )
        assert report.passed, report.violations
        assert report.pairs_tested > 0

    def test_online_monotone_dense(self, dense_scenario, rng):
        report = audit_monotonicity(
            OnlineGreedyMechanism(), dense_scenario, rng, samples=40
        )
        assert report.passed, report.violations

    def test_empty_scenario(self, rng):
        scenario = Scenario(
            [], TaskSchedule.from_counts([1], value=10.0)
        )
        report = audit_monotonicity(
            OnlineGreedyMechanism(), scenario, rng
        )
        assert report.passed
        assert report.pairs_tested == 0

    def test_non_monotone_mechanism_caught(self, paper_scenario, rng):
        """A deliberately broken rule: highest cost wins."""
        from repro.mechanisms.base import Mechanism
        from repro.model import AuctionOutcome

        class HighestWins(Mechanism):
            name = "highest-wins"
            is_truthful = False  # deliberately manipulable
            is_online = False

            def run(self, bids, schedule, config=None):
                self._resolve_config(bids, schedule, config)
                allocation = {}
                used = set()
                for task in schedule:
                    active = [
                        b
                        for b in bids
                        if b.is_active(task.slot) and b.phone_id not in used
                    ]
                    if not active:
                        continue
                    winner = max(active, key=lambda b: (b.cost, b.phone_id))
                    allocation[task.task_id] = winner.phone_id
                    used.add(winner.phone_id)
                return AuctionOutcome(
                    bids=bids,
                    schedule=schedule,
                    allocation=allocation,
                    payments={},
                )

        report = audit_monotonicity(
            HighestWins(), paper_scenario, rng, samples=80
        )
        assert not report.passed
