"""Unit tests for the per-slot time-series metrics."""

from __future__ import annotations

import pytest

from repro.mechanisms import OnlineGreedyMechanism
from repro.metrics import (
    cumulative,
    payments_by_slot,
    platform_float_by_slot,
    pool_occupancy,
    tasks_served_by_slot,
    tasks_unserved_by_slot,
    welfare_by_slot,
    winner_waiting_stats,
)
from repro.metrics.welfare import true_social_welfare
from repro.model import SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario


@pytest.fixture
def scenario():
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=3, cost=2.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=3, cost=5.0),
        SmartphoneProfile(phone_id=3, arrival=3, departure=3, cost=1.0),
    ]
    schedule = TaskSchedule.from_counts([1, 0, 2], value=10.0)
    return Scenario(profiles, schedule)


@pytest.fixture
def outcome(scenario):
    return OnlineGreedyMechanism().run(
        scenario.truthful_bids(), scenario.schedule
    )


class TestWelfareSeries:
    def test_per_slot_values(self, outcome, scenario):
        series = welfare_by_slot(outcome, scenario)
        assert len(series) == 3
        # Slot 1: phone 1 (cost 2) -> 8.  Slot 3: phones 3 and 2.
        assert series[0] == pytest.approx(8.0)
        assert series[1] == 0.0
        assert series[2] == pytest.approx((10 - 1) + (10 - 5))

    def test_sums_to_total_welfare(self, outcome, scenario):
        assert sum(welfare_by_slot(outcome, scenario)) == pytest.approx(
            true_social_welfare(outcome, scenario)
        )


class TestPaymentSeries:
    def test_settles_at_departures(self, outcome, scenario):
        series = payments_by_slot(outcome)
        # All three phones report departure 3, so all cash flows there.
        assert series[0] == 0.0
        assert series[1] == 0.0
        assert series[2] == pytest.approx(outcome.total_payment)

    def test_sums_to_total_payment(self, outcome):
        assert sum(payments_by_slot(outcome)) == pytest.approx(
            outcome.total_payment
        )


class TestTaskSeries:
    def test_served_by_slot(self, outcome):
        assert tasks_served_by_slot(outcome) == [1, 0, 2]

    def test_unserved_by_slot(self, scenario):
        # Remove the cheap phones: only phone 2 remains for 3 tasks.
        bids = [scenario.profile(2).truthful_bid()]
        outcome = OnlineGreedyMechanism().run(bids, scenario.schedule)
        served = tasks_served_by_slot(outcome)
        unserved = tasks_unserved_by_slot(outcome)
        assert [s + u for s, u in zip(served, unserved)] == [1, 0, 2]
        assert sum(unserved) == 2

    def test_served_plus_unserved_covers_schedule(self, outcome, scenario):
        served = tasks_served_by_slot(outcome)
        unserved = tasks_unserved_by_slot(outcome)
        assert [s + u for s, u in zip(served, unserved)] == list(
            scenario.schedule.counts
        )


class TestPoolOccupancy:
    def test_counts_active_profiles(self, scenario):
        assert pool_occupancy(scenario) == [2, 2, 3]


class TestWaitingStats:
    def test_waits(self, outcome, scenario):
        stats = winner_waiting_stats(outcome, scenario)
        # Phone 1 wins slot 1 (arrived 1): wait 0.
        # Phone 3 wins slot 3 (arrived 3): wait 0.
        # Phone 2 wins slot 3 (arrived 1): wait 2.
        assert stats.waits == {1: 0, 2: 2, 3: 0}
        assert stats.mean_wait == pytest.approx(2 / 3)
        assert stats.max_wait == 2

    def test_empty_outcome(self, scenario):
        outcome = OnlineGreedyMechanism().run([], scenario.schedule)
        stats = winner_waiting_stats(outcome, scenario)
        assert stats.waits == {}
        assert stats.mean_wait == 0.0
        assert stats.max_wait == 0


class TestCumulativeAndFloat:
    def test_cumulative(self):
        assert cumulative([1.0, 2.0, -1.0]) == [1.0, 3.0, 2.0]
        assert cumulative([]) == []

    def test_platform_float(self, outcome, scenario):
        series = platform_float_by_slot(outcome, scenario)
        assert len(series) == 3
        # Before settlement the platform holds positive float.
        assert series[0] == pytest.approx(8.0)
        # At round end: total welfare minus total payments.
        expected_end = true_social_welfare(
            outcome, scenario
        ) - outcome.total_payment
        assert series[-1] == pytest.approx(expected_end)
