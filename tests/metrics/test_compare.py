"""Unit tests for the paired mechanism comparison."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import FifoMechanism
from repro.metrics.compare import paired_comparison
from repro.simulation import WorkloadConfig


@pytest.fixture
def workload():
    return WorkloadConfig(
        num_slots=10,
        phone_rate=3.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=20.0,
    )


class TestPairedComparison:
    def test_offline_beats_online_pointwise(self, workload):
        result = paired_comparison(
            OfflineVCGMechanism(),
            OnlineGreedyMechanism(reserve_price=True),
            workload,
            seeds=range(6),
        )
        assert result.losses == 0  # offline optimum never trails
        assert result.diff.mean >= 0.0
        assert len(result.differences) == 6

    def test_online_beats_fifo_significantly(self, workload):
        result = paired_comparison(
            OnlineGreedyMechanism(),
            FifoMechanism(),
            workload,
            seeds=range(10),
        )
        assert result.diff.mean > 0.0
        assert result.wins > result.losses
        assert result.significant_at_95

    def test_self_comparison_is_all_ties(self, workload):
        result = paired_comparison(
            OnlineGreedyMechanism(),
            OnlineGreedyMechanism(),
            workload,
            seeds=range(4),
        )
        assert result.ties == 4
        assert result.diff.mean == 0.0
        assert result.t_statistic is None
        assert not result.significant_at_95

    def test_payment_metric(self, workload):
        result = paired_comparison(
            OfflineVCGMechanism(),
            OnlineGreedyMechanism(),
            workload,
            seeds=range(4),
            metric="total_payment",
        )
        assert result.metric == "total_payment"
        assert len(result.differences) == 4

    def test_tasks_served_metric(self, workload):
        result = paired_comparison(
            OnlineGreedyMechanism(),
            FifoMechanism(),
            workload,
            seeds=range(3),
            metric="tasks_served",
        )
        assert result.metric == "tasks_served"

    def test_describe(self, workload):
        result = paired_comparison(
            OfflineVCGMechanism(),
            OnlineGreedyMechanism(),
            workload,
            seeds=range(3),
        )
        text = result.describe("offline", "online")
        assert "offline − online" in text
        assert "w/t/l" in text

    def test_unknown_metric_rejected(self, workload):
        with pytest.raises(ValidationError, match="unknown metric"):
            paired_comparison(
                OfflineVCGMechanism(),
                OnlineGreedyMechanism(),
                workload,
                seeds=range(2),
                metric="bogus",
            )

    def test_empty_seeds_rejected(self, workload):
        with pytest.raises(ValidationError, match="seeds"):
            paired_comparison(
                OfflineVCGMechanism(),
                OnlineGreedyMechanism(),
                workload,
                seeds=[],
            )
