"""Unit tests for the utility-landscape analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import SecondPriceSlotMechanism
from repro.metrics import arrival_landscape, cost_landscape
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


@pytest.fixture
def phone1():
    return next(p for p in paper_example_profiles() if p.phone_id == 1)


@pytest.fixture
def bids():
    return paper_example_bids()


@pytest.fixture
def schedule():
    return paper_example_schedule()


class TestCostLandscape:
    def test_truthful_utility_recorded(self, phone1, bids, schedule):
        landscape = cost_landscape(
            OnlineGreedyMechanism(), phone1, bids, schedule,
            claimed_costs=[1.0, 3.0, 5.0],
        )
        # Phone 1 is paid 9 against cost 3 when truthful.
        assert landscape.truthful_utility == pytest.approx(6.0)
        assert landscape.phone_id == 1

    def test_flat_at_truth_for_truthful_mechanisms(
        self, phone1, bids, schedule
    ):
        costs = list(np.linspace(0.5, 12.0, 24))
        for mechanism in (OnlineGreedyMechanism(), OfflineVCGMechanism()):
            landscape = cost_landscape(
                mechanism, phone1, bids, schedule, claimed_costs=costs
            )
            assert landscape.is_flat_at_truth, (
                mechanism.name,
                landscape.max_gain,
            )

    def test_winning_region_has_constant_utility(
        self, phone1, bids, schedule
    ):
        """Critical-value payments: while winning, utility is constant."""
        landscape = cost_landscape(
            OnlineGreedyMechanism(), phone1, bids, schedule,
            claimed_costs=[1.0, 2.0, 4.0, 8.0],
        )
        winning_utilities = {
            round(p.utility, 9) for p in landscape.points if p.won
        }
        assert len(winning_utilities) == 1

    def test_losing_region_utility_zero(self, phone1, bids, schedule):
        landscape = cost_landscape(
            OnlineGreedyMechanism(), phone1, bids, schedule,
            claimed_costs=[50.0],
        )
        point = landscape.points[0]
        assert not point.won
        assert point.utility == pytest.approx(0.0)

    def test_empty_costs_rejected(self, phone1, bids, schedule):
        with pytest.raises(ValidationError):
            cost_landscape(
                OnlineGreedyMechanism(), phone1, bids, schedule,
                claimed_costs=[],
            )


class TestArrivalLandscape:
    def test_covers_all_feasible_arrivals(self, phone1, bids, schedule):
        landscape = arrival_landscape(
            OnlineGreedyMechanism(), phone1, bids, schedule
        )
        arrivals = [p.bid.arrival for p in landscape.points]
        assert arrivals == [2, 3, 4, 5]

    def test_flat_for_our_mechanism(self, phone1, bids, schedule):
        landscape = arrival_landscape(
            OnlineGreedyMechanism(), phone1, bids, schedule
        )
        assert landscape.is_flat_at_truth

    def test_bump_under_second_price(self, phone1, bids, schedule):
        """The Fig. 5 deviation shows up as a bump in the landscape."""
        landscape = arrival_landscape(
            SecondPriceSlotMechanism(), phone1, bids, schedule
        )
        assert not landscape.is_flat_at_truth
        # The paper's 2-slot delay (claimed arrival 4) gains exactly 4...
        delayed = next(p for p in landscape.points if p.bid.arrival == 4)
        assert delayed.utility - landscape.truthful_utility == (
            pytest.approx(4.0)
        )
        # ...and the landscape shows the full extent of the problem: an
        # even later claim (slot 5, second price 9) gains 5.
        assert landscape.max_gain >= 4.0
