"""Unit tests for social-welfare metrics."""

from __future__ import annotations

import pytest

from repro.mechanisms import OnlineGreedyMechanism
from repro.metrics import phone_utilities, true_social_welfare
from repro.metrics.welfare import welfare_per_task
from repro.model import AuctionOutcome, SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario


@pytest.fixture
def scenario():
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=2, cost=2.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=2, cost=6.0),
        SmartphoneProfile(phone_id=3, arrival=2, departure=2, cost=9.0),
    ]
    schedule = TaskSchedule.from_counts([1, 1], value=10.0)
    return Scenario(profiles, schedule)


@pytest.fixture
def outcome(scenario):
    return AuctionOutcome(
        bids=scenario.truthful_bids(),
        schedule=scenario.schedule,
        allocation={0: 1, 1: 2},
        payments={1: 6.0, 2: 9.0},
    )


class TestTrueSocialWelfare:
    def test_definition3(self, outcome, scenario):
        assert true_social_welfare(outcome, scenario) == pytest.approx(
            (10 - 2) + (10 - 6)
        )

    def test_empty_allocation(self, scenario):
        empty = AuctionOutcome(
            bids=scenario.truthful_bids(),
            schedule=scenario.schedule,
            allocation={},
            payments={},
        )
        assert true_social_welfare(empty, scenario) == pytest.approx(0.0)

    def test_uses_real_cost_not_claim(self, scenario):
        """A lying winner is valued at its real cost."""
        lying_bid = scenario.profile(1).truthful_bid().with_cost(7.0)
        bids = [lying_bid] + [
            p.truthful_bid() for p in scenario.profiles if p.phone_id != 1
        ]
        outcome = AuctionOutcome(
            bids=bids,
            schedule=scenario.schedule,
            allocation={0: 1},
            payments={1: 7.0},
        )
        assert outcome.claimed_welfare == pytest.approx(3.0)
        assert true_social_welfare(outcome, scenario) == pytest.approx(8.0)


class TestWelfarePerTask:
    def test_definition2(self, outcome, scenario):
        per_task = welfare_per_task(outcome, scenario)
        assert per_task == {0: pytest.approx(8.0), 1: pytest.approx(4.0)}


class TestPhoneUtilities:
    def test_definition1(self, outcome, scenario):
        utilities = phone_utilities(outcome, scenario)
        assert utilities[1] == pytest.approx(4.0)  # paid 6, cost 2
        assert utilities[2] == pytest.approx(3.0)  # paid 9, cost 6
        assert utilities[3] == pytest.approx(0.0)

    def test_covers_non_bidding_phones(self, scenario):
        """Phones in the scenario that submitted no bid have utility 0."""
        bids = [scenario.profile(1).truthful_bid()]
        outcome = OnlineGreedyMechanism().run(bids, scenario.schedule)
        utilities = phone_utilities(outcome, scenario)
        assert set(utilities) == {1, 2, 3}
        assert utilities[2] == pytest.approx(0.0)
        assert utilities[3] == pytest.approx(0.0)

    def test_truthful_online_utilities_nonnegative(self, scenario):
        outcome = OnlineGreedyMechanism().run(
            scenario.truthful_bids(), scenario.schedule
        )
        for utility in phone_utilities(outcome, scenario).values():
            assert utility >= -1e-9
