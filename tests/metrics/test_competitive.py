"""Unit tests for the empirical competitive ratio (Theorem 6)."""

from __future__ import annotations

import pytest

from repro.mechanisms import OnlineGreedyMechanism
from repro.metrics import empirical_competitive_ratio
from repro.model import Bid, TaskSchedule
from repro.simulation import WorkloadConfig


class TestEmpiricalCompetitiveRatio:
    def test_ratio_at_most_one(self):
        workload = WorkloadConfig(
            num_slots=10,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=25.0,
        )
        for seed in range(5):
            scenario = workload.generate(seed=seed)
            ratio = empirical_competitive_ratio(
                scenario.truthful_bids(), scenario.schedule
            )
            if ratio is not None:
                assert ratio <= 1.0 + 1e-9

    def test_theorem6_bound_on_random_instances(self):
        """ω_apx / ω_opt >= 1/2 when ν dominates costs."""
        workload = WorkloadConfig(
            num_slots=10,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=25.0,  # ν > max cost (19): all weights positive
        )
        for seed in range(10):
            scenario = workload.generate(seed=seed)
            ratio = empirical_competitive_ratio(
                scenario.truthful_bids(), scenario.schedule
            )
            if ratio is not None:
                assert ratio >= 0.5 - 1e-9, f"seed {seed}: {ratio}"

    def test_half_is_approached_by_adversarial_instance(self):
        """The classic instance where greedy hits exactly ~1/2.

        Phone 1 (cheap, flexible) is grabbed at slot 1; the slot-2 task
        then has nobody.  As ν → max-cost the ratio → 1/2.
        """
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=9.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=10.0),
        ]
        schedule = TaskSchedule.from_counts([1, 1], value=11.0)
        ratio = empirical_competitive_ratio(bids, schedule)
        # online: serves slot 1 with phone 1 (gain 2); offline: 1 + 2.
        assert ratio == pytest.approx(2.0 / 3.0)
        assert ratio >= 0.5

    def test_none_when_optimum_zero(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        assert empirical_competitive_ratio(bids, schedule) is None

    def test_custom_online_mechanism(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = TaskSchedule.from_counts([1, 1], value=10.0)
        ratio = empirical_competitive_ratio(
            bids, schedule, online=OnlineGreedyMechanism()
        )
        # online greedy: 9; offline: 8 + 9 = 17.
        assert ratio == pytest.approx(9.0 / 17.0)
