"""Unit tests for measurement aggregation."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.metrics import Summary, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(
            math.sqrt(sum((v - 2.5) ** 2 for v in [1, 2, 3, 4]) / 3)
        )

    def test_ci95_formula(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        expected = 1.959963984540054 * summary.std / 2.0
        assert summary.ci95 == pytest.approx(expected)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci95 == 0.0
        assert summary.count == 1

    def test_none_entries_skipped(self):
        summary = summarize([1.0, None, 3.0])
        assert summary.count == 2
        assert summary.mean == 2.0

    def test_all_none_rejected(self):
        with pytest.raises(ValidationError, match="no values"):
            summarize([None, None])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            summarize([1.0, float("nan")])

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0]))
        assert "±" in text
        assert "n=2" in text

    def test_ints_accepted(self):
        assert summarize([1, 2, 3]).mean == pytest.approx(2.0)

    def test_frozen(self):
        summary = summarize([1.0])
        with pytest.raises(Exception):
            summary.mean = 9.0  # type: ignore[misc]
