"""Unit tests for the overpayment ratio (Definition 11)."""

from __future__ import annotations

import pytest

from repro.metrics import overpayment_ratio, total_overpayment, total_real_cost
from repro.model import AuctionOutcome, SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario


@pytest.fixture
def scenario():
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=2, cost=4.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=2, cost=6.0),
    ]
    schedule = TaskSchedule.from_counts([1, 1], value=10.0)
    return Scenario(profiles, schedule)


def _outcome(scenario, allocation, payments):
    return AuctionOutcome(
        bids=scenario.truthful_bids(),
        schedule=scenario.schedule,
        allocation=allocation,
        payments=payments,
    )


class TestDefinition11:
    def test_ratio(self, scenario):
        outcome = _outcome(
            scenario, {0: 1, 1: 2}, {1: 6.0, 2: 9.0}
        )
        # Overpayment = (6−4) + (9−6) = 5; real costs = 10.
        assert total_real_cost(outcome, scenario) == pytest.approx(10.0)
        assert total_overpayment(outcome, scenario) == pytest.approx(5.0)
        assert overpayment_ratio(outcome, scenario) == pytest.approx(0.5)

    def test_exact_cost_payment_gives_zero(self, scenario):
        outcome = _outcome(scenario, {0: 1}, {1: 4.0})
        assert overpayment_ratio(outcome, scenario) == pytest.approx(0.0)

    def test_none_when_nothing_allocated(self, scenario):
        outcome = _outcome(scenario, {}, {})
        assert overpayment_ratio(outcome, scenario) is None

    def test_unpaid_winner_counts_negative(self, scenario):
        """A winner that never got a payment entry is pure underpayment."""
        outcome = _outcome(scenario, {0: 1}, {})
        assert total_overpayment(outcome, scenario) == pytest.approx(-4.0)
        assert overpayment_ratio(outcome, scenario) == pytest.approx(-1.0)

    def test_payment_to_loser_is_pure_overpayment(self, scenario):
        outcome = _outcome(scenario, {0: 1}, {1: 4.0, 2: 3.0})
        assert total_overpayment(outcome, scenario) == pytest.approx(3.0)

    def test_zero_cost_winners_give_none_ratio(self):
        profiles = [
            SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=0.0)
        ]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        scenario = Scenario(profiles, schedule)
        outcome = AuctionOutcome(
            bids=scenario.truthful_bids(),
            schedule=schedule,
            allocation={0: 1},
            payments={1: 2.0},
        )
        # Denominator is zero: the ratio is undefined, not infinite.
        assert overpayment_ratio(outcome, scenario) is None
