"""Unit tests for the per-slot second-price baseline (Fig. 5)."""

from __future__ import annotations

import pytest

from repro.mechanisms.baselines import SecondPriceSlotMechanism
from repro.model import Bid, TaskSchedule
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_schedule,
)


@pytest.fixture
def mechanism():
    return SecondPriceSlotMechanism()


class TestFig5aTruthfulReports:
    """Fig. 5(a): everyone truthful under the second-price rule."""

    def test_phone2_paid_6_in_slot_1(self, mechanism):
        outcome = mechanism.run(paper_example_bids(), paper_example_schedule())
        # "Smartphone 2 is chosen ... and the second lowest price in the
        # first slot is 6 which is reported by Smartphone 7".
        assert outcome.payment(2) == pytest.approx(6.0)
        assert outcome.payment_slot(2) == 1

    def test_phone1_paid_4_in_slot_2(self, mechanism):
        outcome = mechanism.run(paper_example_bids(), paper_example_schedule())
        # "In the second slot the sensing task is allocated to
        # Smartphone 1 and it is paid 4."
        assert outcome.payment(1) == pytest.approx(4.0)
        assert outcome.payment_slot(1) == 2


class TestFig5bArrivalDelayDeviation:
    """Fig. 5(b): Smartphone 1 delays its arrival by 2 slots and gains."""

    def _deviated_bids(self):
        bids = []
        for bid in paper_example_bids():
            if bid.phone_id == 1:
                bids.append(bid.with_window(4, 5))  # reports [4, 5]
            else:
                bids.append(bid)
        return bids

    def test_phone1_wins_slot_4_and_paid_8(self, mechanism):
        outcome = mechanism.run(self._deviated_bids(), paper_example_schedule())
        schedule = paper_example_schedule()
        assert schedule.task(
            next(t for t, p in outcome.allocation.items() if p == 1)
        ).slot == 4
        # "it obtains a payment of 8"
        assert outcome.payment(1) == pytest.approx(8.0)

    def test_deviation_is_profitable(self, mechanism):
        """The paper's conclusion: utility increases by 4."""
        truthful = mechanism.run(
            paper_example_bids(), paper_example_schedule()
        )
        deviated = mechanism.run(
            self._deviated_bids(), paper_example_schedule()
        )
        real_cost = 3.0  # phone 1's real cost
        truthful_utility = truthful.payment(1) - real_cost
        deviated_utility = deviated.payment(1) - real_cost
        assert deviated_utility - truthful_utility == pytest.approx(4.0)


class TestMechanics:
    def test_winner_pays_first_losing_bid(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=2.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=5.0),
            Bid(phone_id=3, arrival=1, departure=1, cost=9.0),
        ]
        schedule = TaskSchedule.from_counts([2], value=10.0)
        outcome = mechanism.run(bids, schedule)
        # Phones 1 and 2 win; the first losing bid is phone 3 at 9.
        assert outcome.payment(1) == pytest.approx(9.0)
        assert outcome.payment(2) == pytest.approx(9.0)

    def test_empty_pool_pays_own_bid(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=2.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        outcome = mechanism.run(bids, schedule)
        assert outcome.payment(1) == pytest.approx(2.0)

    def test_payment_immediate(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=5, cost=2.0),
            Bid(phone_id=2, arrival=1, departure=5, cost=5.0),
        ]
        schedule = TaskSchedule.from_counts([1, 0, 0, 0, 0], value=10.0)
        outcome = mechanism.run(bids, schedule)
        assert outcome.payment_slot(1) == 1  # not the departure slot

    def test_not_marked_truthful(self, mechanism):
        assert not mechanism.is_truthful
        assert mechanism.is_online
