"""The event-driven streaming engine: allocation, payments, telemetry.

Equivalence at scale lives in
``tests/properties/test_streaming_properties.py``; this module covers
the engine's surface — parameter validation, the single-pass allocation
against :func:`run_greedy_allocation`, the incremental-payment guard
rails, the fallback regime, memory discipline of the virtual-snapshot
prober, and the ``online.stream.*`` counters.
"""

import pickle
import tracemalloc

import pytest

from repro import obs
from repro.errors import MechanismError
from repro.mechanisms import (
    OnlineGreedyMechanism,
    StreamingGreedyEngine,
    create_mechanism,
)
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import (
    GreedyProber,
    bid_index,
    run_greedy_allocation,
)
from repro.model.task import TaskSchedule
from repro.obs import InMemorySink, Tracer
from repro.simulation import WorkloadConfig


def _scenario(seed: int = 3, num_slots: int = 20, **kwargs):
    return WorkloadConfig(num_slots=num_slots, **kwargs).generate(seed=seed)


class TestEngineSelection:
    def test_unknown_engine_is_rejected(self):
        with pytest.raises(MechanismError, match="engine"):
            OnlineGreedyMechanism(engine="turbo")

    def test_engine_property_reports_the_choice(self):
        assert OnlineGreedyMechanism().engine == "batch"
        assert (
            OnlineGreedyMechanism(engine="streaming").engine == "streaming"
        )

    def test_registry_builds_the_streaming_variant(self):
        mechanism = create_mechanism("online-greedy", engine="streaming")
        assert isinstance(mechanism, OnlineGreedyMechanism)
        assert mechanism.engine == "streaming"

    def test_streaming_outcome_matches_batch_via_registry(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        batch = create_mechanism("online-greedy").run(
            bids, scenario.schedule
        )
        streaming = create_mechanism(
            "online-greedy", engine="streaming"
        ).run(bids, scenario.schedule)
        assert pickle.dumps(streaming) == pickle.dumps(batch)


class TestStreamingAllocation:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("reserve_price", [False, True])
    def test_base_run_matches_batch_allocation(self, seed, reserve_price):
        scenario = _scenario(seed=seed)
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(
            bids, scenario.schedule, reserve_price=reserve_price
        )
        batch = run_greedy_allocation(
            bids, scenario.schedule, reserve_price=reserve_price
        )
        assert engine.base_run == batch

    def test_event_count_covers_arrivals_and_tasks(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(bids, scenario.schedule)
        assert engine.events >= len(bids)

    def test_empty_round_streams_cleanly(self):
        schedule = TaskSchedule.from_counts([0, 0, 0], value=30.0)
        engine = StreamingGreedyEngine([], schedule)
        assert engine.base_run.allocation == {}
        assert engine.cascade_steps == 0


class TestPaymentGuards:
    def test_engine_for_different_bids_is_rejected(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(bids[:-1], scenario.schedule)
        run = run_greedy_allocation(bids, scenario.schedule)
        phone_id, win_slot = next(iter(run.win_slots.items()))
        winner = next(b for b in bids if b.phone_id == phone_id)
        with pytest.raises(MechanismError, match="different bid vector"):
            algorithm2_payment(
                bids,
                scenario.schedule,
                winner,
                win_slot,
                engine=engine,
            )

    def test_engine_reserve_mismatch_is_rejected(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(
            bids, scenario.schedule, reserve_price=True
        )
        run = run_greedy_allocation(bids, scenario.schedule)
        phone_id, win_slot = next(iter(run.win_slots.items()))
        winner = next(b for b in bids if b.phone_id == phone_id)
        with pytest.raises(MechanismError, match="reserve_price"):
            algorithm2_payment(
                bids,
                scenario.schedule,
                winner,
                win_slot,
                engine=engine,
            )

    def test_covers_accepts_equal_but_distinct_sequences(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(bids, scenario.schedule)
        assert engine.covers(bids)
        assert engine.covers(list(bids))
        assert not engine.covers(bids[:-1])

    def test_incremental_requires_homogeneous_values_under_reserve(self):
        """Heterogeneous task values + reserve → prober fallback."""
        scenario = _scenario()
        bids = scenario.truthful_bids()
        tasks = list(scenario.schedule.tasks)
        bumped = [
            task if i else type(task)(
                task_id=task.task_id,
                slot=task.slot,
                index=task.index,
                value=task.value + 5.0,
            )
            for i, task in enumerate(tasks)
        ]
        schedule = TaskSchedule(scenario.schedule.num_slots, bumped)
        assert schedule.uniform_value is None
        engine = StreamingGreedyEngine(bids, schedule, reserve_price=True)
        assert not engine.supports_incremental_payments
        with pytest.raises(MechanismError, match="incremental"):
            engine.exact_payment(bids[0])
        # The payment entry points silently reroute through the prober
        # and stay bit-identical to the engine-free path.
        for phone_id, win_slot in engine.base_run.win_slots.items():
            winner = engine.bid_by_phone[phone_id]
            direct = algorithm2_payment(
                bids, schedule, winner, win_slot, reserve_price=True
            )
            routed = algorithm2_payment(
                bids,
                schedule,
                winner,
                win_slot,
                reserve_price=True,
                engine=engine,
            )
            assert routed == direct  # repro: noqa-REP002 -- bitwise fallback equivalence is the property under test
            exact_direct = exact_critical_payment(
                bids, schedule, winner, reserve_price=True
            )
            exact_routed = exact_critical_payment(
                bids,
                schedule,
                winner,
                reserve_price=True,
                engine=engine,
            )
            assert exact_routed == exact_direct  # repro: noqa-REP002 -- bitwise fallback equivalence is the property under test

    def test_cascade_steps_accumulate(self):
        scenario = _scenario(seed=11)
        bids = scenario.truthful_bids()
        engine = StreamingGreedyEngine(bids, scenario.schedule)
        assert engine.cascade_steps == 0
        for phone_id, win_slot in engine.base_run.win_slots.items():
            algorithm2_payment(
                bids,
                scenario.schedule,
                engine.bid_by_phone[phone_id],
                win_slot,
                engine=engine,
            )
        # Poisson workloads displace at least one successor somewhere.
        assert engine.cascade_steps >= 0


class TestStreamTelemetry:
    def test_stream_counters_are_emitted(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        tracer = Tracer(sink=InMemorySink())
        with obs.activate(tracer):
            OnlineGreedyMechanism(engine="streaming").run(
                bids, scenario.schedule
            )
        counters = tracer.metrics.counters
        assert counters["online.stream.events"] > 0
        assert "online.stream.cascade_steps" in counters
        assert (
            tracer.metrics.gauges["online.stream.events_per_second"] >= 0
        )

    def test_fallback_counter_only_fires_when_unsupported(self):
        scenario = _scenario()
        bids = scenario.truthful_bids()
        tracer = Tracer(sink=InMemorySink())
        with obs.activate(tracer):
            OnlineGreedyMechanism(engine="streaming").run(
                bids, scenario.schedule
            )
        assert "online.stream.payment_fallbacks" not in (
            tracer.metrics.counters
        )


class TestProberMemory:
    def test_virtual_snapshots_stay_small_at_city_scale(self):
        """~10⁴ phones × 200 slots must not materialise full snapshots.

        The pre-virtual-snapshot prober copied every pool and partial
        outcome per slot — O(bids × slots), tens of MB here.  The
        prefix-count design keeps the whole prober within a few MB.
        """
        scenario = WorkloadConfig(num_slots=200, phone_rate=50.0).generate(
            seed=3
        )
        bids = scenario.truthful_bids()
        assert len(bids) > 9_000
        tracemalloc.start()
        try:
            prober = GreedyProber(bids, scenario.schedule)
            run = prober.base_run
            # Exercise a handful of probe-resumes too.
            for phone_id in list(run.win_slots)[:5]:
                prober.run_excluding(phone_id)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert run.allocation
        assert peak < 16 * 1024 * 1024


class TestBidIndexCache:
    def test_cache_is_bounded(self):
        bid_index.cache_clear()
        scenario = _scenario(num_slots=5)
        bids = scenario.truthful_bids()
        for start in range(50):
            bid_index(tuple(bids[start % len(bids):]))
        info = bid_index.cache_info()
        assert info.maxsize == 8
        assert info.currsize <= 8
