"""Unit tests for the mechanism registry."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.mechanisms import (
    Mechanism,
    OfflineVCGMechanism,
    available_mechanisms,
    create_mechanism,
    register_mechanism,
)


class TestBuiltins:
    def test_all_builtins_registered(self):
        names = available_mechanisms()
        for expected in (
            "offline-vcg",
            "online-greedy",
            "second-price-slot",
            "fixed-price",
            "random-alloc",
            "fifo",
            "offline-greedy-vcg",
        ):
            assert expected in names

    def test_create_by_name(self):
        mechanism = create_mechanism("offline-vcg")
        assert isinstance(mechanism, OfflineVCGMechanism)

    def test_create_with_kwargs(self):
        mechanism = create_mechanism("fixed-price", price=7.0)
        assert mechanism.price == pytest.approx(7.0)

    def test_create_online_with_options(self):
        mechanism = create_mechanism(
            "online-greedy", reserve_price=True, payment_rule="exact"
        )
        assert mechanism.reserve_price
        assert mechanism.payment_rule == "exact"

    def test_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown mechanism"):
            create_mechanism("does-not-exist")


class TestRegistration:
    def test_register_and_create(self):
        class Custom(OfflineVCGMechanism):
            name = "custom-test-mechanism"

        register_mechanism("custom-test-mechanism", Custom, replace=True)
        assert isinstance(
            create_mechanism("custom-test-mechanism"), Custom
        )
        assert "custom-test-mechanism" in available_mechanisms()

    def test_duplicate_without_replace_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_mechanism("offline-vcg", OfflineVCGMechanism)

    def test_empty_name_rejected(self):
        with pytest.raises(ExperimentError):
            register_mechanism("", OfflineVCGMechanism)

    def test_factory_must_return_mechanism(self):
        register_mechanism(
            "broken-test-mechanism", lambda: "nope", replace=True
        )
        with pytest.raises(ExperimentError, match="not a Mechanism"):
            create_mechanism("broken-test-mechanism")

    def test_mechanism_repr(self):
        assert "offline-vcg" in repr(OfflineVCGMechanism())
