"""Incremental payment probes vs cold re-runs — exact equality.

A :class:`GreedyProber` answers Algorithm-2 re-runs and exact-payment
probes by resuming from a per-slot snapshot instead of replaying the
whole auction.  Slot resumption must be invisible: every payment it
produces has to match the cold path bit-for-bit, across seeds and both
reserve-price modes.
"""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import GreedyProber, run_greedy_allocation
from repro.simulation import WorkloadConfig

SEEDS = range(12)
RESERVE_MODES = (False, True)


def _instance(seed):
    scenario = WorkloadConfig.paper_default().replace(
        num_slots=15
    ).generate(seed=seed)
    return scenario.truthful_bids(), scenario.schedule


class TestProberBaseRun:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("reserve", RESERVE_MODES)
    def test_base_run_equals_cold_allocation(self, seed, reserve):
        bids, schedule = _instance(seed)
        prober = GreedyProber(bids, schedule, reserve_price=reserve)
        cold = run_greedy_allocation(bids, schedule, reserve_price=reserve)
        assert prober.base_run == cold


class TestAlgorithm2Incremental:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("reserve", RESERVE_MODES)
    def test_equals_cold_payment(self, seed, reserve):
        bids, schedule = _instance(seed)
        prober = GreedyProber(bids, schedule, reserve_price=reserve)
        base = prober.base_run
        assert base.win_slots, "expected at least one winner"
        bid_by_phone = prober.bid_by_phone
        for phone_id, win_slot in sorted(base.win_slots.items()):
            winner = bid_by_phone[phone_id]
            cold = algorithm2_payment(
                bids, schedule, winner, win_slot, reserve_price=reserve
            )
            warm = algorithm2_payment(
                bids,
                schedule,
                winner,
                win_slot,
                reserve_price=reserve,
                prober=prober,
            )
            assert warm == cold


class TestExactPaymentIncremental:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("reserve", RESERVE_MODES)
    def test_equals_cold_payment(self, seed, reserve):
        bids, schedule = _instance(seed)
        prober = GreedyProber(bids, schedule, reserve_price=reserve)
        base = prober.base_run
        bid_by_phone = prober.bid_by_phone
        for phone_id in sorted(base.win_slots):
            winner = bid_by_phone[phone_id]
            cold = exact_critical_payment(
                bids, schedule, winner, reserve_price=reserve
            )
            warm = exact_critical_payment(
                bids, schedule, winner, reserve_price=reserve, prober=prober
            )
            assert warm == cold


class TestProberGuards:
    def test_rejects_mismatched_reserve(self):
        bids, schedule = _instance(0)
        prober = GreedyProber(bids, schedule, reserve_price=False)
        winner_id = next(iter(prober.base_run.win_slots))
        winner = prober.bid_by_phone[winner_id]
        with pytest.raises(MechanismError, match="reserve_price"):
            exact_critical_payment(
                bids, schedule, winner, reserve_price=True, prober=prober
            )

    def test_rejects_different_bid_vector(self):
        bids, schedule = _instance(0)
        other_bids, _ = _instance(1)
        prober = GreedyProber(other_bids, schedule, reserve_price=False)
        winner_id = next(iter(prober.base_run.win_slots))
        winner = prober.bid_by_phone[winner_id]
        with pytest.raises(MechanismError, match="different bid vector"):
            algorithm2_payment(
                bids,
                schedule,
                winner,
                win_slot=1,
                reserve_price=False,
                prober=prober,
            )
