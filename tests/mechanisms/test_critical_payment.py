"""Unit tests for Algorithm 2 and the exact critical-value computation."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import run_greedy_allocation
from repro.model import Bid, TaskSchedule
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_schedule,
)


def _schedule(counts, value=20.0):
    return TaskSchedule.from_counts(counts, value=value)


class TestAlgorithm2:
    def test_paper_worked_example(self):
        bids = paper_example_bids()
        schedule = paper_example_schedule()
        phone1 = next(b for b in bids if b.phone_id == 1)
        assert algorithm2_payment(
            bids, schedule, phone1, win_slot=2
        ) == pytest.approx(9.0)

    def test_all_paper_winners(self):
        """Cross-check every winner's Algorithm-2 payment by hand.

        Re-runs without each winner (1 task/slot, windows from Fig. 4):
        * phone 2 (won slot 1, departs 4): winners 7,1,5?... computed below.
        """
        bids = paper_example_bids()
        schedule = paper_example_schedule()
        run = run_greedy_allocation(bids, schedule)
        payments = {
            phone_id: algorithm2_payment(
                bids,
                schedule,
                next(b for b in bids if b.phone_id == phone_id),
                win_slot,
            )
            for phone_id, win_slot in run.win_slots.items()
        }
        # Hand-computed re-runs:
        # without 2: s1->7(6), s2->1(3), s3->6(8), s4->3?(11 dep5? no:
        #   pool s4 = {3(11)}) -> 3(11), s5->4(9); window [1,4]: max=11.
        assert payments[2] == pytest.approx(11.0)
        # without 1 (paper): 9.
        assert payments[1] == pytest.approx(9.0)
        # without 7: s1->2(5), s2->1(3), s3->6(8), window [3,3]: max 8.
        assert payments[7] == pytest.approx(8.0)
        # without 6: s1->2, s2->1, s3->7, s4->3(11); window [4,4]: 11.
        assert payments[6] == pytest.approx(11.0)
        # without 4: s5 -> 3(11); window [5,5]: 11.
        assert payments[4] == pytest.approx(11.0)

    def test_floor_at_own_cost(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=5.0)]
        schedule = _schedule([1])
        assert algorithm2_payment(
            bids, schedule, bids[0], win_slot=1
        ) == pytest.approx(5.0)

    def test_win_slot_outside_window_rejected(self):
        bids = [Bid(phone_id=1, arrival=2, departure=3, cost=5.0)]
        schedule = _schedule([0, 1, 0])
        with pytest.raises(MechanismError, match="outside"):
            algorithm2_payment(bids, schedule, bids[0], win_slot=1)

    def test_only_window_winners_count(self):
        """Winners before t' or after d are not critical players."""
        bids = [
            Bid(phone_id=1, arrival=2, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=50.0),
            Bid(phone_id=3, arrival=2, departure=2, cost=2.0),
            Bid(phone_id=4, arrival=3, departure=3, cost=60.0),
        ]
        schedule = _schedule([1, 1, 1], value=100.0)
        phone1 = bids[0]
        # Phone 1 wins slot 2; re-run without it: slot 2 -> phone 3
        # (cost 2).  Phones 2 and 4 win outside [2, 2].
        assert algorithm2_payment(
            bids, schedule, phone1, win_slot=2
        ) == pytest.approx(2.0)


class TestExactCriticalValue:
    def test_matches_algorithm2_in_competitive_market(self):
        bids = paper_example_bids()
        schedule = paper_example_schedule()
        run = run_greedy_allocation(bids, schedule)
        for phone_id, win_slot in run.win_slots.items():
            winner = next(b for b in bids if b.phone_id == phone_id)
            a2 = algorithm2_payment(bids, schedule, winner, win_slot)
            exact = exact_critical_payment(bids, schedule, winner)
            assert exact == pytest.approx(a2), phone_id

    def test_threshold_semantics(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=4.0),
            Bid(phone_id=3, arrival=2, departure=2, cost=7.0),
        ]
        schedule = _schedule([1, 1])
        winner = bids[0]
        critical = exact_critical_payment(bids, schedule, winner)
        assert critical == pytest.approx(7.0)
        # Just below: wins; just above: loses.
        low = [winner.with_cost(6.9)] + bids[1:]
        high = [winner.with_cost(7.1)] + bids[1:]
        assert 1 in run_greedy_allocation(low, schedule).win_slots
        assert 1 not in run_greedy_allocation(high, schedule).win_slots

    def test_monopolist_without_reserve_falls_back_to_cost(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=5.0)]
        schedule = _schedule([1])
        assert exact_critical_payment(
            bids, schedule, bids[0], reserve_price=False
        ) == pytest.approx(5.0)

    def test_monopolist_with_reserve_paid_value(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=5.0)]
        schedule = _schedule([1], value=20.0)
        assert exact_critical_payment(
            bids, schedule, bids[0], reserve_price=True
        ) == pytest.approx(20.0)

    def test_undersupplied_window_detected(self):
        """Extra task in the window ⇒ the winner wins at any price.

        Algorithm 2 misses this (pays own cost); the exact rule with a
        reserve pays the task value.
        """
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = _schedule([2, 1], value=20.0)  # 3 tasks, 2 phones
        winner = bids[0]
        a2 = algorithm2_payment(bids, schedule, winner, win_slot=1)
        exact = exact_critical_payment(
            bids, schedule, winner, reserve_price=True
        )
        assert a2 == pytest.approx(2.0)  # max winning cost without phone 1
        assert exact == pytest.approx(20.0)  # true threshold is ν
