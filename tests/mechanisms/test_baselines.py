"""Unit tests for fixed-price, random, FIFO, and offline-greedy baselines."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.mechanisms.baselines import (
    FifoMechanism,
    FixedPriceMechanism,
    OfflineGreedyMechanism,
    RandomAllocationMechanism,
)
from repro.mechanisms import OfflineVCGMechanism
from repro.model import Bid, TaskSchedule


def _schedule(counts, value=10.0):
    return TaskSchedule.from_counts(counts, value=value)


class TestFixedPrice:
    def test_only_bids_at_or_below_price_win(self):
        mechanism = FixedPriceMechanism(price=5.0)
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=4.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=6.0),
        ]
        outcome = mechanism.run(bids, _schedule([2]))
        assert outcome.winners == (1,)

    def test_winner_paid_posted_price(self):
        mechanism = FixedPriceMechanism(price=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=1.0)]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.payment(1) == pytest.approx(5.0)

    def test_exact_price_accepted(self):
        mechanism = FixedPriceMechanism(price=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=5.0)]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.winners == (1,)

    def test_rationing_by_arrival_not_cost(self):
        """Eligible phones are served in arrival order — undercutting
        must not improve a phone's chance of winning (truthfulness)."""
        mechanism = FixedPriceMechanism(price=10.0)
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=9.0),
            Bid(phone_id=2, arrival=2, departure=2, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([0, 1]))
        assert outcome.winners == (1,)  # earlier arrival wins at slot 2

    def test_arrival_tie_broken_by_phone_id(self):
        mechanism = FixedPriceMechanism(price=10.0)
        bids = [
            Bid(phone_id=5, arrival=1, departure=1, cost=9.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.winners == (2,)

    def test_negative_price_rejected(self):
        with pytest.raises(ValidationError):
            FixedPriceMechanism(price=-1.0)

    def test_payment_immediate(self):
        mechanism = FixedPriceMechanism(price=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=1.0)]
        outcome = mechanism.run(bids, _schedule([1, 0, 0]))
        assert outcome.payment_slot(1) == 1

    def test_marked_truthful(self):
        assert FixedPriceMechanism(price=1.0).is_truthful


class TestRandomAllocation:
    def test_deterministic_given_seed(self):
        bids = [
            Bid(phone_id=i, arrival=1, departure=2, cost=float(i))
            for i in range(1, 6)
        ]
        schedule = _schedule([1, 1])
        a = RandomAllocationMechanism(seed=5).run(bids, schedule)
        b = RandomAllocationMechanism(seed=5).run(bids, schedule)
        assert a.allocation == b.allocation

    def test_different_seeds_can_differ(self):
        bids = [
            Bid(phone_id=i, arrival=1, departure=4, cost=1.0)
            for i in range(1, 9)
        ]
        schedule = _schedule([1, 1, 1, 1])
        allocations = {
            tuple(
                sorted(
                    RandomAllocationMechanism(seed=s)
                    .run(bids, schedule)
                    .allocation.items()
                )
            )
            for s in range(8)
        }
        assert len(allocations) > 1

    def test_pay_as_bid(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        outcome = RandomAllocationMechanism(seed=0).run(bids, _schedule([1]))
        assert outcome.payment(1) == pytest.approx(3.0)

    def test_respects_windows(self):
        bids = [Bid(phone_id=1, arrival=2, departure=2, cost=1.0)]
        outcome = RandomAllocationMechanism(seed=0).run(
            bids, _schedule([1, 0])
        )
        assert outcome.allocation == {}

    def test_not_marked_truthful(self):
        assert not RandomAllocationMechanism().is_truthful


class TestFifo:
    def test_earliest_arrival_wins(self):
        bids = [
            Bid(phone_id=1, arrival=2, departure=3, cost=0.5),
            Bid(phone_id=2, arrival=1, departure=3, cost=9.0),
        ]
        outcome = FifoMechanism().run(bids, _schedule([0, 0, 1]))
        assert outcome.winners == (2,)  # earlier arrival beats cheaper

    def test_tie_broken_by_phone_id(self):
        bids = [
            Bid(phone_id=5, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=3, arrival=1, departure=1, cost=1.0),
        ]
        outcome = FifoMechanism().run(bids, _schedule([1]))
        assert outcome.winners == (3,)

    def test_pay_as_bid(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=7.0)]
        outcome = FifoMechanism().run(bids, _schedule([1]))
        assert outcome.payment(1) == pytest.approx(7.0)

    def test_departed_phones_skipped(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=1.0)]
        outcome = FifoMechanism().run(bids, _schedule([0, 1]))
        assert outcome.allocation == {}


class TestOfflineGreedy:
    def test_suboptimal_on_deferral_instance(self):
        """Greedy-by-cost misses the optimum the VCG mechanism finds."""
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = _schedule([1, 1])
        greedy = OfflineGreedyMechanism().run(bids, schedule)
        optimal = OfflineVCGMechanism().run(bids, schedule)
        assert greedy.claimed_welfare < optimal.claimed_welfare

    def test_never_better_than_optimal(self):
        from repro.simulation import WorkloadConfig

        workload = WorkloadConfig(
            num_slots=10,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=15.0,
        )
        for seed in range(4):
            scenario = workload.generate(seed=seed)
            bids = scenario.truthful_bids()
            greedy = OfflineGreedyMechanism().run(bids, scenario.schedule)
            optimal = OfflineVCGMechanism().run(bids, scenario.schedule)
            assert (
                greedy.claimed_welfare <= optimal.claimed_welfare + 1e-9
            )

    def test_skips_unprofitable_tasks(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        outcome = OfflineGreedyMechanism().run(bids, _schedule([1]))
        assert outcome.allocation == {}

    def test_payment_floored_at_claimed_cost(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = OfflineGreedyMechanism().run(bids, _schedule([1, 1]))
        for phone_id in outcome.winners:
            assert (
                outcome.payment(phone_id)
                >= outcome.bid_of(phone_id).cost - 1e-9
            )

    def test_not_marked_truthful(self):
        assert not OfflineGreedyMechanism().is_truthful
