"""Unit tests for the shared greedy allocation (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.mechanisms.greedy_core import bid_sort_key, run_greedy_allocation
from repro.model import Bid, TaskSchedule
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_schedule,
)


class TestBidSortKey:
    def test_cost_first(self):
        cheap = Bid(phone_id=9, arrival=5, departure=5, cost=1.0)
        pricey = Bid(phone_id=1, arrival=1, departure=9, cost=2.0)
        assert bid_sort_key(cheap) < bid_sort_key(pricey)

    def test_tie_break_by_arrival_then_id(self):
        early = Bid(phone_id=9, arrival=1, departure=5, cost=1.0)
        late = Bid(phone_id=1, arrival=2, departure=5, cost=1.0)
        assert bid_sort_key(early) < bid_sort_key(late)
        low_id = Bid(phone_id=1, arrival=1, departure=5, cost=1.0)
        high_id = Bid(phone_id=2, arrival=1, departure=5, cost=1.0)
        assert bid_sort_key(low_id) < bid_sort_key(high_id)


class TestPaperExample:
    """Fig. 4's slot-by-slot walk-through, literally."""

    def test_full_allocation(self):
        run = run_greedy_allocation(
            paper_example_bids(), paper_example_schedule()
        )
        winners_by_slot = {
            outcome.slot: [b.phone_id for b in outcome.winners]
            for outcome in run.slots
        }
        assert winners_by_slot == {
            1: [2],  # "in the 1st slot, Smartphone 2 won"
            2: [1],  # "in the 2nd slot, Smartphone 1 won"
            3: [7],  # "Smartphone 7 wins a bid in the current slot"
            4: [6],
            5: [4],
        }

    def test_win_slots(self):
        run = run_greedy_allocation(
            paper_example_bids(), paper_example_schedule()
        )
        assert run.win_slots == {2: 1, 1: 2, 7: 3, 6: 4, 4: 5}

    def test_rerun_without_phone_1(self):
        """Section V-C: without Smartphone 1 the tasks go to 5, 7, 6, 4."""
        run = run_greedy_allocation(
            paper_example_bids(), paper_example_schedule(), exclude_phone=1
        )
        winners_by_slot = {
            outcome.slot: [b.phone_id for b in outcome.winners]
            for outcome in run.slots
        }
        assert winners_by_slot == {1: [2], 2: [5], 3: [7], 4: [6], 5: [4]}


class TestGreedyMechanics:
    def test_cheapest_wins(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=5.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert run.allocation == {0: 2}

    def test_departed_bid_not_used(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=1.0)]
        schedule = TaskSchedule.from_counts([0, 1], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert run.allocation == {}
        assert run.total_unserved == 1

    def test_not_yet_arrived_bid_not_used(self):
        bids = [Bid(phone_id=1, arrival=2, departure=3, cost=1.0)]
        schedule = TaskSchedule.from_counts([1, 0, 0], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert run.allocation == {}

    def test_one_task_per_phone(self):
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=1.0)]
        schedule = TaskSchedule.from_counts([1, 1, 1], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert len(run.allocation) == 1
        assert run.total_unserved == 2

    def test_multiple_tasks_per_slot(self):
        bids = [
            Bid(phone_id=i, arrival=1, departure=1, cost=float(i))
            for i in range(1, 5)
        ]
        schedule = TaskSchedule.from_counts([2], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert set(run.allocation.values()) == {1, 2}

    def test_exclude_phone(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        run = run_greedy_allocation(bids, schedule, exclude_phone=1)
        assert run.allocation == {0: 2}

    def test_stop_after_slot(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=2, arrival=2, departure=2, cost=1.0),
        ]
        schedule = TaskSchedule.from_counts([1, 1], value=10.0)
        run = run_greedy_allocation(bids, schedule, stop_after_slot=1)
        assert run.allocation == {0: 1}
        assert [o.slot for o in run.slots] == [1]

    def test_empty_bids(self):
        schedule = TaskSchedule.from_counts([2], value=10.0)
        run = run_greedy_allocation([], schedule)
        assert run.allocation == {}
        assert run.total_unserved == 2

    def test_no_tasks(self):
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=1.0)]
        schedule = TaskSchedule.from_counts([0, 0], value=10.0)
        run = run_greedy_allocation(bids, schedule)
        assert run.allocation == {}
        assert run.slots == ()


class TestReservePrice:
    def test_without_reserve_allocates_above_value(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        run = run_greedy_allocation(bids, schedule, reserve_price=False)
        assert run.allocation == {0: 1}  # the paper's behaviour

    def test_with_reserve_refuses_above_value(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        run = run_greedy_allocation(bids, schedule, reserve_price=True)
        assert run.allocation == {}
        assert run.total_unserved == 1

    def test_reserve_keeps_refused_bid_in_pool(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=50.0),
            Bid(phone_id=2, arrival=2, departure=2, cost=1.0),
        ]
        # Slot 1: value 10 (phone 1 refused); slot 2: one more task.
        schedule = TaskSchedule(
            num_slots=2,
            tasks=[
                t
                for t in TaskSchedule.from_counts([1, 1], value=10.0).tasks
            ],
        )
        run = run_greedy_allocation(bids, schedule, reserve_price=True)
        # Slot 2's task goes to phone 2 (cheapest); phone 1 still refused.
        assert run.allocation == {1: 2}

    def test_winners_between(self):
        run = run_greedy_allocation(
            paper_example_bids(), paper_example_schedule()
        )
        ids = [b.phone_id for b in run.winners_between(2, 4)]
        assert ids == [1, 7, 6]
