"""Unit tests for the Mechanism base-class plumbing."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.mechanisms import Mechanism, OnlineGreedyMechanism
from repro.model import Bid, RoundConfig, TaskSchedule


class TestResolveConfig:
    def test_default_config_matches_schedule(self):
        mechanism = OnlineGreedyMechanism()
        schedule = TaskSchedule.from_counts([1, 1], value=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=1.0)]
        # No explicit config: the horizon is taken from the schedule.
        outcome = mechanism.run(bids, schedule)
        assert outcome.schedule.num_slots == 2

    def test_explicit_config_accepted_when_consistent(self):
        mechanism = OnlineGreedyMechanism()
        schedule = TaskSchedule.from_counts([1, 1], value=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=1.0)]
        outcome = mechanism.run(
            bids, schedule, config=RoundConfig(num_slots=2)
        )
        assert outcome.allocation

    def test_bid_outside_horizon_rejected_via_config(self):
        mechanism = OnlineGreedyMechanism()
        schedule = TaskSchedule.from_counts([1], value=5.0)
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=1.0)]
        with pytest.raises(MechanismError, match="horizon"):
            mechanism.run(bids, schedule)

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Mechanism()  # type: ignore[abstract]

    def test_repr_contains_name(self):
        assert "online-greedy" in repr(OnlineGreedyMechanism())

    def test_metadata_defaults(self):
        class Minimal(Mechanism):  # repro: noqa-mechanism-contract -- this test asserts the inherited defaults, so it must not declare them
            def run(self, bids, schedule, config=None):  # pragma: no cover
                raise NotImplementedError

        assert Minimal.name == "abstract"
        assert Minimal.is_truthful is False
        assert Minimal.is_online is False
