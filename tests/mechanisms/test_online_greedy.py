"""Unit tests for the online greedy mechanism (Section V)."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.model import Bid, TaskSchedule
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_schedule,
)


@pytest.fixture
def mechanism():
    return OnlineGreedyMechanism()


def _schedule(counts, value=10.0):
    return TaskSchedule.from_counts(counts, value=value)


class TestPaperExample:
    def test_allocation_matches_fig4(self, mechanism):
        outcome = mechanism.run(paper_example_bids(), paper_example_schedule())
        schedule = paper_example_schedule()
        by_slot = {
            schedule.task(t).slot: p for t, p in outcome.allocation.items()
        }
        assert by_slot == {1: 2, 2: 1, 3: 7, 4: 6, 5: 4}

    def test_phone1_paid_9(self, mechanism):
        """Section V-C's worked payment: Smartphone 1 is paid 9."""
        outcome = mechanism.run(paper_example_bids(), paper_example_schedule())
        assert outcome.payment(1) == pytest.approx(9.0)

    def test_payments_settled_at_reported_departures(self, mechanism):
        outcome = mechanism.run(paper_example_bids(), paper_example_schedule())
        for phone_id in outcome.winners:
            assert outcome.payment_slot(phone_id) == outcome.bid_of(
                phone_id
            ).departure


class TestAllocation:
    def test_greedy_is_myopic(self, mechanism):
        """Same instance where the offline optimum defers phone 1."""
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1, 1]))
        # Greedy grabs phone 1 at slot 1; slot 2 then goes unserved.
        assert outcome.allocation == {0: 1}

    def test_no_bids(self, mechanism):
        outcome = mechanism.run([], _schedule([1, 1]))
        assert outcome.allocation == {}

    def test_duplicate_phone_rejected(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=1, arrival=1, departure=1, cost=2.0),
        ]
        with pytest.raises(MechanismError, match="duplicate"):
            mechanism.run(bids, _schedule([1]))

    def test_without_reserve_takes_unprofitable(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        outcome = mechanism.run(bids, _schedule([1], value=10.0))
        assert outcome.allocation == {0: 1}  # paper semantics

    def test_with_reserve_refuses_unprofitable(self):
        mechanism = OnlineGreedyMechanism(reserve_price=True)
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=50.0)]
        outcome = mechanism.run(bids, _schedule([1], value=10.0))
        assert outcome.allocation == {}


class TestAlgorithm2Payments:
    def test_critical_player_in_window(self, mechanism):
        """Winner paid the max winning cost in [t', d] of the re-run."""
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=2.0),
            Bid(phone_id=3, arrival=2, departure=2, cost=10.0),
        ]
        outcome = mechanism.run(bids, _schedule([1, 1], value=20.0))
        # Phone 1 wins slot 1. Without it: slot1 -> 2, slot2 -> 3 (cost 10).
        # Window [1, 2] ⇒ payment = 10 (also phone 1's critical value).
        assert outcome.payment(1) == pytest.approx(10.0)

    def test_uncontested_winner_paid_own_bid(self, mechanism):
        """Algorithm 2's floor: no critical player ⇒ pay the claimed cost.

        This is the paper's verbatim rule; DESIGN.md §7 documents the
        truthfulness gap it opens for uncontested winners.
        """
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.payment(1) == pytest.approx(3.0)

    def test_payment_never_below_claimed_cost(self, mechanism):
        bids = [
            Bid(phone_id=i, arrival=1, departure=3, cost=float(i))
            for i in range(1, 7)
        ]
        outcome = mechanism.run(bids, _schedule([1, 2, 1], value=30.0))
        for phone_id in outcome.winners:
            assert (
                outcome.payment(phone_id)
                >= outcome.bid_of(phone_id).cost - 1e-9
            )

    def test_losers_unpaid(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.payment(2) == pytest.approx(0.0)


class TestExactPaymentRule:
    def test_equal_to_paper_when_fully_served(self):
        """With ample supply the two payment rules agree."""
        paper = OnlineGreedyMechanism(payment_rule="paper")
        exact = OnlineGreedyMechanism(payment_rule="exact")
        bids = paper_example_bids()
        schedule = paper_example_schedule()
        paper_outcome = paper.run(bids, schedule)
        exact_outcome = exact.run(bids, schedule)
        assert paper_outcome.allocation == exact_outcome.allocation
        for phone_id in paper_outcome.winners:
            assert paper_outcome.payment(phone_id) == pytest.approx(
                exact_outcome.payment(phone_id)
            )

    def test_exact_with_reserve_pays_value_to_monopolist(self):
        mechanism = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        )
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        outcome = mechanism.run(bids, _schedule([1], value=10.0))
        # The monopolist wins at any bid up to ν ⇒ critical value is ν.
        assert outcome.payment(1) == pytest.approx(10.0)

    def test_exact_payment_is_win_lose_threshold(self):
        mechanism = OnlineGreedyMechanism(payment_rule="exact")
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=2.0),
            Bid(phone_id=3, arrival=2, departure=2, cost=10.0),
        ]
        schedule = _schedule([1, 1], value=20.0)
        outcome = mechanism.run(bids, schedule)
        threshold = outcome.payment(1)
        below = [b if b.phone_id != 1 else b.with_cost(threshold - 0.01) for b in bids]
        above = [b if b.phone_id != 1 else b.with_cost(threshold + 0.01) for b in bids]
        assert mechanism.run(below, schedule).is_winner(1)
        assert not mechanism.run(above, schedule).is_winner(1)

    def test_unknown_payment_rule_rejected(self):
        with pytest.raises(MechanismError, match="payment_rule"):
            OnlineGreedyMechanism(payment_rule="vcg")

    def test_metadata_flags(self, mechanism):
        assert mechanism.is_truthful
        assert mechanism.is_online
        assert mechanism.name == "online-greedy"
        assert mechanism.payment_rule == "paper"
        assert not mechanism.reserve_price


class TestOnlineVsOffline:
    def test_offline_weakly_dominates(self):
        offline = OfflineVCGMechanism()
        online = OnlineGreedyMechanism(reserve_price=True)
        from repro.simulation import WorkloadConfig

        workload = WorkloadConfig(
            num_slots=12,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=15.0,
        )
        for seed in range(5):
            scenario = workload.generate(seed=seed)
            bids = scenario.truthful_bids()
            off = offline.run(bids, scenario.schedule)
            on = online.run(bids, scenario.schedule)
            assert off.claimed_welfare >= on.claimed_welfare - 1e-9
