"""Unit tests for the offline optimal VCG mechanism (Section IV)."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms import OfflineVCGMechanism
from repro.model import Bid, RoundConfig, TaskSchedule


@pytest.fixture
def mechanism():
    return OfflineVCGMechanism()


def _schedule(counts, value=10.0):
    return TaskSchedule.from_counts(counts, value=value)


class TestAllocation:
    def test_single_task_cheapest_wins(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=4.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.allocation == {0: 2}

    def test_optimal_beats_myopic(self, mechanism):
        """The offline optimum defers a flexible cheap phone.

        Phone 1 (cost 1) covers both slots; phone 2 (cost 2) only slot 1.
        Myopic greedy serves slot 1 with phone 1 and slot 2 goes unserved;
        the optimum uses phone 2 in slot 1 and phone 1 in slot 2.
        """
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1, 1]))
        assert outcome.allocation == {0: 2, 1: 1}
        assert outcome.claimed_welfare == pytest.approx((10 - 2) + (10 - 1))

    def test_unprofitable_task_unserved(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=15.0)]
        outcome = mechanism.run(bids, _schedule([1], value=10.0))
        assert outcome.allocation == {}
        assert outcome.payments == {}

    def test_no_bids(self, mechanism):
        outcome = mechanism.run([], _schedule([2]))
        assert outcome.allocation == {}
        assert outcome.total_payment == pytest.approx(0.0)

    def test_no_tasks(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=1.0)]
        outcome = mechanism.run(bids, _schedule([0, 0]))
        assert outcome.allocation == {}

    def test_respects_active_windows(self, mechanism):
        bids = [Bid(phone_id=1, arrival=2, departure=2, cost=1.0)]
        outcome = mechanism.run(bids, _schedule([1, 0]))
        assert outcome.allocation == {}

    def test_duplicate_phone_rejected(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=1.0),
            Bid(phone_id=1, arrival=1, departure=1, cost=2.0),
        ]
        with pytest.raises(MechanismError, match="duplicate"):
            mechanism.run(bids, _schedule([1]))

    def test_explicit_config_mismatch_rejected(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=1.0)]
        with pytest.raises(MechanismError, match="does not match"):
            mechanism.run(bids, _schedule([1]), config=RoundConfig(num_slots=9))


class TestVCGPayments:
    def test_second_price_in_single_slot(self, mechanism):
        """With one task and two phones, VCG degenerates to second price."""
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=4.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1]))
        # ω*(B) = 8, ω*(B₋2) = 6 ⇒ p2 = 8 + 2 − 6 = 4 (the loser's cost).
        assert outcome.payment(2) == pytest.approx(4.0)

    def test_uncontested_winner_paid_task_value(self, mechanism):
        """Removing a monopolist loses the whole task: p = ν."""
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        outcome = mechanism.run(bids, _schedule([1], value=10.0))
        # ω*(B) = 7, ω*(B₋1) = 0 ⇒ p = 7 + 3 − 0 = 10 = ν.
        assert outcome.payment(1) == pytest.approx(10.0)

    def test_payment_formula_explicit(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
            Bid(phone_id=3, arrival=2, departure=2, cost=5.0),
        ]
        schedule = _schedule([1, 1])
        outcome = mechanism.run(bids, schedule)
        graph = TaskAssignmentGraph(schedule, bids)
        _, full = graph.solve()
        for phone_id in outcome.winners:
            _, without = graph.solve(exclude_phone=phone_id)
            bid = outcome.bid_of(phone_id)
            assert outcome.payment(phone_id) == pytest.approx(
                full + bid.cost - without
            )

    def test_losers_not_paid(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=4.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        outcome = mechanism.run(bids, _schedule([1]))
        assert outcome.payment(1) == pytest.approx(0.0)
        assert 1 not in outcome.payments

    def test_payment_at_least_claimed_cost(self, mechanism):
        """VCG individual rationality on the claimed bid."""
        bids = [
            Bid(phone_id=i, arrival=1, departure=2, cost=float(i))
            for i in range(1, 6)
        ]
        outcome = mechanism.run(bids, _schedule([2, 1]))
        for phone_id in outcome.winners:
            assert outcome.payment(phone_id) >= outcome.bid_of(phone_id).cost - 1e-9

    def test_payment_settled_at_reported_departure(self, mechanism):
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=1.0)]
        outcome = mechanism.run(bids, _schedule([1, 0]))
        assert outcome.payment_slot(1) == 2


class TestOptimalWelfare:
    def test_matches_run(self, mechanism):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = _schedule([1, 1])
        outcome = mechanism.run(bids, schedule)
        assert mechanism.optimal_welfare(bids, schedule) == pytest.approx(
            outcome.claimed_welfare
        )

    def test_metadata_flags(self, mechanism):
        assert mechanism.is_truthful
        assert not mechanism.is_online
        assert mechanism.name == "offline-vcg"
