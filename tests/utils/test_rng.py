"""Unit tests for the seeded RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import RngStreams, spawn_rng


class TestSpawnRng:
    def test_same_seed_same_name_identical(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(8, "x").random(5)
        assert not np.allclose(a, b)

    def test_bool_seed_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rng(True, "x")

    def test_non_int_seed_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rng(1.5, "x")  # type: ignore[arg-type]


class TestRngStreams:
    def test_streams_cached(self):
        streams = RngStreams(seed=3)
        assert streams.get("a") is streams.get("a")

    def test_stream_independent_of_request_order(self):
        first = RngStreams(seed=3)
        first.get("a")
        value_after_a = first.get("b").random()

        second = RngStreams(seed=3)
        value_direct = second.get("b").random()
        assert value_after_a == value_direct

    def test_fresh_resets_stream(self):
        streams = RngStreams(seed=3)
        original = streams.get("a").random(3)
        streams.get("a").random(10)  # advance
        replayed = streams.fresh("a").random(3)
        assert np.allclose(original, replayed)

    def test_child_deterministic(self):
        a = RngStreams(seed=3).child(1).get("x").random(3)
        b = RngStreams(seed=3).child(1).get("x").random(3)
        assert np.allclose(a, b)

    def test_children_independent(self):
        a = RngStreams(seed=3).child(1).get("x").random(3)
        b = RngStreams(seed=3).child(2).get("x").random(3)
        assert not np.allclose(a, b)

    def test_child_offset_validation(self):
        with pytest.raises(ValidationError):
            RngStreams(seed=3).child("one")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngStreams(seed=11).seed == 11

    def test_invalid_seed(self):
        with pytest.raises(ValidationError):
            RngStreams(seed="abc")  # type: ignore[arg-type]
