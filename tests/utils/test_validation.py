"""Unit tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="x must be of type int"):
            check_type("x", "3", int)

    def test_rejects_bool_for_numeric(self):
        with pytest.raises(ValidationError, match="got bool"):
            check_type("x", True, int)

    def test_accepts_bool_when_bool_expected(self):
        assert check_type("flag", True, bool) is True


class TestNumericChecks:
    def test_check_finite_accepts(self):
        assert check_finite("x", 1.5) == 1.5
        assert check_finite("x", -2) == -2

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_check_finite_rejects(self, bad):
        with pytest.raises(ValidationError, match="finite"):
            check_finite("x", bad)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValidationError, match=">= 0"):
            check_non_negative("x", -0.001)

    def test_check_positive(self):
        assert check_positive("x", 0.001) == 0.001
        with pytest.raises(ValidationError, match="> 0"):
            check_positive("x", 0)

    def test_check_in_range(self):
        assert check_in_range("x", 5, low=1, high=10) == 5
        assert check_in_range("x", 5, low=5, high=5) == 5
        with pytest.raises(ValidationError, match=">= 6"):
            check_in_range("x", 5, low=6)
        with pytest.raises(ValidationError, match="<= 4"):
            check_in_range("x", 5, high=4)

    def test_check_in_range_unbounded(self):
        assert check_in_range("x", -1e9) == -1e9

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="price"):
            check_positive("price", -1)
