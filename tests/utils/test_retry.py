"""Unit tests for the deterministic retry policy."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs.clock import ManualClock, set_perf_clock
from repro.utils import RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_defaults_single_attempt_no_wait(self):
        policy = RetryPolicy()
        assert policy.retries == 0
        assert policy.delays() == ()

    def test_delays_match_exponential_backoff(self):
        policy = RetryPolicy(retries=4, backoff=0.5)
        assert policy.delays() == tuple(
            0.5 * 2.0**attempt for attempt in range(4)
        )

    def test_custom_multiplier(self):
        policy = RetryPolicy(retries=3, backoff=1.0, multiplier=3.0)
        assert policy.delays() == (1.0, 3.0, 9.0)

    def test_max_delay_caps_every_wait(self):
        policy = RetryPolicy(retries=5, backoff=1.0, max_delay=3.0)
        assert policy.delays() == (1.0, 2.0, 3.0, 3.0, 3.0)

    def test_delay_for_negative_attempt_rejected(self):
        with pytest.raises(ValidationError, match="attempt"):
            RetryPolicy(retries=1, backoff=1.0).delay_for(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff": -0.1},
            {"multiplier": 0.0},
            {"max_delay": -1.0},
            {"timeout": 0.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_policy_is_picklable(self):
        import pickle

        policy = RetryPolicy(retries=2, backoff=0.25)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestCallWithRetry:
    def test_success_returns_value(self):
        assert call_with_retry(lambda: 7, RetryPolicy()) == 7

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        waits = []
        result = call_with_retry(
            flaky,
            RetryPolicy(retries=3, backoff=0.5),
            retry_on=(OSError,),
            sleep=waits.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert waits == [0.5, 1.0]

    def test_final_failure_propagates_original_exception(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            call_with_retry(
                always_fails,
                RetryPolicy(retries=2),
                retry_on=(OSError,),
            )

    def test_unlisted_exception_propagates_immediately(self):
        calls = []

        def fails():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_retry(
                fails, RetryPolicy(retries=5), retry_on=(OSError,)
            )
        assert len(calls) == 1

    def test_zero_backoff_never_sleeps(self):
        calls = []
        waits = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("once")
            return None

        call_with_retry(
            flaky,
            RetryPolicy(retries=1),
            retry_on=(ValueError,),
            sleep=waits.append,
        )
        assert waits == []

    def test_timeout_stops_retrying(self):
        """The deadline is read off the injectable perf clock."""
        clock = ManualClock(start=0.0)
        previous = set_perf_clock(clock)
        try:
            calls = []

            def flaky_forever():
                calls.append(1)
                clock.advance(10.0)  # each attempt "takes" 10 seconds
                raise OSError("slow transient")

            with pytest.raises(OSError):
                call_with_retry(
                    flaky_forever,
                    RetryPolicy(retries=100, timeout=25.0),
                    retry_on=(OSError,),
                    sleep=lambda _: None,
                )
            # Attempts at t=0, 10, 20; the check after the third sees
            # t=30 >= deadline 25 and gives up despite retries left.
            assert len(calls) == 3
        finally:
            set_perf_clock(previous)
