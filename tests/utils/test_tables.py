"""Unit tests for the plain-text table formatter."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text
        assert "1.234" not in text

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_columns_left_aligned(self):
        text = format_table(["s", "n"], [["a", 1], ["long", 2]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("a ")

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_no_rows_renders_headers_only(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2

    def test_column_width_expands_to_content(self):
        text = format_table(["x"], [["wide-content"]])
        header, sep, row = text.splitlines()
        assert len(sep) >= len("wide-content")
