"""Unit tests for SensingTask and TaskSchedule."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model import SensingTask, TaskSchedule


class TestSensingTask:
    def test_fields(self):
        task = SensingTask(task_id=0, slot=3, index=2, value=10.0)
        assert task.slot == 3
        assert task.index == 2
        assert task.value == 10.0

    def test_label(self):
        assert SensingTask(task_id=0, slot=3, index=2, value=1.0).label == "t3.2"

    def test_value_normalised_to_float(self):
        assert isinstance(
            SensingTask(task_id=0, slot=1, index=1, value=5).value, float
        )

    def test_zero_slot_rejected(self):
        with pytest.raises(ValidationError):
            SensingTask(task_id=0, slot=0, index=1, value=1.0)

    def test_zero_index_rejected(self):
        with pytest.raises(ValidationError):
            SensingTask(task_id=0, slot=1, index=0, value=1.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValidationError):
            SensingTask(task_id=0, slot=1, index=1, value=-1.0)

    def test_round_trip(self):
        task = SensingTask(task_id=4, slot=2, index=1, value=7.0)
        assert SensingTask.from_dict(task.to_dict()) == task


class TestTaskScheduleFromCounts:
    def test_counts_round_trip(self):
        schedule = TaskSchedule.from_counts([2, 0, 3], value=5.0)
        assert schedule.counts == (2, 0, 3)
        assert schedule.num_slots == 3
        assert len(schedule) == 5

    def test_sequential_ids_in_arrival_order(self):
        schedule = TaskSchedule.from_counts([1, 2], value=1.0)
        assert [t.task_id for t in schedule] == [0, 1, 2]
        assert [t.slot for t in schedule] == [1, 2, 2]
        assert [t.index for t in schedule] == [1, 1, 2]

    def test_first_task_id_offset(self):
        schedule = TaskSchedule.from_counts([1, 1], value=1.0, first_task_id=10)
        assert [t.task_id for t in schedule] == [10, 11]

    def test_empty_counts_rejected(self):
        with pytest.raises(ValidationError):
            TaskSchedule.from_counts([], value=1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            TaskSchedule.from_counts([1, -1], value=1.0)

    def test_all_zero_counts_gives_empty_schedule(self):
        schedule = TaskSchedule.from_counts([0, 0, 0], value=1.0)
        assert len(schedule) == 0
        assert schedule.total_value == 0.0


class TestTaskScheduleValidation:
    def test_duplicate_task_id_rejected(self):
        tasks = [
            SensingTask(task_id=0, slot=1, index=1, value=1.0),
            SensingTask(task_id=0, slot=2, index=1, value=1.0),
        ]
        with pytest.raises(ValidationError, match="duplicate task_id"):
            TaskSchedule(num_slots=2, tasks=tasks)

    def test_duplicate_position_rejected(self):
        tasks = [
            SensingTask(task_id=0, slot=1, index=1, value=1.0),
            SensingTask(task_id=1, slot=1, index=1, value=1.0),
        ]
        with pytest.raises(ValidationError, match="duplicate task position"):
            TaskSchedule(num_slots=2, tasks=tasks)

    def test_task_beyond_horizon_rejected(self):
        tasks = [SensingTask(task_id=0, slot=3, index=1, value=1.0)]
        with pytest.raises(ValidationError, match="beyond"):
            TaskSchedule(num_slots=2, tasks=tasks)

    def test_non_task_rejected(self):
        with pytest.raises(ValidationError):
            TaskSchedule(num_slots=2, tasks=["not-a-task"])  # type: ignore[list-item]


class TestTaskScheduleAccess:
    @pytest.fixture
    def schedule(self):
        return TaskSchedule.from_counts([2, 0, 1], value=4.0)

    def test_tasks_in_slot(self, schedule):
        assert len(schedule.tasks_in_slot(1)) == 2
        assert schedule.tasks_in_slot(2) == ()
        assert len(schedule.tasks_in_slot(3)) == 1

    def test_tasks_in_slot_out_of_range(self, schedule):
        with pytest.raises(ValidationError):
            schedule.tasks_in_slot(0)
        with pytest.raises(ValidationError):
            schedule.tasks_in_slot(4)

    def test_task_lookup(self, schedule):
        assert schedule.task(0).slot == 1
        with pytest.raises(ValidationError, match="unknown task_id"):
            schedule.task(99)

    def test_contains(self, schedule):
        assert 0 in schedule
        assert 99 not in schedule

    def test_total_value(self, schedule):
        assert schedule.total_value == 12.0

    def test_iteration_ordered(self, schedule):
        slots = [t.slot for t in schedule]
        assert slots == sorted(slots)

    def test_equality_and_hash(self):
        a = TaskSchedule.from_counts([1, 1], value=2.0)
        b = TaskSchedule.from_counts([1, 1], value=2.0)
        c = TaskSchedule.from_counts([1, 1], value=3.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
