"""Unit tests for the Bid model."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model import Bid


class TestBidConstruction:
    def test_basic_fields(self):
        bid = Bid(phone_id=3, arrival=2, departure=5, cost=7.5)
        assert bid.phone_id == 3
        assert bid.arrival == 2
        assert bid.departure == 5
        assert bid.cost == pytest.approx(7.5)

    def test_cost_normalised_to_float(self):
        bid = Bid(phone_id=0, arrival=1, departure=1, cost=4)
        assert isinstance(bid.cost, float)
        assert bid == Bid(phone_id=0, arrival=1, departure=1, cost=4.0)

    def test_single_slot_window_allowed(self):
        bid = Bid(phone_id=1, arrival=3, departure=3, cost=1.0)
        assert bid.active_length == 1

    def test_zero_cost_allowed(self):
        assert Bid(phone_id=1, arrival=1, departure=2, cost=0.0).cost == pytest.approx(0.0)

    def test_negative_phone_id_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=-1, arrival=1, departure=2, cost=1.0)

    def test_zero_arrival_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=0, departure=2, cost=1.0)

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=4, departure=3, cost=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=1, departure=2, cost=-0.1)

    def test_nan_cost_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=1, departure=2, cost=float("nan"))

    def test_infinite_cost_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=1, departure=2, cost=float("inf"))

    def test_non_int_arrival_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=0, arrival=1.5, departure=2, cost=1.0)

    def test_bool_phone_id_rejected(self):
        with pytest.raises(ValidationError):
            Bid(phone_id=True, arrival=1, departure=2, cost=1.0)


class TestBidBehaviour:
    def test_is_active_inclusive_bounds(self):
        bid = Bid(phone_id=0, arrival=2, departure=4, cost=1.0)
        assert not bid.is_active(1)
        assert bid.is_active(2)
        assert bid.is_active(3)
        assert bid.is_active(4)
        assert not bid.is_active(5)

    def test_active_length(self):
        bid = Bid(phone_id=0, arrival=2, departure=4, cost=1.0)
        assert bid.active_length == 3

    def test_with_cost_creates_new_bid(self):
        bid = Bid(phone_id=0, arrival=1, departure=2, cost=1.0)
        changed = bid.with_cost(9.0)
        assert changed.cost == pytest.approx(9.0)
        assert bid.cost == pytest.approx(1.0)
        assert changed.phone_id == bid.phone_id

    def test_with_window_creates_new_bid(self):
        bid = Bid(phone_id=0, arrival=1, departure=5, cost=1.0)
        changed = bid.with_window(2, 3)
        assert (changed.arrival, changed.departure) == (2, 3)
        assert (bid.arrival, bid.departure) == (1, 5)

    def test_with_window_validates(self):
        bid = Bid(phone_id=0, arrival=1, departure=5, cost=1.0)
        with pytest.raises(ValidationError):
            bid.with_window(4, 2)

    def test_frozen(self):
        bid = Bid(phone_id=0, arrival=1, departure=2, cost=1.0)
        with pytest.raises(Exception):
            bid.cost = 3.0  # type: ignore[misc]

    def test_equality_and_hash(self):
        a = Bid(phone_id=0, arrival=1, departure=2, cost=1.0)
        b = Bid(phone_id=0, arrival=1, departure=2, cost=1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != b.with_cost(2.0)

    def test_ordering_by_phone_id_first(self):
        a = Bid(phone_id=0, arrival=9, departure=9, cost=100.0)
        b = Bid(phone_id=1, arrival=1, departure=1, cost=0.0)
        assert a < b


class TestBidSerialisation:
    def test_round_trip(self):
        bid = Bid(phone_id=7, arrival=2, departure=6, cost=3.25)
        assert Bid.from_dict(bid.to_dict()) == bid

    def test_from_dict_missing_key(self):
        with pytest.raises(ValidationError, match="missing key"):
            Bid.from_dict({"phone_id": 1, "arrival": 1, "departure": 2})

    def test_from_dict_coerces_types(self):
        payload = {
            "phone_id": "3",
            "arrival": "1",
            "departure": "2",
            "cost": "4.5",
        }
        bid = Bid.from_dict(payload)
        assert bid.phone_id == 3
        assert bid.cost == pytest.approx(4.5)
