"""Columnar round codec: layout, round-trips, and the trusted fast path.

The codec is the wire format of the sharded campaign runner, so two
properties carry the byte-identity contract: decoding must reproduce
validated construction *exactly* (equality and pickle bytes), and
pack/unpack must round-trip any number of rounds through one flat
buffer with zero-copy views on the way out.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.columnar import (
    COLUMNAR_SCHEMA,
    RoundColumns,
    pack_rounds_into,
    packed_size,
    unpack_rounds,
)
from repro.simulation.workload import WorkloadConfig


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(
        num_slots=8,
        phone_rate=3.0,
        task_rate=1.5,
        mean_cost=12.0,
        mean_active_length=3,
        task_value=20.0,
    )


class TestGenerateColumns:
    def test_matches_generate_value_for_value(self, workload):
        for seed in range(5):
            scenario = workload.generate(seed=seed)
            columns = workload.generate_columns(seed=seed)
            assert columns.decode_profiles() == list(scenario.profiles)
            assert columns.decode_schedule() == scenario.schedule
            assert columns.decode_bids() == scenario.truthful_bids()

    def test_decoded_objects_pickle_byte_identically(self, workload):
        """The trusted fast path is invisible in the pickle stream."""
        scenario = workload.generate(seed=3)
        columns = workload.generate_columns(seed=3)
        for fast, validated in zip(
            columns.decode_profiles(), scenario.profiles
        ):
            assert pickle.dumps(fast, protocol=4) == pickle.dumps(
                validated, protocol=4
            )
        for fast, validated in zip(
            columns.decode_bids(), scenario.truthful_bids()
        ):
            assert pickle.dumps(fast, protocol=4) == pickle.dumps(
                validated, protocol=4
            )

    def test_column_dtypes_and_lengths(self, workload):
        columns = workload.generate_columns(seed=1)
        n = columns.num_phones
        assert columns.phone_id.dtype == np.int64
        assert columns.cost.dtype == np.float64
        assert len(columns.arrival) == n
        assert len(columns.departure) == n
        assert len(columns.task_counts) == columns.num_slots
        assert columns.nbytes == 8 * (4 * n + columns.num_slots)


class TestFromScenario:
    def test_round_trips_a_generated_scenario(self, workload):
        scenario = workload.generate(seed=9)
        columns = RoundColumns.from_scenario(scenario)
        assert columns.decode_profiles() == list(scenario.profiles)
        assert columns.decode_schedule() == scenario.schedule

    def test_mixed_value_schedule_rejected(self, workload):
        from repro.model.task import SensingTask, TaskSchedule

        scenario = workload.generate(seed=9)
        mixed = TaskSchedule(
            num_slots=scenario.schedule.num_slots,
            tasks=[
                SensingTask(task_id=0, slot=1, index=1, value=5.0),
                SensingTask(task_id=1, slot=2, index=1, value=7.0),
            ],
        )

        class Stub:
            profiles = scenario.profiles
            schedule = mixed

        with pytest.raises(ValidationError, match="uniform task value"):
            RoundColumns.from_scenario(Stub())


class TestValidation:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="column 'cost'"):
            RoundColumns(
                num_slots=2,
                task_value=1.0,
                phone_id=np.array([0, 1]),
                arrival=np.array([1, 1]),
                departure=np.array([1, 2]),
                cost=np.array([1.0]),
                task_counts=np.array([1, 0]),
            )

    def test_task_counts_must_cover_horizon(self):
        with pytest.raises(ValidationError, match="task_counts"):
            RoundColumns(
                num_slots=3,
                task_value=1.0,
                phone_id=np.array([], dtype=np.int64),
                arrival=np.array([], dtype=np.int64),
                departure=np.array([], dtype=np.int64),
                cost=np.array([], dtype=np.float64),
                task_counts=np.array([1], dtype=np.int64),
            )


class TestPackUnpack:
    def _rounds(self, workload, seeds):
        return [workload.generate_columns(seed=s) for s in seeds]

    def test_multi_round_round_trip(self, workload):
        rounds = self._rounds(workload, range(4))
        buffer = bytearray(packed_size(rounds))
        header = pack_rounds_into(rounds, buffer)
        assert header["schema"] == COLUMNAR_SCHEMA
        assert len(header["rounds"]) == 4
        unpacked = unpack_rounds(buffer, header)
        for original, view in zip(rounds, unpacked):
            assert view.num_slots == original.num_slots
            assert view.task_value == original.task_value
            np.testing.assert_array_equal(view.phone_id, original.phone_id)
            np.testing.assert_array_equal(view.cost, original.cost)
            np.testing.assert_array_equal(
                view.task_counts, original.task_counts
            )
            assert view.decode_profiles() == original.decode_profiles()

    def test_unpacked_views_are_zero_copy(self, workload):
        rounds = self._rounds(workload, [0])
        buffer = bytearray(packed_size(rounds))
        header = pack_rounds_into(rounds, buffer)
        view = unpack_rounds(buffer, header)[0]
        # A view, not a copy: mutating the buffer shows through.
        assert view.phone_id.base is not None
        first = int(view.phone_id[0])
        np.frombuffer(buffer, dtype=np.int64, count=1)[0] = first + 41
        assert int(view.phone_id[0]) == first + 41

    def test_undersized_buffer_rejected(self, workload):
        rounds = self._rounds(workload, [0])
        buffer = bytearray(packed_size(rounds) - 1)
        with pytest.raises(ValidationError, match="pack buffer holds"):
            pack_rounds_into(rounds, buffer)

    def test_alien_schema_rejected(self, workload):
        rounds = self._rounds(workload, [0])
        buffer = bytearray(packed_size(rounds))
        header = pack_rounds_into(rounds, buffer)
        header["schema"] = "repro-columnar/999"
        with pytest.raises(ValidationError, match="unknown columnar schema"):
            unpack_rounds(buffer, header)

    def test_truncated_buffer_rejected(self, workload):
        rounds = self._rounds(workload, [0, 1])
        buffer = bytearray(packed_size(rounds))
        header = pack_rounds_into(rounds, buffer)
        with pytest.raises(ValidationError, match="truncated"):
            unpack_rounds(buffer[: packed_size(rounds[:1])], header)

    def test_empty_round_packs(self, workload):
        """A round with zero phones still packs its task counts."""
        quiet = workload.replace(phone_rate=0.0)
        rounds = [quiet.generate_columns(seed=0)]
        assert rounds[0].num_phones == 0
        buffer = bytearray(packed_size(rounds))
        header = pack_rounds_into(rounds, buffer)
        view = unpack_rounds(buffer, header)[0]
        assert view.num_phones == 0
        assert view.decode_profiles() == []
