"""Unit tests for AuctionOutcome validation and accessors."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError
from repro.model import AuctionOutcome, Bid, TaskSchedule


@pytest.fixture
def schedule():
    return TaskSchedule.from_counts([1, 1, 1], value=10.0)


@pytest.fixture
def bids():
    return [
        Bid(phone_id=1, arrival=1, departure=2, cost=3.0),
        Bid(phone_id=2, arrival=1, departure=3, cost=4.0),
        Bid(phone_id=3, arrival=2, departure=3, cost=6.0),
    ]


@pytest.fixture
def outcome(bids, schedule):
    return AuctionOutcome(
        bids=bids,
        schedule=schedule,
        allocation={0: 1, 1: 3},
        payments={1: 5.0, 3: 7.0},
        payment_slots={1: 2, 3: 3},
    )


class TestValidation:
    def test_unknown_task_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="unknown task_id"):
            AuctionOutcome(bids, schedule, allocation={9: 1}, payments={})

    def test_unknown_phone_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="unknown phone_id"):
            AuctionOutcome(bids, schedule, allocation={0: 9}, payments={})

    def test_phone_allocated_twice_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="more than one task"):
            AuctionOutcome(
                bids, schedule, allocation={0: 1, 1: 1}, payments={}
            )

    def test_inactive_phone_allocation_rejected(self, bids, schedule):
        # Phone 1's claimed window is [1, 2]; task 2 is in slot 3.
        with pytest.raises(MechanismError, match="claimed window"):
            AuctionOutcome(bids, schedule, allocation={2: 1}, payments={})

    def test_payment_for_unknown_phone_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="unknown phone_id"):
            AuctionOutcome(bids, schedule, allocation={}, payments={9: 1.0})

    def test_payment_slot_outside_round_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="outside the round"):
            AuctionOutcome(
                bids,
                schedule,
                allocation={0: 1},
                payments={1: 5.0},
                payment_slots={1: 4},
            )

    def test_duplicate_bid_rejected(self, bids, schedule):
        with pytest.raises(MechanismError, match="duplicate bid"):
            AuctionOutcome(
                bids + [bids[0]], schedule, allocation={}, payments={}
            )


class TestAccessors:
    def test_winners_sorted(self, outcome):
        assert outcome.winners == (1, 3)

    def test_is_winner(self, outcome):
        assert outcome.is_winner(1)
        assert not outcome.is_winner(2)

    def test_task_of(self, outcome, schedule):
        assert outcome.task_of(1).task_id == 0
        assert outcome.task_of(2) is None

    def test_phone_of(self, outcome):
        assert outcome.phone_of(0) == 1
        assert outcome.phone_of(2) is None

    def test_served_and_unserved(self, outcome):
        assert [t.task_id for t in outcome.served_tasks] == [0, 1]
        assert [t.task_id for t in outcome.unserved_tasks] == [2]

    def test_payment_defaults_to_zero(self, outcome):
        assert outcome.payment(2) == pytest.approx(0.0)

    def test_payment_unknown_phone(self, outcome):
        with pytest.raises(MechanismError):
            outcome.payment(9)

    def test_payment_slot(self, outcome):
        assert outcome.payment_slot(1) == 2
        # Unrecorded settles at round end.
        assert outcome.payment_slot(2) == 3

    def test_total_payment(self, outcome):
        assert outcome.total_payment == pytest.approx(12.0)

    def test_bid_of(self, outcome):
        assert outcome.bid_of(2).cost == pytest.approx(4.0)
        with pytest.raises(MechanismError):
            outcome.bid_of(9)

    def test_bids_ordered_by_phone(self, outcome):
        assert [b.phone_id for b in outcome.bids] == [1, 2, 3]


class TestClaimedWelfare:
    def test_value_minus_claimed_costs(self, outcome):
        # tasks 0 and 1 are worth 10 each; winners claimed 3 and 6.
        assert outcome.claimed_welfare == pytest.approx((10 - 3) + (10 - 6))

    def test_empty_allocation_zero(self, bids, schedule):
        empty = AuctionOutcome(bids, schedule, allocation={}, payments={})
        assert empty.claimed_welfare == pytest.approx(0.0)

    def test_equality(self, bids, schedule, outcome):
        twin = AuctionOutcome(
            bids,
            schedule,
            allocation={0: 1, 1: 3},
            payments={1: 5.0, 3: 7.0},
            payment_slots={1: 2, 3: 3},
        )
        assert outcome == twin
