"""Unit tests for SmartphoneProfile and the misreport constraints."""

from __future__ import annotations

import pytest

from repro.errors import BidConstraintError, ValidationError
from repro.model import Bid, SmartphoneProfile


@pytest.fixture
def profile():
    return SmartphoneProfile(phone_id=5, arrival=2, departure=6, cost=10.0)


class TestProfileConstruction:
    def test_fields(self, profile):
        assert profile.phone_id == 5
        assert profile.arrival == 2
        assert profile.departure == 6
        assert profile.cost == pytest.approx(10.0)

    def test_active_length(self, profile):
        assert profile.active_length == 5

    def test_is_active(self, profile):
        assert not profile.is_active(1)
        assert profile.is_active(2)
        assert profile.is_active(6)
        assert not profile.is_active(7)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            SmartphoneProfile(phone_id=0, arrival=5, departure=4, cost=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            SmartphoneProfile(phone_id=0, arrival=1, departure=2, cost=-1.0)


class TestTruthfulBid:
    def test_truthful_bid_mirrors_profile(self, profile):
        bid = profile.truthful_bid()
        assert bid == Bid(phone_id=5, arrival=2, departure=6, cost=10.0)

    def test_truthful_bid_is_feasible(self, profile):
        assert profile.is_feasible_claim(profile.truthful_bid())


class TestClaimConstraints:
    def test_delayed_arrival_feasible(self, profile):
        bid = Bid(phone_id=5, arrival=4, departure=6, cost=99.0)
        assert profile.is_feasible_claim(bid)
        assert profile.check_claim(bid) is bid

    def test_early_departure_feasible(self, profile):
        bid = Bid(phone_id=5, arrival=2, departure=3, cost=0.0)
        assert profile.is_feasible_claim(bid)

    def test_any_cost_feasible(self, profile):
        assert profile.is_feasible_claim(
            Bid(phone_id=5, arrival=2, departure=6, cost=1e9)
        )

    def test_early_arrival_infeasible(self, profile):
        bid = Bid(phone_id=5, arrival=1, departure=6, cost=10.0)
        assert not profile.is_feasible_claim(bid)
        with pytest.raises(BidConstraintError, match="early-arrival"):
            profile.check_claim(bid)

    def test_late_departure_infeasible(self, profile):
        bid = Bid(phone_id=5, arrival=2, departure=7, cost=10.0)
        assert not profile.is_feasible_claim(bid)
        with pytest.raises(BidConstraintError, match="late-departure"):
            profile.check_claim(bid)

    def test_wrong_phone_rejected(self, profile):
        bid = Bid(phone_id=6, arrival=2, departure=6, cost=10.0)
        assert not profile.is_feasible_claim(bid)
        with pytest.raises(BidConstraintError, match="belongs to"):
            profile.check_claim(bid)


class TestUtility:
    def test_winner_utility(self, profile):
        assert profile.utility(payment=15.0, allocated=True) == pytest.approx(5.0)

    def test_loser_utility_zero_payment(self, profile):
        assert profile.utility(payment=0.0, allocated=False) == pytest.approx(0.0)

    def test_loser_with_payment_is_pure_gain(self, profile):
        assert profile.utility(payment=3.0, allocated=False) == pytest.approx(3.0)

    def test_underpaid_winner_negative(self, profile):
        assert profile.utility(payment=4.0, allocated=True) == pytest.approx(-6.0)


class TestSerialisation:
    def test_round_trip(self, profile):
        assert SmartphoneProfile.from_dict(profile.to_dict()) == profile

    def test_missing_key(self):
        with pytest.raises(ValidationError, match="missing key"):
            SmartphoneProfile.from_dict({"phone_id": 1})
