"""Unit tests for AuctionOutcome serialization (experiment archiving)."""

from __future__ import annotations

import json

import pytest

from repro.errors import MechanismError
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.model import AuctionOutcome
from repro.simulation import WorkloadConfig


@pytest.fixture
def outcome():
    scenario = WorkloadConfig(
        num_slots=6,
        phone_rate=2.0,
        task_rate=1.0,
        mean_cost=5.0,
        mean_active_length=2,
        task_value=10.0,
    ).generate(seed=1)
    return OnlineGreedyMechanism().run(
        scenario.truthful_bids(), scenario.schedule
    )


class TestRoundTrip:
    def test_dict_round_trip(self, outcome):
        assert AuctionOutcome.from_dict(outcome.to_dict()) == outcome

    def test_json_round_trip(self, outcome):
        payload = json.loads(json.dumps(outcome.to_dict()))
        restored = AuctionOutcome.from_dict(payload)
        assert restored == outcome
        assert restored.claimed_welfare == pytest.approx(
            outcome.claimed_welfare
        )
        assert restored.total_payment == pytest.approx(
            outcome.total_payment
        )

    def test_offline_outcome_round_trip(self):
        scenario = WorkloadConfig(
            num_slots=5,
            phone_rate=2.0,
            task_rate=1.0,
            mean_cost=5.0,
            mean_active_length=2,
            task_value=10.0,
        ).generate(seed=2)
        outcome = OfflineVCGMechanism().run(
            scenario.truthful_bids(), scenario.schedule
        )
        assert AuctionOutcome.from_dict(outcome.to_dict()) == outcome

    def test_payment_slots_preserved(self, outcome):
        restored = AuctionOutcome.from_dict(outcome.to_dict())
        for phone_id in outcome.winners:
            assert restored.payment_slot(phone_id) == outcome.payment_slot(
                phone_id
            )


class TestFailureModes:
    def test_missing_field(self, outcome):
        payload = outcome.to_dict()
        del payload["allocation"]
        with pytest.raises(MechanismError, match="malformed"):
            AuctionOutcome.from_dict(payload)

    def test_reconstruction_revalidates(self, outcome):
        """Tampered payloads are caught by the constructor's checks."""
        payload = outcome.to_dict()
        if payload["allocation"]:
            task_id = next(iter(payload["allocation"]))
            payload["allocation"][task_id] = 999_999  # unknown phone
            with pytest.raises(MechanismError):
                AuctionOutcome.from_dict(payload)

    def test_non_mapping_payload(self):
        with pytest.raises(MechanismError):
            AuctionOutcome.from_dict({"bids": None})  # type: ignore[dict-item]
