"""Unit tests for RoundConfig validation."""

from __future__ import annotations

import pytest

from repro.errors import MechanismError, ValidationError
from repro.model import Bid, RoundConfig, TaskSchedule


class TestConstruction:
    def test_basic(self):
        assert RoundConfig(num_slots=5).num_slots == 5

    def test_zero_slots_rejected(self):
        with pytest.raises(ValidationError):
            RoundConfig(num_slots=0)

    def test_for_schedule(self):
        schedule = TaskSchedule.from_counts([1, 0, 1], value=1.0)
        assert RoundConfig.for_schedule(schedule).num_slots == 3

    def test_for_schedule_type_check(self):
        with pytest.raises(ValidationError):
            RoundConfig.for_schedule("not-a-schedule")  # type: ignore[arg-type]


class TestValidateBids:
    def test_indexes_by_phone(self):
        config = RoundConfig(num_slots=5)
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=3, departure=5, cost=2.0),
        ]
        by_phone = config.validate_bids(bids)
        assert set(by_phone) == {1, 2}

    def test_duplicate_phone_rejected(self):
        config = RoundConfig(num_slots=5)
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=1, arrival=3, departure=4, cost=2.0),
        ]
        with pytest.raises(MechanismError, match="duplicate bid"):
            config.validate_bids(bids)

    def test_departure_beyond_horizon_rejected(self):
        config = RoundConfig(num_slots=5)
        with pytest.raises(MechanismError, match="beyond the round horizon"):
            config.validate_bids(
                [Bid(phone_id=1, arrival=1, departure=6, cost=1.0)]
            )

    def test_non_bid_rejected(self):
        config = RoundConfig(num_slots=5)
        with pytest.raises(MechanismError, match="must be Bid"):
            config.validate_bids(["nope"])  # type: ignore[list-item]

    def test_empty_bids_fine(self):
        assert RoundConfig(num_slots=5).validate_bids([]) == {}


class TestValidateSchedule:
    def test_matching_horizon_accepted(self):
        schedule = TaskSchedule.from_counts([1, 1], value=1.0)
        config = RoundConfig(num_slots=2)
        assert config.validate_schedule(schedule) is schedule

    def test_mismatched_horizon_rejected(self):
        schedule = TaskSchedule.from_counts([1, 1], value=1.0)
        config = RoundConfig(num_slots=3)
        with pytest.raises(MechanismError, match="does not match"):
            config.validate_schedule(schedule)

    def test_non_schedule_rejected(self):
        with pytest.raises(MechanismError):
            RoundConfig(num_slots=2).validate_schedule("nope")  # type: ignore[arg-type]
