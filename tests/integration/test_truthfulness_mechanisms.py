"""Integration: the paper's theorems, audited on random workloads.

* Theorems 1/4 (truthfulness) — the deviation battery and best-response
  search find nothing against the paper's mechanisms on competitive
  workloads, and *do* find deviations against the untruthful baselines.
* Theorems 2/5 (individual rationality) — no phone ends up negative.
* Theorem 6 (1/2-competitiveness) — checked across seeds.

Competitive workloads (supply comfortably above demand) are used for the
online mechanism's truthfulness audit: in under-supplied rounds the
paper's Algorithm 2 pays uncontested winners their own bid, a documented
gap (DESIGN.md §7) exercised separately below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import best_response_search
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import (
    FifoMechanism,
    SecondPriceSlotMechanism,
)
from repro.metrics import (
    audit_individual_rationality,
    audit_truthfulness,
    empirical_competitive_ratio,
)
from repro.model import Bid, TaskSchedule
from repro.simulation import Scenario, SimulationEngine, WorkloadConfig

#: Dense market: λ phones >> λ_t tasks, so every window is contested.
COMPETITIVE = WorkloadConfig(
    num_slots=10,
    phone_rate=5.0,
    task_rate=1.5,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=25.0,
)


class TestTruthfulnessOnRandomWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_online_audit_passes_saturated(self, seed):
        """Paper rule in a saturated market: every slot's pool non-empty
        under any unilateral deviation (Theorem 4's regime)."""
        from repro.simulation import DeterministicArrivals

        scenario = COMPETITIVE.generate(
            seed=seed,
            phone_arrivals=DeterministicArrivals(5),
            task_arrivals=DeterministicArrivals(1),
        )
        rng = np.random.default_rng(seed)
        report = audit_truthfulness(
            OnlineGreedyMechanism(), scenario, rng, max_phones=12
        )
        assert report.passed, report.violations

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_online_exact_rule_audit_passes_poisson(self, seed):
        """Exact rule + reserve stays truthful on Poisson workloads,
        including unserved-task lulls."""
        scenario = COMPETITIVE.generate(seed=seed)
        rng = np.random.default_rng(seed)
        report = audit_truthfulness(
            OnlineGreedyMechanism(reserve_price=True, payment_rule="exact"),
            scenario,
            rng,
            max_phones=10,
        )
        assert report.passed, report.violations

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_offline_audit_passes(self, seed):
        scenario = COMPETITIVE.generate(seed=seed)
        rng = np.random.default_rng(seed)
        report = audit_truthfulness(
            OfflineVCGMechanism(), scenario, rng, max_phones=8
        )
        assert report.passed, report.violations

    def test_second_price_audit_fails_somewhere(self):
        """Across seeds, the audit catches the strawman."""
        caught = False
        for seed in range(6):
            scenario = COMPETITIVE.generate(seed=seed)
            rng = np.random.default_rng(seed)
            report = audit_truthfulness(
                SecondPriceSlotMechanism(), scenario, rng, max_phones=15
            )
            if not report.passed:
                caught = True
                break
        assert caught

    def test_fifo_pay_as_bid_fails(self):
        caught = False
        for seed in range(6):
            scenario = COMPETITIVE.generate(seed=seed)
            rng = np.random.default_rng(seed)
            report = audit_truthfulness(
                FifoMechanism(), scenario, rng, max_phones=15
            )
            if not report.passed:
                caught = True
                break
        assert caught

    def test_best_response_finds_nothing_online_saturated(self):
        """Paper payment rule, saturated market (Theorem 4's regime).

        With 5 phones arriving per slot and 1 task per slot, every slot's
        pool stays non-empty under any unilateral deviation, so the
        Algorithm-2 payment is a genuine critical value and no deviation
        can profit.  (In markets with unserved-task lulls the verbatim
        rule has a documented gap — see TestKnownAlgorithm2Gap.)
        """
        from repro.simulation import DeterministicArrivals

        scenario = COMPETITIVE.replace(num_slots=6).generate(
            seed=3,
            phone_arrivals=DeterministicArrivals(5),
            task_arrivals=DeterministicArrivals(1),
        )
        mechanism = OnlineGreedyMechanism()
        bids = scenario.truthful_bids()
        rng = np.random.default_rng(3)
        sampled = rng.choice(
            len(scenario.profiles), size=min(6, len(scenario.profiles)),
            replace=False,
        )
        for index in sampled:
            profile = scenario.profiles[int(index)]
            result = best_response_search(
                mechanism, profile, bids, scenario.schedule, max_windows=4
            )
            assert not result.profitable, (
                f"phone {profile.phone_id}: {result.best_bid} gains "
                f"{result.gain}"
            )

    def test_best_response_finds_nothing_exact_rule_sparse(self):
        """Exact critical-value rule + reserve survives sparse markets
        where the verbatim Algorithm 2 does not."""
        scenario = COMPETITIVE.replace(
            num_slots=6, phone_rate=1.5, task_rate=2.0
        ).generate(seed=3)
        mechanism = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        )
        bids = scenario.truthful_bids()
        rng = np.random.default_rng(3)
        sampled = rng.choice(
            len(scenario.profiles), size=min(6, len(scenario.profiles)),
            replace=False,
        )
        for index in sampled:
            profile = scenario.profiles[int(index)]
            result = best_response_search(
                mechanism, profile, bids, scenario.schedule, max_windows=4
            )
            assert not result.profitable, (
                f"phone {profile.phone_id}: {result.best_bid} gains "
                f"{result.gain}"
            )


class TestKnownAlgorithm2Gap:
    """The documented deviation of the paper's verbatim payment rule."""

    def test_uncontested_winner_profits_under_paper_rule(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        mechanism = OnlineGreedyMechanism()  # paper rule, no reserve
        truthful = mechanism.run(bids, schedule)
        inflated = mechanism.run([bids[0].with_cost(9.0)], schedule)
        truthful_utility = truthful.payment(1) - 3.0
        inflated_utility = inflated.payment(1) - 3.0
        assert inflated_utility > truthful_utility  # the gap

    def test_exact_rule_with_reserve_closes_the_gap(self):
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=3.0)]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        mechanism = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        )
        truthful = mechanism.run(bids, schedule)
        inflated = mechanism.run([bids[0].with_cost(9.0)], schedule)
        over = mechanism.run([bids[0].with_cost(11.0)], schedule)
        assert truthful.payment(1) == pytest.approx(10.0)
        assert inflated.payment(1) == pytest.approx(10.0)  # no gain
        assert not over.is_winner(1)  # priced out at the reserve


class TestIndividualRationality:
    @pytest.mark.parametrize("seed", range(4))
    def test_both_mechanisms_ir(self, seed):
        scenario = COMPETITIVE.generate(seed=seed)
        for mechanism in (OfflineVCGMechanism(), OnlineGreedyMechanism()):
            assert (
                audit_individual_rationality(mechanism, scenario) == []
            ), mechanism.name

    @pytest.mark.parametrize("seed", range(4))
    def test_ir_in_undersupplied_markets(self, seed):
        scarce = COMPETITIVE.replace(phone_rate=1.0, task_rate=3.0)
        scenario = scarce.generate(seed=seed)
        for mechanism in (OfflineVCGMechanism(), OnlineGreedyMechanism()):
            assert (
                audit_individual_rationality(mechanism, scenario) == []
            ), mechanism.name


class TestCompetitiveRatio:
    @pytest.mark.parametrize("seed", range(8))
    def test_theorem6_across_seeds(self, seed):
        scenario = COMPETITIVE.generate(seed=100 + seed)
        ratio = empirical_competitive_ratio(
            scenario.truthful_bids(), scenario.schedule
        )
        if ratio is not None:
            assert 0.5 - 1e-9 <= ratio <= 1.0 + 1e-9


class TestTruthTellingIsConsistent:
    def test_claimed_equals_true_welfare_under_truth(self):
        scenario = COMPETITIVE.generate(seed=11)
        engine = SimulationEngine()
        for mechanism in (OfflineVCGMechanism(), OnlineGreedyMechanism()):
            result = engine.run(mechanism, scenario)
            assert result.claimed_welfare == pytest.approx(
                result.true_welfare
            )
