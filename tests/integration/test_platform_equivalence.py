"""Integration: the incremental platform reproduces the batch mechanism.

The online mechanism is specified slot-by-slot (Section V); our batch
implementation and the event-driven platform must be *extensionally
equal* — same allocation, same payments, same settlement slots — on any
workload.  This is the strongest internal-consistency check in the
suite: it exercises arrival handling, pool maintenance, reserve prices,
both payment rules, and payment timing at once.
"""

from __future__ import annotations

import pytest

from repro.auction import replay_scenario
from repro.mechanisms import OnlineGreedyMechanism
from repro.simulation import WorkloadConfig

WORKLOADS = [
    WorkloadConfig(
        num_slots=12,
        phone_rate=3.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=15.0,
    ),
    WorkloadConfig(
        num_slots=20,
        phone_rate=1.0,
        task_rate=3.0,  # under-supplied
        mean_cost=8.0,
        mean_active_length=2,
        task_value=12.0,
    ),
    WorkloadConfig(
        num_slots=8,
        phone_rate=8.0,
        task_rate=1.0,  # over-supplied
        mean_cost=20.0,
        mean_active_length=4,
        task_value=25.0,
    ),
]


@pytest.mark.parametrize("workload_index", range(len(WORKLOADS)))
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "reserve,rule",
    [(False, "paper"), (True, "paper"), (True, "exact")],
)
def test_platform_equals_batch(workload_index, seed, reserve, rule):
    scenario = WORKLOADS[workload_index].generate(seed=seed)
    incremental, _ = replay_scenario(
        scenario, reserve_price=reserve, payment_rule=rule
    )
    batch = OnlineGreedyMechanism(
        reserve_price=reserve, payment_rule=rule
    ).run(scenario.truthful_bids(), scenario.schedule)

    assert incremental.allocation == batch.allocation
    assert set(incremental.payments) == set(batch.payments)
    for phone_id, amount in batch.payments.items():
        assert incremental.payment(phone_id) == pytest.approx(amount)
        assert incremental.payment_slot(phone_id) == batch.payment_slot(
            phone_id
        )


def test_platform_welfare_equals_batch_on_default_workload():
    scenario = WorkloadConfig.paper_default().replace(num_slots=20).generate(
        seed=3
    )
    incremental, events = replay_scenario(scenario)
    batch = OnlineGreedyMechanism().run(
        scenario.truthful_bids(), scenario.schedule
    )
    assert incremental.claimed_welfare == pytest.approx(
        batch.claimed_welfare
    )
    assert incremental.total_payment == pytest.approx(batch.total_payment)
    assert len(events) > 0
