"""End-to-end reproduction of every number in the paper's worked example.

Sections IV/V use one running instance (Figs. 4 and 5).  This module runs
both mechanisms and the second-price strawman on it and checks each
quantity the paper states, all in one place.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import SecondPriceSlotMechanism
from repro.metrics import (
    audit_individual_rationality,
    empirical_competitive_ratio,
    true_social_welfare,
)
from repro.simulation import Scenario
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(paper_example_profiles(), paper_example_schedule())


@pytest.fixture(scope="module")
def online_outcome(scenario):
    return OnlineGreedyMechanism().run(
        scenario.truthful_bids(), scenario.schedule
    )


@pytest.fixture(scope="module")
def offline_outcome(scenario):
    return OfflineVCGMechanism().run(
        scenario.truthful_bids(), scenario.schedule
    )


class TestOnlineRun:
    def test_fig4_allocation(self, online_outcome, scenario):
        by_slot = {
            scenario.schedule.task(t).slot: p
            for t, p in online_outcome.allocation.items()
        }
        assert by_slot == {1: 2, 2: 1, 3: 7, 4: 6, 5: 4}

    def test_section5c_payment(self, online_outcome):
        assert online_outcome.payment(1) == pytest.approx(9.0)

    def test_all_phones_ir(self, scenario):
        assert (
            audit_individual_rationality(OnlineGreedyMechanism(), scenario)
            == []
        )

    def test_online_welfare(self, online_outcome, scenario):
        # Winners 2,1,7,6,4 cost 5+3+6+8+9 = 31; 5 tasks at ν=12.
        assert true_social_welfare(
            online_outcome, scenario
        ) == pytest.approx(5 * 12 - 31)


class TestOfflineRun:
    def test_offline_welfare_is_optimal(self, offline_outcome, scenario):
        # Optimum uses 5 (cost 4) instead of 6 or 9: 2,1|5,7,6?,4 ...
        # cheapest feasible 5-cover: {2,5,7,6,4}? cost 5+4+6+8+9=32 vs
        # with 1: slots force assignment; optimal = 34 claimed welfare.
        assert offline_outcome.claimed_welfare == pytest.approx(34.0)
        assert true_social_welfare(
            offline_outcome, scenario
        ) == pytest.approx(34.0)

    def test_offline_beats_online(self, offline_outcome, online_outcome):
        assert (
            offline_outcome.claimed_welfare
            > online_outcome.claimed_welfare
        )

    def test_competitive_ratio_at_least_half(self, scenario):
        ratio = empirical_competitive_ratio(
            scenario.truthful_bids(), scenario.schedule
        )
        assert ratio is not None
        assert 0.5 - 1e-9 <= ratio <= 1.0

    def test_offline_ir(self, scenario):
        assert (
            audit_individual_rationality(OfflineVCGMechanism(), scenario)
            == []
        )


class TestSecondPriceStrawman:
    def test_fig5a_payments(self, scenario):
        outcome = SecondPriceSlotMechanism().run(
            scenario.truthful_bids(), scenario.schedule
        )
        assert outcome.payment(2) == pytest.approx(6.0)
        assert outcome.payment(1) == pytest.approx(4.0)

    def test_fig5b_gain_is_4(self, scenario):
        mechanism = SecondPriceSlotMechanism()
        truthful = mechanism.run(
            scenario.truthful_bids(), scenario.schedule
        )
        deviated_bids = [
            b.with_window(4, 5) if b.phone_id == 1 else b
            for b in scenario.truthful_bids()
        ]
        deviated = mechanism.run(deviated_bids, scenario.schedule)
        gain = deviated.payment(1) - truthful.payment(1)
        assert gain == pytest.approx(4.0)

    def test_our_online_mechanism_immune_to_same_deviation(self, scenario):
        """The same Fig. 5(b) deviation does not pay under Algorithm 2."""
        mechanism = OnlineGreedyMechanism()
        truthful = mechanism.run(
            scenario.truthful_bids(), scenario.schedule
        )
        deviated_bids = [
            b.with_window(4, 5) if b.phone_id == 1 else b
            for b in scenario.truthful_bids()
        ]
        deviated = mechanism.run(deviated_bids, scenario.schedule)
        cost = scenario.profile(1).cost
        truthful_utility = truthful.payment(1) - (
            cost if truthful.is_winner(1) else 0.0
        )
        deviated_utility = deviated.payment(1) - (
            cost if deviated.is_winner(1) else 0.0
        )
        assert deviated_utility <= truthful_utility + 1e-9
