"""Shared fixtures: the paper's worked example and small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import SanitizedMechanism
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms import registry as mechanism_registry
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        type=int,
        default=0,
        help=(
            "base seed of the fault-injection property suite "
            "(CI rotates it with the run number)"
        ),
    )
    parser.addoption(
        "--crash-seed",
        type=int,
        default=0,
        help=(
            "base seed of the crash-fault durability property suite "
            "(CI rotates it with the run number)"
        ),
    )
    parser.addoption(
        "--schedule-fuzz",
        action="store_true",
        default=False,
        help=(
            "run the full schedule-fuzzing determinism matrix "
            "(worker counts x chunk orders x matching backends) "
            "before the suite; a nondeterministic sweep point fails "
            "the session at collection"
        ),
    )


@pytest.fixture(scope="session")
def chaos_seed(request):
    """Base seed for the seeded fault-scenario property tests."""
    return request.config.getoption("--chaos-seed")


@pytest.fixture(scope="session")
def crash_seed(request):
    """Base seed for the crash-fault durability property tests."""
    return request.config.getoption("--crash-seed")


@pytest.fixture(autouse=True, scope="session")
def _sanitize_all_mechanisms():
    """Run the whole suite with the outcome sanitizer switched on.

    Every mechanism served by the registry is wrapped in
    :class:`SanitizedMechanism`, so each ``run`` anywhere in the suite
    re-checks structural feasibility, individual rationality, and
    welfare accounting (see ``repro/analysis/sanitizer.py``).  A
    mechanism regression then fails loudly at its first bad outcome
    instead of skewing downstream metrics.
    """
    mechanism_registry.set_sanitize_outcomes(True)
    yield
    mechanism_registry.set_sanitize_outcomes(False)


@pytest.fixture(autouse=True, scope="session")
def _schedule_fuzz_determinism(request):
    """Optionally gate the whole suite on schedule-fuzzed determinism.

    With ``--schedule-fuzz``, the session first re-runs one sweep point
    under permuted worker counts, submission orders, and matching
    backends — plus a sharded campaign under permuted shard submission
    orders and shard-pool sizes (see
    :func:`repro.analysis.sanitizer.check_parallel_determinism`) — and
    fails immediately if any combination's outcome bytes differ from
    the serial reference — the runtime twin of the static REP010–REP015
    flow rules.  Off by default: the matrix spawns dozens of process
    pools, and ``tests/analysis/test_parallel_determinism.py`` keeps a
    reduced version always-on.
    """
    if request.config.getoption("--schedule-fuzz"):
        from repro.analysis.sanitizer import check_parallel_determinism

        check_parallel_determinism(
            worker_counts=(1, 2, 3, 4),
            backends=("numpy", "sparse", "python"),
            shard_worker_counts=(1, 2, 4),
        )
    yield


@pytest.fixture
def paper_profiles():
    """The 7 private profiles of the Fig. 4 worked example."""
    return paper_example_profiles()


@pytest.fixture
def paper_bids():
    """The truthful bids of the Fig. 4 worked example."""
    return paper_example_bids()


@pytest.fixture
def paper_schedule():
    """One task per slot over 5 slots (Figs. 4/5)."""
    return paper_example_schedule()


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def offline_mechanism():
    return SanitizedMechanism(OfflineVCGMechanism())


@pytest.fixture
def online_mechanism():
    return SanitizedMechanism(OnlineGreedyMechanism())


@pytest.fixture
def small_workload():
    """A small, dense workload that keeps full VCG runs fast."""
    return WorkloadConfig(
        num_slots=10,
        phone_rate=4.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=15.0,
    )


@pytest.fixture
def small_scenario(small_workload):
    return small_workload.generate(seed=42)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
