"""Shared fixtures: the paper's worked example and small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


@pytest.fixture
def paper_profiles():
    """The 7 private profiles of the Fig. 4 worked example."""
    return paper_example_profiles()


@pytest.fixture
def paper_bids():
    """The truthful bids of the Fig. 4 worked example."""
    return paper_example_bids()


@pytest.fixture
def paper_schedule():
    """One task per slot over 5 slots (Figs. 4/5)."""
    return paper_example_schedule()


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def offline_mechanism():
    return OfflineVCGMechanism()


@pytest.fixture
def online_mechanism():
    return OnlineGreedyMechanism()


@pytest.fixture
def small_workload():
    """A small, dense workload that keeps full VCG runs fast."""
    return WorkloadConfig(
        num_slots=10,
        phone_rate=4.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=15.0,
    )


@pytest.fixture
def small_scenario(small_workload):
    return small_workload.generate(seed=42)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
