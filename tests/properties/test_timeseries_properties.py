"""Property-based conservation laws for the time-series metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import OnlineGreedyMechanism
from repro.metrics import (
    cumulative,
    payments_by_slot,
    platform_float_by_slot,
    pool_occupancy,
    tasks_served_by_slot,
    tasks_unserved_by_slot,
    welfare_by_slot,
    winner_waiting_stats,
)
from repro.metrics.welfare import true_social_welfare
from repro.model import TaskSchedule
from repro.simulation import Scenario
from tests.properties.strategies import MAX_SLOTS, profile_lists

ONLINE = OnlineGreedyMechanism()


@st.composite
def scenarios(draw):
    profiles = draw(profile_lists(max_phones=8))
    counts = draw(
        st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        )
    )
    schedule = TaskSchedule.from_counts(counts, value=25.0)
    return Scenario(profiles, schedule)


class TestConservationLaws:
    @given(scenario=scenarios())
    @settings(max_examples=50, deadline=None)
    def test_welfare_series_sums_to_total(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        assert sum(welfare_by_slot(outcome, scenario)) == pytest.approx(
            true_social_welfare(outcome, scenario)
        )

    @given(scenario=scenarios())
    @settings(max_examples=50, deadline=None)
    def test_payment_series_sums_to_total(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        assert sum(payments_by_slot(outcome)) == pytest.approx(
            outcome.total_payment
        )

    @given(scenario=scenarios())
    @settings(max_examples=50, deadline=None)
    def test_served_plus_unserved_equals_schedule(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        served = tasks_served_by_slot(outcome)
        unserved = tasks_unserved_by_slot(outcome)
        assert [s + u for s, u in zip(served, unserved)] == list(
            scenario.schedule.counts
        )

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_float_ends_at_welfare_minus_payment(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        series = platform_float_by_slot(outcome, scenario)
        assert series[-1] == pytest.approx(
            true_social_welfare(outcome, scenario) - outcome.total_payment
        )

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_cumulative_is_monotone_for_nonnegative(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        series = cumulative(payments_by_slot(outcome))
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_pool_occupancy_bounds_winners(self, scenario):
        """No slot can serve more tasks than phones active in it."""
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        occupancy = pool_occupancy(scenario)
        served = tasks_served_by_slot(outcome)
        for active, winners in zip(occupancy, served):
            assert winners <= active

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_waits_fit_inside_windows(self, scenario):
        outcome = ONLINE.run(scenario.truthful_bids(), scenario.schedule)
        stats = winner_waiting_stats(outcome, scenario)
        for phone_id, wait in stats.waits.items():
            profile = scenario.profile(phone_id)
            assert 0 <= wait <= profile.active_length - 1
