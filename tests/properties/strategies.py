"""Shared hypothesis strategies for auction instances."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.model import Bid, SmartphoneProfile, TaskSchedule

MAX_SLOTS = 6

costs = st.floats(
    min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


@st.composite
def bids(draw, phone_id: int, max_slots: int = MAX_SLOTS):
    """One bid with a window inside ``[1, max_slots]``."""
    arrival = draw(st.integers(1, max_slots))
    departure = draw(st.integers(arrival, max_slots))
    cost = draw(costs)
    return Bid(
        phone_id=phone_id, arrival=arrival, departure=departure, cost=cost
    )


@st.composite
def bid_lists(draw, max_phones: int = 8, max_slots: int = MAX_SLOTS):
    """Between 0 and ``max_phones`` bids with distinct phone ids."""
    count = draw(st.integers(0, max_phones))
    return [draw(bids(phone_id=pid, max_slots=max_slots)) for pid in range(count)]


@st.composite
def schedules(draw, max_slots: int = MAX_SLOTS, max_per_slot: int = 3):
    """A task schedule over exactly ``max_slots`` slots."""
    counts = draw(
        st.lists(
            st.integers(0, max_per_slot),
            min_size=max_slots,
            max_size=max_slots,
        )
    )
    value = draw(st.floats(min_value=1.0, max_value=30.0, allow_nan=False))
    return TaskSchedule.from_counts(counts, value=value)


@st.composite
def instances(draw, max_phones: int = 8, max_slots: int = MAX_SLOTS):
    """A full (bids, schedule) auction instance."""
    return (
        draw(bid_lists(max_phones=max_phones, max_slots=max_slots)),
        draw(schedules(max_slots=max_slots)),
    )


@st.composite
def profile_lists(draw, max_phones: int = 8, max_slots: int = MAX_SLOTS):
    """Private profiles with distinct ids inside ``[1, max_slots]``."""
    count = draw(st.integers(0, max_phones))
    profiles = []
    for pid in range(count):
        arrival = draw(st.integers(1, max_slots))
        departure = draw(st.integers(arrival, max_slots))
        cost = draw(costs)
        profiles.append(
            SmartphoneProfile(
                phone_id=pid,
                arrival=arrival,
                departure=departure,
                cost=cost,
            )
        )
    return profiles
