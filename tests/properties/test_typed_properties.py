"""Property-based tests of the typed-task (capabilities) extension."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.extensions import (
    CapabilityModel,
    TypedOfflineVCGMechanism,
    TypedOnlineGreedyMechanism,
)
from repro.extensions.capabilities import check_typed_outcome
from repro.mechanisms import OfflineVCGMechanism
from repro.model import TaskSchedule
from tests.properties.strategies import MAX_SLOTS, bid_lists

KINDS = ("a", "b")


@st.composite
def typed_instances(draw):
    """(bids, schedule, model) with random kinds and capabilities."""
    bids = draw(bid_lists(max_phones=6))
    counts = draw(
        st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        )
    )
    schedule = TaskSchedule.from_counts(counts, value=25.0)
    task_kinds = {
        task.task_id: draw(st.sampled_from(KINDS)) for task in schedule
    }
    phone_capabilities = {
        bid.phone_id: frozenset(
            kind for kind in KINDS if draw(st.booleans())
        )
        for bid in bids
    }
    model = CapabilityModel(
        task_kinds=task_kinds, phone_capabilities=phone_capabilities
    )
    return bids, schedule, model


class TestTypedStructure:
    @given(instance=typed_instances())
    @settings(max_examples=40, deadline=None)
    def test_offline_respects_capabilities(self, instance):
        bids, schedule, model = instance
        outcome = TypedOfflineVCGMechanism(model).run(bids, schedule)
        check_typed_outcome(outcome, model)

    @given(instance=typed_instances())
    @settings(max_examples=40, deadline=None)
    def test_online_respects_capabilities(self, instance):
        bids, schedule, model = instance
        outcome = TypedOnlineGreedyMechanism(model).run(bids, schedule)
        check_typed_outcome(outcome, model)

    @given(instance=typed_instances())
    @settings(max_examples=30, deadline=None)
    def test_offline_dominates_online(self, instance):
        bids, schedule, model = instance
        offline = TypedOfflineVCGMechanism(model).run(bids, schedule)
        online = TypedOnlineGreedyMechanism(model).run(bids, schedule)
        assert offline.claimed_welfare >= online.claimed_welfare - 1e-9

    @given(instance=typed_instances())
    @settings(max_examples=30, deadline=None)
    def test_restriction_never_beats_base(self, instance):
        bids, schedule, model = instance
        typed = TypedOfflineVCGMechanism(model).run(bids, schedule)
        base = OfflineVCGMechanism().run(bids, schedule)
        assert typed.claimed_welfare <= base.claimed_welfare + 1e-9

    @given(instance=typed_instances())
    @settings(max_examples=30, deadline=None)
    def test_payments_cover_claimed_costs(self, instance):
        bids, schedule, model = instance
        for mechanism in (
            TypedOfflineVCGMechanism(model),
            TypedOnlineGreedyMechanism(model),
        ):
            outcome = mechanism.run(bids, schedule)
            for phone_id in outcome.winners:
                assert (
                    outcome.payment(phone_id)
                    >= outcome.bid_of(phone_id).cost - 1e-9
                )


class TestTypedTruthfulness:
    @given(
        instance=typed_instances(),
        deviant=st.integers(0, 5),
        factor=st.floats(0.3, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_offline_cost_truthfulness(self, instance, deviant, factor):
        bids, schedule, model = instance
        assume(deviant < len(bids))
        mechanism = TypedOfflineVCGMechanism(model)
        true_bid = bids[deviant]
        true_cost = true_bid.cost

        truthful = mechanism.run(bids, schedule)
        truthful_u = truthful.payment(true_bid.phone_id) - (
            true_cost if truthful.is_winner(true_bid.phone_id) else 0.0
        )
        deviated_bids = [
            b.with_cost(true_cost * factor)
            if b.phone_id == true_bid.phone_id
            else b
            for b in bids
        ]
        deviated = mechanism.run(deviated_bids, schedule)
        deviated_u = deviated.payment(true_bid.phone_id) - (
            true_cost if deviated.is_winner(true_bid.phone_id) else 0.0
        )
        assert deviated_u <= truthful_u + 1e-6

    @given(
        instance=typed_instances(),
        deviant=st.integers(0, 5),
        factor=st.floats(0.3, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_online_cost_truthfulness(self, instance, deviant, factor):
        bids, schedule, model = instance
        assume(deviant < len(bids))
        mechanism = TypedOnlineGreedyMechanism(model)
        true_bid = bids[deviant]
        true_cost = true_bid.cost

        truthful = mechanism.run(bids, schedule)
        truthful_u = truthful.payment(true_bid.phone_id) - (
            true_cost if truthful.is_winner(true_bid.phone_id) else 0.0
        )
        deviated_bids = [
            b.with_cost(true_cost * factor)
            if b.phone_id == true_bid.phone_id
            else b
            for b in bids
        ]
        deviated = mechanism.run(deviated_bids, schedule)
        deviated_u = deviated.payment(true_bid.phone_id) - (
            true_cost if deviated.is_winner(true_bid.phone_id) else 0.0
        )
        assert deviated_u <= truthful_u + 1e-6


class TestUnrestrictedReduction:
    @given(bids=bid_lists(max_phones=5))
    @settings(max_examples=30, deadline=None)
    def test_empty_model_equals_base_offline(self, bids):
        schedule = TaskSchedule.from_counts([1] * MAX_SLOTS, value=25.0)
        typed = TypedOfflineVCGMechanism(CapabilityModel()).run(
            bids, schedule
        )
        base = OfflineVCGMechanism().run(bids, schedule)
        assert typed.claimed_welfare == pytest.approx(base.claimed_welfare)
        assert typed.payments == pytest.approx(base.payments)
