"""Cross-backend equivalence properties of the matching engines.

The guarantee under test: the CSR ``sparse`` backend is a drop-in
replacement for the dense ``numpy`` backend — bit-identical welfare and
bit-identical per-winner VCG payments on every instance (the graph layer
re-prices repaired matchings from raw edge weights and canonicalises the
summation order, so the equality is exact, not approximate).  The
pure-Python reference backend is held to the same bitwise bar on the
payment path; the optional scipy backend is a welfare-level cross-check
(it breaks ties differently by design).

Exact float equality on money-valued quantities is the entire point of
this suite, hence the REP002 suppressions.
"""

from typing import List

import numpy as np
import pytest

from repro.matching import scipy_available
from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms.offline_vcg import OfflineVCGMechanism
from repro.model.bid import Bid
from repro.model.task import TaskSchedule
from repro.simulation.costs import CostDistribution
from repro.simulation.workload import WorkloadConfig

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed ([perf] extra)"
)

#: The headline property sweep: 50 independent Table-I style rounds.
SEEDS = range(50)


class TieHeavyCosts(CostDistribution):
    """Costs drawn from a handful of small integers.

    Small integers are exact in floating point and collide constantly,
    so every instance is saturated with tied optima — the regime where
    backends are most likely to disagree if their tie handling or
    summation order leaks into the observable outcome.
    """

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        self._check_count(count)
        return [float(c) for c in rng.integers(20, 26, size=count)]

    @property
    def mean(self) -> float:
        return 22.5

    def __repr__(self) -> str:
        return "TieHeavyCosts()"


def _round(seed: int, cost_distribution=None, num_slots: int = 20):
    scenario = WorkloadConfig(num_slots=num_slots).generate(
        seed=seed, cost_distribution=cost_distribution
    )
    return scenario.truthful_bids(), scenario.schedule


def _run(backend: str, bids, schedule):
    return OfflineVCGMechanism(backend=backend).run(bids, schedule)


@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_is_bitwise_identical_to_dense(seed):
    bids, schedule = _round(seed)
    dense = _run("numpy", bids, schedule)
    sparse = _run("sparse", bids, schedule)
    assert sparse.payments == dense.payments  # repro: noqa-REP002 -- bitwise backend equivalence is the property under test
    assert set(sparse.allocation.values()) == set(dense.allocation.values())
    assert len(sparse.allocation) == len(dense.allocation)
    for phone_id in dense.payments:
        assert sparse.payment_slot(phone_id) == dense.payment_slot(phone_id)
    welfare_dense = TaskAssignmentGraph(
        schedule, bids, backend="numpy"
    ).solve()[1]
    welfare_sparse = TaskAssignmentGraph(
        schedule, bids, backend="sparse"
    ).solve()[1]
    assert welfare_sparse == welfare_dense  # repro: noqa-REP002 -- bitwise backend equivalence is the property under test


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_python_reference_payments_are_bitwise_identical(seed):
    bids, schedule = _round(seed, num_slots=10)
    dense = _run("numpy", bids, schedule)
    reference = _run("python", bids, schedule)
    assert reference.payments == dense.payments  # repro: noqa-REP002 -- bitwise backend equivalence is the property under test
    assert reference.allocation == dense.allocation


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_tie_heavy_costs_stay_bitwise_identical(seed):
    bids, schedule = _round(seed, cost_distribution=TieHeavyCosts())
    dense = _run("numpy", bids, schedule)
    sparse = _run("sparse", bids, schedule)
    assert sparse.payments == dense.payments  # repro: noqa-REP002 -- exact arithmetic on integer costs, ties included
    assert len(sparse.allocation) == len(dense.allocation)
    welfare_dense = TaskAssignmentGraph(
        schedule, bids, backend="numpy"
    ).solve()[1]
    welfare_sparse = TaskAssignmentGraph(
        schedule, bids, backend="sparse"
    ).solve()[1]
    assert welfare_sparse == welfare_dense  # repro: noqa-REP002 -- exact arithmetic on integer costs, ties included


@pytest.mark.parametrize("seed", range(8))
def test_warm_repair_matches_cold_exclusion_per_winner(seed):
    bids, schedule = _round(seed, num_slots=14)
    for backend in ("numpy", "sparse"):
        graph = TaskAssignmentGraph(schedule, bids, backend=backend)
        allocation, _ = graph.solve()
        for phone_id in sorted(set(allocation.values())):
            warm = graph.welfare_without_phone(phone_id)
            cold = graph.solve(exclude_phone=phone_id)[1]
            assert warm == pytest.approx(cold, abs=1e-9)


def test_degenerate_single_slot_windows():
    """Phones with ``arrival == departure`` (one-slot windows)."""
    schedule = TaskSchedule.from_counts([2, 1, 1], value=30.0)
    bids = [
        Bid(phone_id=0, arrival=1, departure=1, cost=10.0),
        Bid(phone_id=1, arrival=1, departure=1, cost=12.0),
        Bid(phone_id=2, arrival=2, departure=2, cost=8.0),
        Bid(phone_id=3, arrival=3, departure=3, cost=15.0),
        Bid(phone_id=4, arrival=3, departure=3, cost=40.0),  # priced out
    ]
    dense = _run("numpy", bids, schedule)
    sparse = _run("sparse", bids, schedule)
    assert sparse.payments == dense.payments  # repro: noqa-REP002 -- bitwise backend equivalence is the property under test
    assert set(sparse.allocation.values()) == set(dense.allocation.values())
    assert 4 not in sparse.payments


def test_phones_with_zero_active_tasks():
    """Windows that cover only task-free slots yield losing phones."""
    schedule = TaskSchedule.from_counts([1, 0, 0, 1], value=30.0)
    bids = [
        Bid(phone_id=0, arrival=1, departure=1, cost=10.0),
        Bid(phone_id=1, arrival=2, departure=3, cost=1.0),  # no tasks
        Bid(phone_id=2, arrival=4, departure=4, cost=9.0),
    ]
    for backend in ("numpy", "sparse", "python"):
        outcome = _run(backend, bids, schedule)
        assert set(outcome.allocation.values()) == {0, 2}
        assert 1 not in outcome.payments
    graph = TaskAssignmentGraph(schedule, bids, backend="sparse")
    assert graph.weight(schedule.tasks[0].task_id, 1) == 0.0


def test_empty_rounds_agree():
    schedule = TaskSchedule.from_counts([0, 0], value=30.0)
    bids = [Bid(phone_id=0, arrival=1, departure=2, cost=5.0)]
    for backend in ("numpy", "sparse", "python"):
        allocation, welfare = TaskAssignmentGraph(
            schedule, bids, backend=backend
        ).solve()
        assert allocation == {}
        assert welfare == 0.0  # repro: noqa-REP002 -- empty optimum is exactly zero


@needs_scipy
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_scipy_welfare_crosscheck(seed):
    """scipy confirms the optimal value (ties may differ by design)."""
    bids, schedule = _round(seed)
    welfare_dense = TaskAssignmentGraph(
        schedule, bids, backend="numpy"
    ).solve()[1]
    allocation, welfare_scipy = TaskAssignmentGraph(
        schedule, bids, backend="scipy"
    ).solve()
    assert welfare_scipy == pytest.approx(welfare_dense, abs=1e-9)
    assert len(allocation) > 0
