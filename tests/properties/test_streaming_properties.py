"""Streaming-vs-batch equivalence properties of the online engine.

The guarantee under test: ``OnlineGreedyMechanism(engine="streaming")``
is a drop-in replacement for the batch engine — the *pickled*
``AuctionOutcome`` objects are byte-identical on every instance, for
both payment rules and both reserve modes.  Byte-identity of the pickle
is deliberately stronger than field equality: it also pins dict
insertion order (allocation, payments, payment slots), so any drift in
the event-driven pass's iteration order shows up here.

Exact float equality on money-valued quantities is the entire point of
this suite, hence the REP002 suppressions.
"""

import pickle
from typing import List

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector, apply_bid_faults
from repro.mechanisms import OnlineGreedyMechanism
from repro.model.bid import Bid
from repro.model.task import SensingTask, TaskSchedule
from repro.simulation.costs import CostDistribution
from repro.simulation.workload import WorkloadConfig

#: The headline property sweep: 50 independent Table-I style rounds.
SEEDS = range(50)


class TieHeavyCosts(CostDistribution):
    """Costs drawn from a handful of small integers.

    Small integers are exact in floating point and collide constantly,
    so every instance is saturated with tied bids — the regime where
    the streaming heap's pop order is most likely to diverge from the
    batch sort if ``bid_sort_key`` ever stopped being a strict total
    order.
    """

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        self._check_count(count)
        return [float(c) for c in rng.integers(20, 26, size=count)]

    @property
    def mean(self) -> float:
        return 22.5

    def __repr__(self) -> str:
        return "TieHeavyCosts()"


def _round(seed: int, cost_distribution=None, **config):
    scenario = WorkloadConfig(**config).generate(
        seed=seed, cost_distribution=cost_distribution
    )
    return scenario, scenario.truthful_bids()


def _assert_byte_identical(bids, schedule, *, payment_rule, reserve_price):
    batch = OnlineGreedyMechanism(
        reserve_price=reserve_price, payment_rule=payment_rule
    ).run(bids, schedule)
    streaming = OnlineGreedyMechanism(
        reserve_price=reserve_price,
        payment_rule=payment_rule,
        engine="streaming",
    ).run(bids, schedule)
    assert pickle.dumps(streaming) == pickle.dumps(batch)
    return batch, streaming


@pytest.mark.parametrize("payment_rule", ["paper", "exact"])
@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_is_byte_identical_to_batch(seed, payment_rule):
    scenario, bids = _round(seed, num_slots=20)
    _assert_byte_identical(
        bids,
        scenario.schedule,
        payment_rule=payment_rule,
        reserve_price=False,
    )


@pytest.mark.parametrize("payment_rule", ["paper", "exact"])
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_streaming_with_reserve_price_is_byte_identical(seed, payment_rule):
    scenario, bids = _round(seed, num_slots=20)
    _assert_byte_identical(
        bids,
        scenario.schedule,
        payment_rule=payment_rule,
        reserve_price=True,
    )


@pytest.mark.parametrize("payment_rule", ["paper", "exact"])
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_tie_heavy_costs_stay_byte_identical(seed, payment_rule):
    scenario, bids = _round(
        seed, cost_distribution=TieHeavyCosts(), num_slots=20
    )
    batch, streaming = _assert_byte_identical(
        bids,
        scenario.schedule,
        payment_rule=payment_rule,
        reserve_price=False,
    )
    assert streaming.payments == batch.payments  # repro: noqa-REP002 -- exact arithmetic on integer costs, ties included


@pytest.mark.parametrize("payment_rule", ["paper", "exact"])
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_unit_length_windows_stay_byte_identical(seed, payment_rule):
    """Every phone arrives and departs in the same slot."""
    scenario, bids = _round(seed, num_slots=15, mean_active_length=1)
    _assert_byte_identical(
        bids,
        scenario.schedule,
        payment_rule=payment_rule,
        reserve_price=False,
    )


@pytest.mark.parametrize("payment_rule", ["paper", "exact"])
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_fault_injected_rounds_stay_byte_identical(seed, payment_rule):
    """Dropouts, delayed bids, and lost bids before the auction.

    The effective bid vector a faulty round hands the mechanism has
    shrunk windows (delays), missing phones (losses), and — for
    dropouts — departures truncated at the dropout slot; the streaming
    engine must agree byte-for-byte on all of them.
    """
    scenario, bids = _round(seed, num_slots=20)
    injector = FaultInjector(
        FaultConfig(
            dropout_prob=0.2, bid_delay_prob=0.2, bid_loss_prob=0.1
        )
    )
    plan = injector.plan(scenario, seed=seed)
    effective, lost, _ = apply_bid_faults(list(bids), plan)
    truncated = []
    for bid in effective:
        record = plan.for_phone(bid.phone_id)
        if record is not None and record.dropout_slot is not None:
            if record.dropout_slot < bid.arrival:
                continue
            bid = bid.with_window(
                bid.arrival, min(bid.departure, record.dropout_slot)
            )
        truncated.append(bid)
    assert len(truncated) < len(bids) or not lost
    _assert_byte_identical(
        truncated,
        scenario.schedule,
        payment_rule=payment_rule,
        reserve_price=False,
    )


@pytest.mark.parametrize("seed", range(8))
def test_heterogeneous_values_with_reserve_fall_back_identically(seed):
    """The probe-resume fallback regime stays byte-identical too.

    Heterogeneous task values plus a reserve price invalidate the
    incremental shortcuts (``uniform_value`` is ``None``), so the
    streaming engine routes payments through its lazy prober — the
    outcome must not change.
    """
    rng = np.random.default_rng(seed)
    tasks = []
    task_id = 0
    for slot in range(1, 13):
        for index in range(1, int(rng.integers(0, 4)) + 1):
            tasks.append(
                SensingTask(
                    task_id=task_id,
                    slot=slot,
                    index=index,
                    value=float(rng.integers(25, 40)),
                )
            )
            task_id += 1
    schedule = TaskSchedule(12, tasks)
    bids = []
    for i in range(30):
        arrival = int(rng.integers(1, 12))
        bids.append(
            Bid(
                phone_id=i,
                arrival=arrival,
                departure=int(rng.integers(arrival, 13)),
                cost=float(rng.integers(15, 35)),
            )
        )
    for payment_rule in ("paper", "exact"):
        _assert_byte_identical(
            bids,
            schedule,
            payment_rule=payment_rule,
            reserve_price=True,
        )


def test_degenerate_rounds_byte_identical():
    """Empty task slots, no bids, and single-phone rounds."""
    schedule = TaskSchedule.from_counts([1, 0, 2], value=30.0)
    cases = [
        [],
        [Bid(phone_id=0, arrival=1, departure=3, cost=10.0)],
        [
            Bid(phone_id=0, arrival=2, departure=2, cost=5.0),  # no tasks
            Bid(phone_id=1, arrival=3, departure=3, cost=8.0),
        ],
    ]
    for bids in cases:
        for payment_rule in ("paper", "exact"):
            _assert_byte_identical(
                bids,
                schedule,
                payment_rule=payment_rule,
                reserve_price=False,
            )
