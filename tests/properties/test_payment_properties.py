"""Property-based tests of the payment schemes themselves."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import run_greedy_allocation
from repro.model import Bid, TaskSchedule

OFFLINE = OfflineVCGMechanism()
ONLINE = OnlineGreedyMechanism()

NUM_SLOTS = 4


@st.composite
def saturated_instances(draw):
    """Instances whose pool can never run dry: per slot, at least
    ``tasks + 2`` phones arrive and every phone stays for >= 2 slots.
    In this regime every re-run serves every task, so Algorithm 2's
    payment is a true critical value."""
    bids = []
    phone_id = 0
    counts = []
    for slot in range(1, NUM_SLOTS + 1):
        tasks_here = draw(st.integers(0, 2))
        counts.append(tasks_here)
        for _ in range(tasks_here + 2):
            departure = draw(st.integers(min(slot + 1, NUM_SLOTS), NUM_SLOTS))
            cost = draw(
                st.floats(
                    min_value=0.1,
                    max_value=20.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            bids.append(
                Bid(
                    phone_id=phone_id,
                    arrival=slot,
                    departure=departure,
                    cost=cost,
                )
            )
            phone_id += 1
    schedule = TaskSchedule.from_counts(counts, value=50.0)
    return bids, schedule


class TestAlgorithm2Properties:
    @given(instance=saturated_instances())
    @settings(max_examples=40, deadline=None)
    def test_equals_exact_rule_when_saturated(self, instance):
        """In fully-served markets, Algorithm 2 IS the critical value."""
        bids, schedule = instance
        run = run_greedy_allocation(bids, schedule)
        for phone_id, win_slot in run.win_slots.items():
            winner = next(b for b in bids if b.phone_id == phone_id)
            paper = algorithm2_payment(bids, schedule, winner, win_slot)
            exact = exact_critical_payment(bids, schedule, winner)
            assert paper == pytest.approx(exact), phone_id

    @given(instance=saturated_instances())
    @settings(max_examples=40, deadline=None)
    def test_payment_independent_of_own_bid_while_winning(self, instance):
        """A winner's payment must not move with its own claimed cost
        (as long as it keeps winning) — the signature of a critical-value
        scheme, and the reason truth-telling is safe."""
        bids, schedule = instance
        outcome = ONLINE.run(bids, schedule)
        assume(outcome.winners)
        phone_id = outcome.winners[0]
        original_payment = outcome.payment(phone_id)
        winner = outcome.bid_of(phone_id)
        assume(winner.cost > 0.2)

        cheaper = [
            b.with_cost(winner.cost * 0.5) if b.phone_id == phone_id else b
            for b in bids
        ]
        cheaper_outcome = ONLINE.run(cheaper, schedule)
        assert cheaper_outcome.is_winner(phone_id)  # monotonicity
        assert cheaper_outcome.payment(phone_id) == pytest.approx(
            original_payment
        )

    @given(instance=saturated_instances())
    @settings(max_examples=30, deadline=None)
    def test_threshold_behaviour(self, instance):
        """Bidding strictly below the payment wins; strictly above loses
        (saturated markets, where the payment is the critical value)."""
        bids, schedule = instance
        outcome = ONLINE.run(bids, schedule)
        assume(outcome.winners)
        phone_id = outcome.winners[0]
        payment = outcome.payment(phone_id)
        winner = outcome.bid_of(phone_id)
        assume(payment > winner.cost + 0.01)  # floor not binding

        below = [
            b.with_cost(payment - 0.005) if b.phone_id == phone_id else b
            for b in bids
        ]
        above = [
            b.with_cost(payment + 0.005) if b.phone_id == phone_id else b
            for b in bids
        ]
        assert ONLINE.run(below, schedule).is_winner(phone_id)
        assert not ONLINE.run(above, schedule).is_winner(phone_id)


class TestVCGProperties:
    @given(
        costs=st.lists(
            st.floats(
                min_value=0.1,
                max_value=20.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_slot_vcg_is_second_price(self, costs):
        """One task, all phones active: VCG = pay the second-lowest."""
        bids = [
            Bid(phone_id=i, arrival=1, departure=1, cost=c)
            for i, c in enumerate(costs)
        ]
        schedule = TaskSchedule.from_counts([1], value=50.0)
        outcome = OFFLINE.run(bids, schedule)
        ordered = sorted(costs)
        assume(ordered[0] < ordered[1])  # unique winner
        winner_id = outcome.winners[0]
        assert bids[winner_id].cost == pytest.approx(ordered[0])
        assert outcome.payment(winner_id) == pytest.approx(ordered[1])

    @given(instance=saturated_instances())
    @settings(max_examples=30, deadline=None)
    def test_vcg_payment_independent_of_own_bid_while_allocation_fixed(
        self, instance
    ):
        """Small own-cost perturbations that keep the allocation the
        same must keep the VCG payment the same up to the perturbation's
        effect on ω* ... i.e. utility is unchanged."""
        bids, schedule = instance
        outcome = OFFLINE.run(bids, schedule)
        assume(outcome.winners)
        phone_id = outcome.winners[0]
        winner = outcome.bid_of(phone_id)
        assume(winner.cost > 0.2)
        utility_before = outcome.payment(phone_id) - winner.cost

        # Undercutting keeps a winner winning under VCG.
        cheaper = [
            b.with_cost(winner.cost * 0.9) if b.phone_id == phone_id else b
            for b in bids
        ]
        cheaper_outcome = OFFLINE.run(cheaper, schedule)
        assume(cheaper_outcome.is_winner(phone_id))
        # True utility (against the REAL cost) must not improve.
        utility_after = cheaper_outcome.payment(phone_id) - winner.cost
        assert utility_after <= utility_before + 1e-6
