"""Property-based tests of the domain model and aggregation layer."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.metrics import summarize
from repro.model import Bid, SmartphoneProfile, TaskSchedule
from tests.properties.strategies import bids as bid_strategy
from tests.properties.strategies import profile_lists

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSerializationRoundTrips:
    @given(bid=bid_strategy(phone_id=3))
    @settings(max_examples=50, deadline=None)
    def test_bid_round_trip(self, bid):
        assert Bid.from_dict(bid.to_dict()) == bid

    @given(profiles=profile_lists())
    @settings(max_examples=50, deadline=None)
    def test_profile_round_trip(self, profiles):
        for profile in profiles:
            assert (
                SmartphoneProfile.from_dict(profile.to_dict()) == profile
            )

    @given(
        counts=st.lists(st.integers(0, 4), min_size=1, max_size=8),
        value=st.floats(0.0, 100.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_schedule_counts_round_trip(self, counts, value):
        schedule = TaskSchedule.from_counts(counts, value=value)
        assert list(schedule.counts) == counts
        assert len(schedule) == sum(counts)
        assert schedule.total_value == pytest.approx(value * sum(counts))


class TestBidProperties:
    @given(bid=bid_strategy(phone_id=1))
    @settings(max_examples=50, deadline=None)
    def test_active_exactly_inside_window(self, bid):
        for slot in range(1, 10):
            assert bid.is_active(slot) == (
                bid.arrival <= slot <= bid.departure
            )

    @given(bid=bid_strategy(phone_id=1))
    @settings(max_examples=50, deadline=None)
    def test_active_length_consistent(self, bid):
        active_slots = sum(bid.is_active(s) for s in range(1, 10))
        assert active_slots == bid.active_length


class TestProfileClaimProperties:
    @given(profiles=profile_lists(max_phones=4))
    @settings(max_examples=50, deadline=None)
    def test_truthful_bid_always_feasible(self, profiles):
        for profile in profiles:
            assert profile.is_feasible_claim(profile.truthful_bid())

    @given(
        profiles=profile_lists(max_phones=4),
        delay=st.integers(0, 5),
        advance=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_shrunk_windows_always_feasible(self, profiles, delay, advance):
        for profile in profiles:
            arrival = profile.arrival + delay
            departure = profile.departure - advance
            assume_valid = arrival <= departure
            if not assume_valid:
                continue
            claim = Bid(
                phone_id=profile.phone_id,
                arrival=arrival,
                departure=departure,
                cost=profile.cost,
            )
            assert profile.is_feasible_claim(claim)


class TestSummarizeProperties:
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=30)
    )
    @settings(max_examples=60, deadline=None)
    def test_mean_within_bounds(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-6 <= summary.mean <= summary.maximum + 1e-6
        assert summary.count == len(values)
        assert summary.std >= 0.0
        assert summary.ci95 >= 0.0

    @given(
        values=st.lists(finite_floats, min_size=1, max_size=20),
        shift=finite_floats,
    )
    @settings(max_examples=40, deadline=None)
    def test_shift_equivariance(self, values, shift):
        assume(all(abs(v + shift) < 1e12 for v in values))
        base = summarize(values)
        shifted = summarize([v + shift for v in values])
        assert shifted.mean == pytest.approx(base.mean + shift, abs=1e-3)
        assert shifted.std == pytest.approx(base.std, abs=1e-3)

    @given(values=st.lists(finite_floats, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_none_padding_is_ignored(self, values):
        padded = [None] + list(values) + [None]
        assert summarize(padded) == summarize(values)
