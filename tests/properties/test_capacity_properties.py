"""Property-based tests of the capacitated-supply extension."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.extensions import CapacitatedOfflineVCGMechanism
from repro.extensions.capacity import check_capacitated_outcome
from repro.mechanisms import OfflineVCGMechanism
from repro.model import TaskSchedule
from tests.properties.strategies import MAX_SLOTS, bid_lists


@st.composite
def capacitated_instances(draw):
    bids = draw(bid_lists(max_phones=5))
    counts = draw(
        st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        )
    )
    schedule = TaskSchedule.from_counts(counts, value=25.0)
    capacities = {
        bid.phone_id: draw(st.integers(1, 3)) for bid in bids
    }
    return bids, schedule, capacities


class TestCapacitatedStructure:
    @given(instance=capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_capacities_respected(self, instance):
        bids, schedule, capacities = instance
        mechanism = CapacitatedOfflineVCGMechanism(capacities)
        outcome = mechanism.run(bids, schedule)
        check_capacitated_outcome(outcome, mechanism)

    @given(instance=capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_dominates_unit_capacity(self, instance):
        """Capacity >= 1 everywhere can only improve on the base model."""
        bids, schedule, capacities = instance
        capacitated = CapacitatedOfflineVCGMechanism(capacities).run(
            bids, schedule
        )
        base = OfflineVCGMechanism().run(bids, schedule)
        assert capacitated.claimed_welfare >= base.claimed_welfare - 1e-9

    @given(instance=capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_unit_capacities_equal_base(self, instance):
        bids, schedule, _ = instance
        capacitated = CapacitatedOfflineVCGMechanism().run(bids, schedule)
        base = OfflineVCGMechanism().run(bids, schedule)
        assert capacitated.claimed_welfare == pytest.approx(
            base.claimed_welfare
        )

    @given(instance=capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_ir_on_claims(self, instance):
        """Payment covers claimed cost x units served."""
        bids, schedule, capacities = instance
        outcome = CapacitatedOfflineVCGMechanism(capacities).run(
            bids, schedule
        )
        costs = {b.phone_id: b.cost for b in bids}
        for phone_id, payment in outcome.payments.items():
            floor = costs[phone_id] * outcome.units_of(phone_id)
            assert payment >= floor - 1e-9


class TestCapacitatedTruthfulness:
    @given(
        instance=capacitated_instances(),
        deviant=st.integers(0, 4),
        factor=st.floats(0.3, 3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_cost_misreport_never_profits(self, instance, deviant, factor):
        bids, schedule, capacities = instance
        assume(deviant < len(bids))
        mechanism = CapacitatedOfflineVCGMechanism(capacities)
        true_bid = bids[deviant]
        true_cost = true_bid.cost

        truthful = mechanism.run(bids, schedule)
        truthful_u = truthful.payments.get(true_bid.phone_id, 0.0) - (
            true_cost * truthful.units_of(true_bid.phone_id)
        )
        deviated_bids = [
            b.with_cost(true_cost * factor)
            if b.phone_id == true_bid.phone_id
            else b
            for b in bids
        ]
        deviated = mechanism.run(deviated_bids, schedule)
        deviated_u = deviated.payments.get(true_bid.phone_id, 0.0) - (
            true_cost * deviated.units_of(true_bid.phone_id)
        )
        assert deviated_u <= truthful_u + 1e-6
