"""Property-based tests of the matching substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    brute_force_max_weight_matching,
    check_matching,
    hopcroft_karp,
    max_weight_matching,
)
from repro.matching.solver import AssignmentSolver

weight_matrices = st.integers(1, 5).flatmap(
    lambda rows: st.integers(1, 5).flatmap(
        lambda cols: st.lists(
            st.lists(
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=cols,
                max_size=cols,
            ),
            min_size=rows,
            max_size=rows,
        )
    )
)


class TestMaxWeightMatchingProperties:
    @given(weights=weight_matrices)
    @settings(max_examples=60, deadline=None)
    def test_equals_brute_force(self, weights):
        fast = max_weight_matching(weights)
        exact = brute_force_max_weight_matching(weights)
        assert fast.total_weight == pytest.approx(exact.total_weight)

    @given(weights=weight_matrices)
    @settings(max_examples=60, deadline=None)
    def test_result_is_valid_matching(self, weights):
        result = max_weight_matching(weights)
        total = check_matching(weights, result.pairs)
        assert total == pytest.approx(result.total_weight)

    @given(weights=weight_matrices)
    @settings(max_examples=40, deadline=None)
    def test_total_weight_nonnegative(self, weights):
        # Leaving everything unmatched is always available.
        assert max_weight_matching(weights).total_weight >= 0.0

    @given(weights=weight_matrices, scale=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_invariance(self, weights, scale):
        """Scaling all weights scales the optimum."""
        scaled = [[w * scale for w in row] for row in weights]
        base = max_weight_matching(weights).total_weight
        assert max_weight_matching(scaled).total_weight == pytest.approx(
            base * scale, abs=1e-6
        )

    @given(weights=weight_matrices)
    @settings(max_examples=30, deadline=None)
    def test_adding_column_never_hurts(self, weights):
        """More smartphones can only increase the optimal welfare."""
        extended = [row + [5.0] for row in weights]
        assert (
            max_weight_matching(extended).total_weight
            >= max_weight_matching(weights).total_weight - 1e-9
        )


class TestRepairProperties:
    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(1, 6),
        extra=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_repair_equals_resolve(self, seed, rows, extra):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0.0, 10.0, size=(rows, rows + extra))
        solver = AssignmentSolver(cost)
        solver.solve()
        column = int(rng.integers(rows + extra))
        repaired = solver.total_cost_without_column(column)
        reduced = np.delete(cost, column, axis=1)
        _, expected = AssignmentSolver(reduced).solve()
        assert repaired == pytest.approx(expected)

    @given(seed=st.integers(0, 10_000), rows=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_removing_column_never_decreases_cost(self, seed, rows):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0.0, 10.0, size=(rows, rows + 3))
        solver = AssignmentSolver(cost)
        _, full = solver.solve()
        for column in range(rows + 3):
            assert (
                solver.total_cost_without_column(column) >= full - 1e-9
            )


class TestHopcroftKarpProperties:
    @given(
        seed=st.integers(0, 10_000),
        n_left=st.integers(1, 7),
        n_right=st.integers(1, 7),
        density=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_cardinality_equals_weighted_01(
        self, seed, n_left, n_right, density
    ):
        rng = np.random.default_rng(seed)
        mask = rng.random((n_left, n_right)) < density
        adjacency = [
            [j for j in range(n_right) if mask[i, j]]
            for i in range(n_left)
        ]
        size, matching = hopcroft_karp(adjacency, num_right=n_right)
        assert size == len(matching)
        weighted = max_weight_matching(mask.astype(float).tolist())
        assert size == len(weighted.pairs)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 7),
    )
    @settings(max_examples=30, deadline=None)
    def test_matching_edges_exist(self, seed, n):
        rng = np.random.default_rng(seed)
        mask = rng.random((n, n)) < 0.5
        adjacency = [
            [j for j in range(n) if mask[i, j]] for i in range(n)
        ]
        _, matching = hopcroft_karp(adjacency, num_right=n)
        for left, right in matching.items():
            assert mask[left, right]
