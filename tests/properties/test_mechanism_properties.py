"""Property-based tests of the mechanisms' paper-claimed invariants."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.greedy_core import run_greedy_allocation
from repro.metrics import empirical_competitive_ratio
from repro.model import TaskSchedule
from tests.properties.strategies import MAX_SLOTS, bid_lists, instances

OFFLINE = OfflineVCGMechanism()
ONLINE = OnlineGreedyMechanism()


class TestStructuralInvariants:
    @given(instance=instances())
    @settings(max_examples=50, deadline=None)
    def test_online_outcome_well_formed(self, instance):
        bids, schedule = instance
        outcome = ONLINE.run(bids, schedule)
        # AuctionOutcome's constructor enforces the structural rules
        # (one task per phone, active windows); reaching here means they
        # hold.  Check payment coverage on top:
        for phone_id in outcome.winners:
            assert outcome.payment(phone_id) >= 0.0

    @given(instance=instances(max_phones=6))
    @settings(max_examples=40, deadline=None)
    def test_offline_outcome_well_formed(self, instance):
        bids, schedule = instance
        outcome = OFFLINE.run(bids, schedule)
        for phone_id in outcome.winners:
            assert outcome.payment(phone_id) >= 0.0

    @given(instance=instances())
    @settings(max_examples=50, deadline=None)
    def test_online_per_slot_cheapest(self, instance):
        """In each slot, winners are the cheapest available bids."""
        bids, schedule = instance
        run = run_greedy_allocation(bids, schedule)
        allocated_before = set()
        for outcome in run.slots:
            winner_ids = {b.phone_id for b in outcome.winners}
            pool = [
                b
                for b in bids
                if b.is_active(outcome.slot)
                and b.phone_id not in allocated_before
            ]
            losers = [b for b in pool if b.phone_id not in winner_ids]
            if losers and outcome.winners:
                max_winner = max(b.cost for b in outcome.winners)
                min_loser = min(b.cost for b in losers)
                assert max_winner <= min_loser + 1e-9
            # If tasks went unserved the pool must have been exhausted.
            if outcome.unserved:
                assert len(pool) == len(winner_ids)
            allocated_before |= winner_ids

    @given(instance=instances(max_phones=6))
    @settings(max_examples=40, deadline=None)
    def test_offline_never_worse_than_online(self, instance):
        bids, schedule = instance
        offline_welfare = OFFLINE.run(bids, schedule).claimed_welfare
        online = OnlineGreedyMechanism(reserve_price=True)
        online_welfare = online.run(bids, schedule).claimed_welfare
        assert offline_welfare >= online_welfare - 1e-9


class TestPaymentInvariants:
    @given(instance=instances(max_phones=6))
    @settings(max_examples=40, deadline=None)
    def test_vcg_payment_at_least_claimed_cost(self, instance):
        bids, schedule = instance
        outcome = OFFLINE.run(bids, schedule)
        for phone_id in outcome.winners:
            assert (
                outcome.payment(phone_id)
                >= outcome.bid_of(phone_id).cost - 1e-9
            )

    @given(instance=instances())
    @settings(max_examples=50, deadline=None)
    def test_online_payment_at_least_claimed_cost(self, instance):
        bids, schedule = instance
        outcome = ONLINE.run(bids, schedule)
        for phone_id in outcome.winners:
            assert (
                outcome.payment(phone_id)
                >= outcome.bid_of(phone_id).cost - 1e-9
            )

    @given(instance=instances())
    @settings(max_examples=50, deadline=None)
    def test_losers_paid_nothing(self, instance):
        bids, schedule = instance
        for mechanism in (ONLINE, OnlineGreedyMechanism(reserve_price=True)):
            outcome = mechanism.run(bids, schedule)
            winner_ids = set(outcome.winners)
            for bid in bids:
                if bid.phone_id not in winner_ids:
                    assert outcome.payment(bid.phone_id) == pytest.approx(0.0)

    @given(instance=instances())
    @settings(max_examples=40, deadline=None)
    def test_online_payment_settled_at_departure(self, instance):
        bids, schedule = instance
        outcome = ONLINE.run(bids, schedule)
        for phone_id in outcome.winners:
            assert outcome.payment_slot(phone_id) == outcome.bid_of(
                phone_id
            ).departure


class TestTruthfulnessProperties:
    @given(
        bids=bid_lists(max_phones=6),
        deviant=st.integers(0, 5),
        factor=st.floats(0.3, 3.0),
        counts=st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_offline_cost_truthfulness(self, bids, deviant, factor, counts):
        """No unilateral cost misreport profits under offline VCG."""
        assume(deviant < len(bids))
        schedule = TaskSchedule.from_counts(counts, value=25.0)
        true_bid = bids[deviant]
        true_cost = true_bid.cost

        truthful_outcome = OFFLINE.run(bids, schedule)
        truthful_utility = truthful_outcome.payment(true_bid.phone_id) - (
            true_cost if truthful_outcome.is_winner(true_bid.phone_id) else 0.0
        )

        deviant_bids = [
            b if b.phone_id != true_bid.phone_id else b.with_cost(
                true_cost * factor
            )
            for b in bids
        ]
        deviant_outcome = OFFLINE.run(deviant_bids, schedule)
        deviant_utility = deviant_outcome.payment(true_bid.phone_id) - (
            true_cost if deviant_outcome.is_winner(true_bid.phone_id) else 0.0
        )
        assert deviant_utility <= truthful_utility + 1e-6

    @given(
        bids=bid_lists(max_phones=6),
        deviant=st.integers(0, 5),
        factor=st.floats(0.3, 3.0),
        counts=st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_online_exact_rule_cost_truthfulness(
        self, bids, deviant, factor, counts
    ):
        """Exact critical-value rule + reserve: no cost misreport
        profits, even in under-supplied instances."""
        assume(deviant < len(bids))
        schedule = TaskSchedule.from_counts(counts, value=25.0)
        mechanism = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        )
        true_bid = bids[deviant]
        true_cost = true_bid.cost

        truthful_outcome = mechanism.run(bids, schedule)
        truthful_utility = truthful_outcome.payment(true_bid.phone_id) - (
            true_cost if truthful_outcome.is_winner(true_bid.phone_id) else 0.0
        )

        deviant_bids = [
            b if b.phone_id != true_bid.phone_id else b.with_cost(
                true_cost * factor
            )
            for b in bids
        ]
        deviant_outcome = mechanism.run(deviant_bids, schedule)
        deviant_utility = deviant_outcome.payment(true_bid.phone_id) - (
            true_cost if deviant_outcome.is_winner(true_bid.phone_id) else 0.0
        )
        assert deviant_utility <= truthful_utility + 1e-6

    @given(
        bids=bid_lists(max_phones=6),
        deviant=st.integers(0, 5),
        factor=st.floats(0.3, 1.0),
        counts=st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_online_monotonicity_in_cost(self, bids, deviant, factor, counts):
        """Definition 10 (cost axis): lowering a winning claim keeps it
        winning."""
        assume(deviant < len(bids))
        schedule = TaskSchedule.from_counts(counts, value=25.0)
        outcome = ONLINE.run(bids, schedule)
        winner = bids[deviant]
        assume(outcome.is_winner(winner.phone_id))

        lowered = [
            b if b.phone_id != winner.phone_id else b.with_cost(
                winner.cost * factor
            )
            for b in bids
        ]
        assert ONLINE.run(lowered, schedule).is_winner(winner.phone_id)


class TestCompetitiveRatioProperty:
    @given(instance=instances(max_phones=7))
    @settings(max_examples=50, deadline=None)
    def test_theorem6_with_dominant_value(self, instance):
        """ω_apx / ω_opt >= 1/2 whenever ν exceeds every claimed cost."""
        bids, schedule = instance
        assume(len(schedule) > 0 and bids)
        max_cost = max(b.cost for b in bids)
        boosted = TaskSchedule.from_counts(
            schedule.counts, value=max_cost + 10.0
        )
        ratio = empirical_competitive_ratio(bids, boosted)
        if ratio is not None:
            assert ratio >= 0.5 - 1e-9
