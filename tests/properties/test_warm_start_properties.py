"""Warm-started solver repairs vs cold re-solves, across 50 seeds.

The warm paths (:meth:`AssignmentSolver.resolve_without_row`,
:meth:`AssignmentSolver.total_cost_without_column`,
:meth:`TaskAssignmentGraph.welfare_without_phone`) must agree with a
from-scratch solve of the reduced instance — on the optimal value
always, and on the matching itself whenever the optimum is unique
(continuous random costs make ties measure-zero).  The pure-Python
reference solver cross-checks the vectorised one through the backend
flag on every seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import (
    max_weight_matching,
    use_backend,
)
from repro.matching.graph import TaskAssignmentGraph
from repro.matching.hungarian import solve_assignment_min
from repro.matching.solver import AssignmentSolver
from repro.simulation import WorkloadConfig

SEEDS = range(50)


def _random_cost(seed: int) -> np.ndarray:
    """A random rectangular cost matrix with ``rows <= cols``."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(2, 8))
    cols = rows + int(rng.integers(1, 4))
    return rng.random((rows, cols)) * 10.0


class TestWarmRowRemoval:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_cold_resolve(self, seed):
        cost = _random_cost(seed)
        solver = AssignmentSolver(cost)
        solver.solve()
        rng = np.random.default_rng(seed + 1000)
        row = int(rng.integers(0, cost.shape[0]))

        warm_assignment, warm_total = solver.resolve_without_row(row)

        reduced = np.delete(cost, row, axis=0)
        cold = AssignmentSolver(reduced)
        cold.solve()
        cold_assignment = cold.row_to_col()

        assert warm_total == pytest.approx(cold.total_cost())
        # Continuous costs: the reduced optimum is unique, so the warm
        # matching (original minus the dropped row) must be the cold one.
        assert warm_assignment[row] == -1
        kept = [r for r in range(cost.shape[0]) if r != row]
        np.testing.assert_array_equal(
            warm_assignment[kept], cold_assignment
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_total_cost_without_row_matches_cold(self, seed):
        cost = _random_cost(seed)
        solver = AssignmentSolver(cost)
        solver.solve()
        for row in range(cost.shape[0]):
            cold = AssignmentSolver(np.delete(cost, row, axis=0))
            cold.solve()
            assert solver.total_cost_without_row(row) == pytest.approx(
                cold.total_cost()
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_delete_row_keeps_later_repairs_exact(self, seed):
        cost = _random_cost(seed)
        solver = AssignmentSolver(cost)
        solver.solve()
        rng = np.random.default_rng(seed + 2000)
        row = int(rng.integers(0, cost.shape[0]))
        solver.delete_row(row)

        reduced = np.delete(cost, row, axis=0)
        cold = AssignmentSolver(reduced)
        cold.solve()
        assert solver.total_cost() == pytest.approx(cold.total_cost())
        # Column repairs stay exact after the deletion.
        column = int(rng.integers(0, cost.shape[1]))
        cold_reduced = AssignmentSolver(np.delete(reduced, column, axis=1))
        cold_reduced.solve()
        assert solver.total_cost_without_column(column) == pytest.approx(
            cold_reduced.total_cost()
        )


class TestWarmColumnRemoval:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_cold_resolve(self, seed):
        cost = _random_cost(seed)
        solver = AssignmentSolver(cost)
        solver.solve()
        for column in range(cost.shape[1]):
            cold = AssignmentSolver(np.delete(cost, column, axis=1))
            cold.solve()
            assert solver.total_cost_without_column(
                column
            ) == pytest.approx(cold.total_cost())


class TestBackendCrossCheck:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_solver_matches_python_reference(self, seed):
        cost = _random_cost(seed)
        solver = AssignmentSolver(cost)
        _, total = solver.solve()
        reference_assignment, reference_total = solve_assignment_min(
            cost.tolist()
        )
        assert total == pytest.approx(reference_total)
        np.testing.assert_array_equal(
            solver.row_to_col(), np.asarray(reference_assignment)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_backend_flag_selects_identical_matchings(self, seed):
        rng = np.random.default_rng(seed)
        weights = (rng.random((4, 6)) * 10.0 - 2.0).tolist()
        fast = max_weight_matching(weights, backend="numpy")
        with use_backend("python"):
            reference = max_weight_matching(weights)
        assert fast.total_weight == pytest.approx(reference.total_weight)
        assert fast.pairs == reference.pairs


class TestGraphWelfareWithoutPhone:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exclusion_solve(self, seed):
        scenario = WorkloadConfig.paper_default().replace(
            num_slots=10
        ).generate(seed=seed)
        bids = scenario.truthful_bids()
        graph = TaskAssignmentGraph(scenario.schedule, bids)
        allocation, _ = graph.solve()
        for phone_id in sorted(set(allocation.values())):
            _, cold_welfare = graph.solve(exclude_phone=phone_id)
            assert graph.welfare_without_phone(phone_id) == pytest.approx(
                cold_welfare
            )
