"""Property-based equivalence: incremental platform == batch mechanism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction import replay_scenario
from repro.mechanisms import OnlineGreedyMechanism
from repro.model import TaskSchedule
from repro.simulation import Scenario
from tests.properties.strategies import MAX_SLOTS, profile_lists


@st.composite
def scenarios(draw):
    profiles = draw(profile_lists(max_phones=8))
    counts = draw(
        st.lists(
            st.integers(0, 2), min_size=MAX_SLOTS, max_size=MAX_SLOTS
        )
    )
    schedule = TaskSchedule.from_counts(counts, value=25.0)
    return Scenario(profiles, schedule)


class TestPlatformEquivalenceProperty:
    @given(
        scenario=scenarios(),
        reserve=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_replay_equals_batch(self, scenario, reserve):
        incremental, _ = replay_scenario(scenario, reserve_price=reserve)
        batch = OnlineGreedyMechanism(reserve_price=reserve).run(
            scenario.truthful_bids(), scenario.schedule
        )
        assert incremental.allocation == batch.allocation
        assert set(incremental.payments) == set(batch.payments)
        for phone_id, amount in batch.payments.items():
            assert incremental.payment(phone_id) == pytest.approx(amount)
            assert incremental.payment_slot(phone_id) == (
                batch.payment_slot(phone_id)
            )

    @given(scenario=scenarios())
    @settings(max_examples=30, deadline=None)
    def test_replay_equals_batch_exact_rule(self, scenario):
        incremental, _ = replay_scenario(
            scenario, reserve_price=True, payment_rule="exact"
        )
        batch = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        ).run(scenario.truthful_bids(), scenario.schedule)
        assert incremental.allocation == batch.allocation
        for phone_id, amount in batch.payments.items():
            assert incremental.payment(phone_id) == pytest.approx(amount)

    @given(scenario=scenarios())
    @settings(max_examples=30, deadline=None)
    def test_event_log_consistent_with_outcome(self, scenario):
        from repro.auction.events import PaymentSettled, TaskAllocated

        outcome, events = replay_scenario(scenario)
        allocated = {
            e.task_id: e.phone_id
            for e in events
            if isinstance(e, TaskAllocated)
        }
        settled = {
            e.phone_id: e.amount
            for e in events
            if isinstance(e, PaymentSettled)
        }
        assert allocated == outcome.allocation
        assert set(settled) == set(outcome.payments)
        for phone_id, amount in settled.items():
            assert amount == pytest.approx(outcome.payment(phone_id))
