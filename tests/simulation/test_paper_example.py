"""Consistency checks on the reconstructed Fig. 4 / Fig. 5 instance.

Every assertion here is a number stated in the paper's prose; the
reconstruction in :mod:`repro.simulation.paper_example` must satisfy all
of them simultaneously.
"""

from __future__ import annotations

import pytest

from repro.simulation.paper_example import (
    EXAMPLE_TASK_VALUE,
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


class TestReconstruction:
    def test_seven_smartphones(self):
        assert len(paper_example_profiles()) == 7

    def test_phone2_window_and_cost(self):
        """'Smartphone 2 begins its active time in the 1st slot and ends
        ... in the 4th slot. It claims a cost of 5.'"""
        phone2 = next(
            p for p in paper_example_profiles() if p.phone_id == 2
        )
        assert (phone2.arrival, phone2.departure, phone2.cost) == (1, 4, 5.0)

    def test_slot3_pool_is_3_6_7(self):
        """'the dynamic pool contains 3 smartphones, i.e., 3, 6, and 7'
        (slot 3, after phones 2 and 1 won slots 1 and 2)."""
        profiles = paper_example_profiles()
        active = {p.phone_id for p in profiles if p.is_active(3)}
        active -= {2, 1}  # already allocated in slots 1 and 2
        assert active == {3, 6, 7}

    def test_slot3_costs_are_11_8_6(self):
        """'its cost 6 is smaller than those of Smartphones 3 and 6
        (with a cost of 11 and 8, respectively)'."""
        by_id = {p.phone_id: p for p in paper_example_profiles()}
        assert by_id[7].cost == pytest.approx(6.0)
        assert by_id[3].cost == pytest.approx(11.0)
        assert by_id[6].cost == pytest.approx(8.0)

    def test_phone1_cost_3_window_2_5(self):
        """Fig. 5(b): phone 1 delayed by 2 reports [4, 5] ⇒ truth [2, 5];
        the second-price walk-through pays it 4 against real cost 3."""
        phone1 = next(
            p for p in paper_example_profiles() if p.phone_id == 1
        )
        assert (phone1.arrival, phone1.departure, phone1.cost) == (2, 5, 3.0)

    def test_rerun_costs_4_6_8_9(self):
        """'the tasks would be allocated to smartphones 5, 7, 6, 4 with
        claimed costs of 4, 6, 8, 9'."""
        by_id = {p.phone_id: p for p in paper_example_profiles()}
        assert [by_id[i].cost for i in (5, 7, 6, 4)] == [4.0, 6.0, 8.0, 9.0]

    def test_schedule_one_task_per_slot(self):
        schedule = paper_example_schedule()
        assert schedule.counts == (1, 1, 1, 1, 1)

    def test_task_value_covers_all_costs(self):
        """Any ν ≥ 11 keeps the example's allocation unchanged."""
        max_cost = max(p.cost for p in paper_example_profiles())
        assert EXAMPLE_TASK_VALUE >= max_cost

    def test_bids_match_profiles(self):
        bids = paper_example_bids()
        profiles = paper_example_profiles()
        assert bids == [p.truthful_bid() for p in profiles]

    def test_custom_task_value(self):
        schedule = paper_example_schedule(task_value=100.0)
        assert all(t.value == 100.0 for t in schedule)
