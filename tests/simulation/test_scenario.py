"""Unit tests for Scenario assembly and strategy-driven bidding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import CostScalingStrategy, DelayedArrivalStrategy
from repro.errors import SimulationError, ValidationError
from repro.model import SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario


@pytest.fixture
def profiles():
    return [
        SmartphoneProfile(phone_id=1, arrival=1, departure=2, cost=3.0),
        SmartphoneProfile(phone_id=2, arrival=2, departure=3, cost=4.0),
    ]


@pytest.fixture
def schedule():
    return TaskSchedule.from_counts([1, 1, 1], value=10.0)


@pytest.fixture
def scenario(profiles, schedule):
    return Scenario(profiles, schedule, metadata={"origin": "test"})


class TestConstruction:
    def test_counts(self, scenario):
        assert scenario.num_phones == 2
        assert scenario.num_tasks == 3
        assert scenario.num_slots == 3

    def test_profiles_sorted_by_id(self, profiles, schedule):
        scenario = Scenario(list(reversed(profiles)), schedule)
        assert [p.phone_id for p in scenario.profiles] == [1, 2]

    def test_duplicate_profile_rejected(self, profiles, schedule):
        with pytest.raises(SimulationError, match="duplicate"):
            Scenario(profiles + [profiles[0]], schedule)

    def test_departure_beyond_horizon_rejected(self, schedule):
        late = SmartphoneProfile(phone_id=9, arrival=1, departure=4, cost=1.0)
        with pytest.raises(SimulationError, match="beyond"):
            Scenario([late], schedule)

    def test_non_profile_rejected(self, schedule):
        with pytest.raises(ValidationError):
            Scenario(["phone"], schedule)  # type: ignore[list-item]

    def test_metadata_copied(self, scenario):
        meta = scenario.metadata
        meta["origin"] = "mutated"
        assert scenario.metadata["origin"] == "test"


class TestAccess:
    def test_profile_lookup(self, scenario, profiles):
        assert scenario.profile(1) == profiles[0]
        with pytest.raises(SimulationError):
            scenario.profile(9)

    def test_active_profiles(self, scenario):
        assert [p.phone_id for p in scenario.active_profiles(2)] == [1, 2]
        assert [p.phone_id for p in scenario.active_profiles(3)] == [2]


class TestBidding:
    def test_truthful_bids(self, scenario, profiles):
        bids = scenario.truthful_bids()
        assert bids == [p.truthful_bid() for p in profiles]

    def test_default_strategy_is_truthful(self, scenario):
        assert scenario.bids_from_strategies() == scenario.truthful_bids()

    def test_per_phone_strategy(self, scenario):
        bids = scenario.bids_from_strategies(
            {1: CostScalingStrategy(2.0)}
        )
        by_phone = {b.phone_id: b for b in bids}
        assert by_phone[1].cost == pytest.approx(6.0)
        assert by_phone[2].cost == pytest.approx(4.0)

    def test_custom_default_strategy(self, scenario):
        bids = scenario.bids_from_strategies(
            default=CostScalingStrategy(2.0)
        )
        assert all(b.cost in (6.0, 8.0) for b in bids)

    def test_abstaining_strategy_drops_bid(self, scenario):
        # Phone 1's window is [1, 2]; a 2-slot delay empties it.
        bids = scenario.bids_from_strategies(
            {1: DelayedArrivalStrategy(2)}
        )
        assert [b.phone_id for b in bids] == [2]

    def test_unknown_phone_in_strategies_rejected(self, scenario):
        with pytest.raises(SimulationError, match="unknown phone_id"):
            scenario.bids_from_strategies({9: CostScalingStrategy(2.0)})

    def test_rng_forwarded(self, scenario):
        from repro.agents import RandomMisreportStrategy

        bids = scenario.bids_from_strategies(
            {1: RandomMisreportStrategy()},
            rng=np.random.default_rng(0),
        )
        assert len(bids) == 2
