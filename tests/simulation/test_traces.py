"""Unit tests for scenario trace persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.simulation import WorkloadConfig, load_scenario, save_scenario
from repro.simulation.traces import scenario_from_dict, scenario_to_dict


@pytest.fixture
def scenario():
    return WorkloadConfig(
        num_slots=6,
        phone_rate=2.0,
        task_rate=1.0,
        mean_cost=5.0,
        mean_active_length=2,
        task_value=8.0,
    ).generate(seed=1)


class TestRoundTrip:
    def test_file_round_trip(self, scenario, tmp_path):
        path = tmp_path / "trace.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.profiles == scenario.profiles
        assert loaded.schedule == scenario.schedule
        assert loaded.metadata == scenario.metadata

    def test_dict_round_trip(self, scenario):
        loaded = scenario_from_dict(scenario_to_dict(scenario))
        assert loaded.profiles == scenario.profiles
        assert loaded.schedule == scenario.schedule

    def test_trace_is_stable_json(self, scenario, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_scenario(scenario, a)
        save_scenario(scenario, b)
        assert a.read_text() == b.read_text()

    def test_replay_produces_identical_outcome(self, scenario, tmp_path):
        from repro.mechanisms import OnlineGreedyMechanism

        path = tmp_path / "trace.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        mechanism = OnlineGreedyMechanism()
        original = mechanism.run(scenario.truthful_bids(), scenario.schedule)
        replayed = mechanism.run(loaded.truthful_bids(), loaded.schedule)
        assert original == replayed


class TestFailureModes:
    def test_unsupported_version(self, scenario):
        payload = scenario_to_dict(scenario)
        payload["format_version"] = 99
        with pytest.raises(SimulationError, match="version"):
            scenario_from_dict(payload)

    def test_missing_fields(self, scenario):
        payload = scenario_to_dict(scenario)
        del payload["profiles"]
        with pytest.raises(SimulationError, match="malformed"):
            scenario_from_dict(payload)

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError, match="not valid JSON"):
            load_scenario(path)

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(SimulationError, match="JSON object"):
            load_scenario(path)

    def test_corrupt_profile_entry(self, scenario, tmp_path):
        payload = scenario_to_dict(scenario)
        payload["profiles"][0] = {"phone_id": 1}  # missing fields
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_scenario(path)
