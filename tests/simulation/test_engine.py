"""Unit tests for the simulation engine and its metric bundle."""

from __future__ import annotations

import pytest

from repro.agents import CostScalingStrategy
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.model import SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario, SimulationEngine


@pytest.fixture
def tiny_scenario():
    profiles = [
        SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=2.0),
        SmartphoneProfile(phone_id=2, arrival=1, departure=1, cost=4.0),
    ]
    schedule = TaskSchedule.from_counts([1], value=10.0)
    return Scenario(profiles, schedule)


class TestRun:
    def test_bundle_fields(self, tiny_scenario):
        result = SimulationEngine().run(
            OfflineVCGMechanism(), tiny_scenario
        )
        assert result.mechanism_name == "offline-vcg"
        assert result.tasks_served == 1
        # Winner: phone 1 (cost 2), VCG payment 4.
        assert result.true_welfare == pytest.approx(8.0)
        assert result.claimed_welfare == pytest.approx(8.0)
        assert result.total_payment == pytest.approx(4.0)
        assert result.overpayment == pytest.approx(2.0)
        assert result.overpayment_ratio == pytest.approx(1.0)

    def test_utilities(self, tiny_scenario):
        result = SimulationEngine().run(
            OfflineVCGMechanism(), tiny_scenario
        )
        assert result.utilities[1] == pytest.approx(2.0)
        assert result.utilities[2] == pytest.approx(0.0)

    def test_service_rate(self, tiny_scenario):
        result = SimulationEngine().run(
            OnlineGreedyMechanism(), tiny_scenario
        )
        assert result.service_rate == 1.0

    def test_empty_schedule_service_rate(self):
        scenario = Scenario(
            [SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=1.0)],
            TaskSchedule.from_counts([0], value=1.0),
        )
        result = SimulationEngine().run(OnlineGreedyMechanism(), scenario)
        assert result.service_rate == 1.0
        assert result.overpayment_ratio is None

    def test_strategies_change_bids(self, tiny_scenario):
        engine = SimulationEngine()
        truthful = engine.run(OnlineGreedyMechanism(), tiny_scenario)
        shaded = engine.run(
            OnlineGreedyMechanism(),
            tiny_scenario,
            strategies={1: CostScalingStrategy(3.0)},
        )
        # Phone 1 inflates from 2 to 6 and loses to phone 2.
        assert truthful.outcome.winners == (1,)
        assert shaded.outcome.winners == (2,)
        # Claimed and true welfare now differ (claimed uses the claim).
        assert shaded.claimed_welfare == pytest.approx(6.0)
        assert shaded.true_welfare == pytest.approx(6.0)

    def test_claimed_vs_true_welfare_divergence(self):
        """A lying *winner* makes claimed and true welfare diverge."""
        profiles = [
            SmartphoneProfile(phone_id=1, arrival=1, departure=1, cost=2.0),
        ]
        schedule = TaskSchedule.from_counts([1], value=10.0)
        scenario = Scenario(profiles, schedule)
        result = SimulationEngine().run(
            OnlineGreedyMechanism(),
            scenario,
            strategies={1: CostScalingStrategy(2.0)},
        )
        assert result.claimed_welfare == pytest.approx(6.0)
        assert result.true_welfare == pytest.approx(8.0)

    def test_package_on_existing_outcome(self, tiny_scenario):
        mechanism = OnlineGreedyMechanism()
        outcome = mechanism.run(
            tiny_scenario.truthful_bids(), tiny_scenario.schedule
        )
        result = SimulationEngine.package("custom", outcome, tiny_scenario)
        assert result.mechanism_name == "custom"
        assert result.outcome is outcome
