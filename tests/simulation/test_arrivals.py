"""Unit tests for arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation import (
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
)


class TestPoissonArrivals:
    def test_length_and_nonnegativity(self):
        counts = PoissonArrivals(3.0).counts(50, np.random.default_rng(0))
        assert len(counts) == 50
        assert all(isinstance(c, int) and c >= 0 for c in counts)

    def test_mean_close_to_rate(self):
        counts = PoissonArrivals(6.0).counts(
            5000, np.random.default_rng(1)
        )
        assert np.mean(counts) == pytest.approx(6.0, rel=0.05)

    def test_zero_rate_gives_zero_arrivals(self):
        counts = PoissonArrivals(0.0).counts(20, np.random.default_rng(0))
        assert counts == [0] * 20

    def test_deterministic_given_rng(self):
        a = PoissonArrivals(3.0).counts(10, np.random.default_rng(5))
        b = PoissonArrivals(3.0).counts(10, np.random.default_rng(5))
        assert a == b

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(-1.0)

    def test_invalid_num_slots(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(1.0).counts(0, np.random.default_rng(0))


class TestDeterministicArrivals:
    def test_constant_counts(self):
        counts = DeterministicArrivals(2).counts(
            5, np.random.default_rng(0)
        )
        assert counts == [2, 2, 2, 2, 2]

    def test_zero_allowed(self):
        assert DeterministicArrivals(0).counts(
            3, np.random.default_rng(0)
        ) == [0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            DeterministicArrivals(-1)

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            DeterministicArrivals(1.5)  # type: ignore[arg-type]


class TestInhomogeneousPoisson:
    def test_zero_rate_slots_are_empty(self):
        from repro.simulation import InhomogeneousPoissonArrivals

        process = InhomogeneousPoissonArrivals([0.0, 5.0])
        counts = process.counts(10, np.random.default_rng(0))
        assert all(counts[i] == 0 for i in range(0, 10, 2))

    def test_profile_cycles(self):
        from repro.simulation import InhomogeneousPoissonArrivals

        process = InhomogeneousPoissonArrivals([0.0, 0.0, 100.0])
        counts = process.counts(9, np.random.default_rng(1))
        # Rate-100 slots are 3, 6, 9 (1-based) = indices 2, 5, 8.
        for index in (2, 5, 8):
            assert counts[index] > 0
        for index in (0, 1, 3, 4, 6, 7):
            assert counts[index] == 0

    def test_mean_tracks_profile(self):
        from repro.simulation import InhomogeneousPoissonArrivals

        process = InhomogeneousPoissonArrivals([2.0, 8.0])
        counts = process.counts(4000, np.random.default_rng(2))
        low = np.mean(counts[0::2])
        high = np.mean(counts[1::2])
        assert low == pytest.approx(2.0, rel=0.1)
        assert high == pytest.approx(8.0, rel=0.1)

    def test_empty_profile_rejected(self):
        from repro.simulation import InhomogeneousPoissonArrivals

        with pytest.raises(ValidationError):
            InhomogeneousPoissonArrivals([])

    def test_negative_rate_rejected(self):
        from repro.simulation import InhomogeneousPoissonArrivals

        with pytest.raises(ValidationError):
            InhomogeneousPoissonArrivals([1.0, -2.0])


class TestTraceArrivals:
    def test_replays_prefix(self):
        process = TraceArrivals([1, 2, 3, 4])
        assert process.counts(3, np.random.default_rng(0)) == [1, 2, 3]

    def test_too_short_trace_rejected(self):
        with pytest.raises(ValidationError, match="trace has"):
            TraceArrivals([1, 2]).counts(3, np.random.default_rng(0))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            TraceArrivals([])

    def test_negative_entry_rejected(self):
        with pytest.raises(ValidationError):
            TraceArrivals([1, -1])
