"""Unit tests for Table I workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation import (
    ConstantCosts,
    DeterministicArrivals,
    WorkloadConfig,
)
from repro.simulation.workload import generate_many


class TestDefaults:
    def test_table1_values(self):
        config = WorkloadConfig.paper_default()
        assert config.num_slots == 50
        assert config.phone_rate == 6.0
        assert config.task_rate == 3.0
        assert config.mean_cost == pytest.approx(25.0)
        assert config.mean_active_length == 5
        assert config.task_value == 30.0

    def test_replace(self):
        config = WorkloadConfig.paper_default().replace(num_slots=80)
        assert config.num_slots == 80
        assert config.phone_rate == 6.0

    def test_to_dict_round_trip(self):
        config = WorkloadConfig.paper_default()
        assert WorkloadConfig(**config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(num_slots=0)
        with pytest.raises(ValidationError):
            WorkloadConfig(phone_rate=-1.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(mean_cost=0.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(mean_active_length=0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = WorkloadConfig.paper_default()
        a = config.generate(seed=9)
        b = config.generate(seed=9)
        assert a.profiles == b.profiles
        assert a.schedule == b.schedule

    def test_different_seeds_differ(self):
        config = WorkloadConfig.paper_default()
        assert config.generate(seed=1).profiles != config.generate(
            seed=2
        ).profiles

    def test_profiles_within_horizon(self):
        scenario = WorkloadConfig.paper_default().generate(seed=3)
        for profile in scenario.profiles:
            assert 1 <= profile.arrival <= profile.departure <= 50

    def test_tasks_within_horizon(self):
        scenario = WorkloadConfig.paper_default().generate(seed=3)
        for task in scenario.schedule:
            assert 1 <= task.slot <= 50
            assert task.value == 30.0

    def test_phone_count_near_rate(self):
        scenario = WorkloadConfig.paper_default().generate(seed=4)
        # 50 slots x λ=6: expect ~300 phones.
        assert 200 <= scenario.num_phones <= 400

    def test_task_count_near_rate(self):
        scenario = WorkloadConfig.paper_default().generate(seed=4)
        assert 100 <= scenario.num_tasks <= 200

    def test_active_length_mean(self):
        config = WorkloadConfig.paper_default().replace(num_slots=500)
        scenario = config.generate(seed=5)
        # Sample lengths away from the horizon edge (no clamping bias).
        lengths = [
            p.active_length
            for p in scenario.profiles
            if p.arrival <= 480
        ]
        assert np.mean(lengths) == pytest.approx(5.0, abs=0.4)

    def test_costs_match_distribution_mean(self):
        config = WorkloadConfig.paper_default().replace(num_slots=200)
        scenario = config.generate(seed=6)
        costs = [p.cost for p in scenario.profiles]
        assert np.mean(costs) == pytest.approx(25.0, rel=0.1)
        assert all(1.0 <= c <= 49.0 for c in costs)

    def test_metadata_records_parameters(self):
        scenario = WorkloadConfig.paper_default().generate(seed=7)
        metadata = scenario.metadata
        assert metadata["seed"] == 7
        assert metadata["num_slots"] == 50
        assert "UniformCosts" in metadata["cost_distribution"]

    def test_custom_processes(self):
        config = WorkloadConfig(
            num_slots=4,
            phone_rate=1.0,
            task_rate=1.0,
            mean_cost=5.0,
            mean_active_length=2,
            task_value=10.0,
        )
        scenario = config.generate(
            seed=0,
            phone_arrivals=DeterministicArrivals(2),
            task_arrivals=DeterministicArrivals(1),
            cost_distribution=ConstantCosts(5.0),
        )
        assert scenario.num_phones == 8
        assert scenario.schedule.counts == (1, 1, 1, 1)
        assert all(p.cost == pytest.approx(5.0) for p in scenario.profiles)

    def test_sweeping_task_rate_keeps_phone_population(self):
        """Independent streams: task-rate changes don't move phones."""
        base = WorkloadConfig.paper_default()
        a = base.generate(seed=11)
        b = base.replace(task_rate=8.0).generate(seed=11)
        assert a.profiles == b.profiles
        assert a.schedule != b.schedule


class TestGenerateMany:
    def test_one_scenario_per_seed(self):
        scenarios = generate_many(
            WorkloadConfig.paper_default().replace(num_slots=5), [1, 2, 3]
        )
        assert len(scenarios) == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValidationError):
            generate_many(WorkloadConfig.paper_default(), [])
