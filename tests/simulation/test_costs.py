"""Unit tests for cost distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation import ConstantCosts, ExponentialCosts, UniformCosts


class TestUniformCosts:
    def test_bounds_respected(self):
        samples = UniformCosts(2.0, 8.0).sample(
            1000, np.random.default_rng(0)
        )
        assert all(2.0 <= c <= 8.0 for c in samples)

    def test_mean_property(self):
        assert UniformCosts(2.0, 8.0).mean == 5.0

    def test_with_mean_paper_shape(self):
        dist = UniformCosts.with_mean(25.0)
        assert dist.low == 1.0
        assert dist.high == 49.0
        assert dist.mean == 25.0

    def test_with_mean_empirical(self):
        dist = UniformCosts.with_mean(25.0)
        samples = dist.sample(20000, np.random.default_rng(1))
        assert np.mean(samples) == pytest.approx(25.0, rel=0.03)

    def test_with_mean_below_one_degenerates(self):
        dist = UniformCosts.with_mean(0.5)
        assert dist.low == dist.high == 0.5

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            UniformCosts(5.0, 2.0)

    def test_zero_count(self):
        assert UniformCosts(1.0, 2.0).sample(0, np.random.default_rng(0)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            UniformCosts(1.0, 2.0).sample(-1, np.random.default_rng(0))


class TestConstantCosts:
    def test_all_equal(self):
        samples = ConstantCosts(7.0).sample(5, np.random.default_rng(0))
        assert samples == [7.0] * 5

    def test_mean(self):
        assert ConstantCosts(7.0).mean == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ConstantCosts(-1.0)


class TestExponentialCosts:
    def test_nonnegative(self):
        samples = ExponentialCosts(5.0).sample(
            1000, np.random.default_rng(0)
        )
        assert all(c >= 0.0 for c in samples)

    def test_mean_empirical(self):
        samples = ExponentialCosts(5.0).sample(
            20000, np.random.default_rng(1)
        )
        assert np.mean(samples) == pytest.approx(5.0, rel=0.05)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialCosts(0.0)
