"""The baseline-suppression file: load/validate/apply/write."""

from __future__ import annotations

import json

import pytest

from repro.analysis.flow.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules.base import LintViolation


def violation(code="REP013", path="src/a.py", symbol="a:f", line=3):
    return LintViolation(
        path=path,
        line=line,
        col=0,
        code=code,
        rule="unordered-reduction",
        message="msg",
        symbol=symbol,
    )


class TestLoad:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [violation()])
        entries = load_baseline(target)
        assert len(entries) == 1
        assert entries[0].key == ("REP013", "src/a.py", "a:f")
        assert entries[0].justification  # --write-baseline stamps one

    def test_missing_justification_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "entries": [
                        {
                            "code": "REP013",
                            "path": "src/a.py",
                            "symbol": "a:f",
                            "justification": "   ",
                        }
                    ],
                }
            )
        )
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(target)

    def test_wrong_schema_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": "nope/9", "entries": []}))
        with pytest.raises(BaselineError, match="schema"):
            load_baseline(target)

    def test_unreadable_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json")
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(target)


class TestApply:
    def test_split_fresh_suppressed_unused(self):
        known = violation()
        fresh = violation(code="REP011", symbol="a:g")
        entries = [
            BaselineEntry("REP013", "src/a.py", "a:f", "known quirk"),
            BaselineEntry("REP015", "src/b.py", "b:h", "stale entry"),
        ]
        new, suppressed, unused = apply_baseline([known, fresh], entries)
        assert new == [fresh]
        assert suppressed == [known]
        assert [entry.code for entry in unused] == ["REP015"]

    def test_symbol_match_survives_line_drift(self):
        entries = [BaselineEntry("REP013", "src/a.py", "a:f", "why")]
        moved = violation(line=999)
        new, suppressed, _ = apply_baseline([moved], entries)
        assert new == [] and suppressed == [moved]

    def test_empty_baseline_passes_everything_through(self):
        new, suppressed, unused = apply_baseline([violation()], [])
        assert len(new) == 1 and not suppressed and not unused
