"""The flow driver end-to-end: real tree, cache, noqa, baseline, REP000."""

from __future__ import annotations

import textwrap

from repro.analysis.flow import run_flow, write_baseline
from repro.analysis.flow.driver import build_graph


def write_tree(root, files):
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


BAD_REDUCTION = """
    def total(values):
        acc = 0.0
        for value in set(values):
            acc += value
        return acc
    """


class TestRealTree:
    def test_repo_is_flow_clean(self):
        """The acceptance gate: REP010–REP015 clean over src."""
        report = run_flow(baseline_path="lint-flow-baseline.json")
        assert report.violations == ()
        assert report.unused_baseline == ()
        assert report.modules > 50
        assert report.functions > 300

    def test_worker_entrypoints_discovered(self):
        from repro.analysis.flow.engine import FlowEngine

        graph, _ = build_graph("src")
        engine = FlowEngine(graph)
        entrypoints = set(engine.worker_entrypoints())
        assert "repro.experiments.parallel:run_repetition" in entrypoints
        assert "repro.auction.multi_round:_run_round" in entrypoints
        # The registry's memoised name check sits behind the fan-out.
        reachable = engine.worker_reachable()
        assert "repro.mechanisms.registry:create_mechanism" in reachable


class TestFixtureTree:
    def test_finding_reported_with_relative_context(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": BAD_REDUCTION})
        report = run_flow(root=tmp_path)
        assert [v.code for v in report.violations] == ["REP013"]
        assert report.violations[0].symbol == "pkg.m:total"

    def test_noqa_comment_suppresses(self, tmp_path):
        source = BAD_REDUCTION.replace(
            "for value in set(values):",
            "for value in set(values):  # repro: noqa-REP013 -- fixture",
        )
        write_tree(tmp_path, {"pkg/m.py": source})
        report = run_flow(root=tmp_path)
        assert report.violations == ()

    def test_syntax_error_becomes_rep000(self, tmp_path):
        write_tree(tmp_path, {"pkg/m.py": "def broken(:\n"})
        report = run_flow(root=tmp_path)
        assert [v.code for v in report.violations] == ["REP000"]

    def test_baseline_absorbs_and_reports_unused(self, tmp_path):
        write_tree(tmp_path, {"pkg/m.py": BAD_REDUCTION})
        first = run_flow(root=tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, first.violations)
        second = run_flow(root=tmp_path, baseline_path=baseline)
        assert second.violations == ()
        assert len(second.suppressed) == 1
        # Fix the finding: the baseline entry goes stale and is flagged.
        write_tree(
            tmp_path,
            {"pkg/m.py": BAD_REDUCTION.replace("set(values)", "sorted(values)")},
        )
        third = run_flow(root=tmp_path, baseline_path=baseline)
        assert third.violations == ()
        assert len(third.unused_baseline) == 1


class TestSummaryCache:
    def test_second_build_hits_cache(self, tmp_path):
        write_tree(
            tmp_path / "tree", {"pkg/a.py": BAD_REDUCTION, "pkg/b.py": "X = 1\n"}
        )
        cache = tmp_path / "cache"
        _, hits_cold = build_graph(tmp_path / "tree", cache_dir=cache)
        assert hits_cold == 0
        graph, hits_warm = build_graph(tmp_path / "tree", cache_dir=cache)
        assert hits_warm == 2
        assert set(graph.modules) == {"pkg.a", "pkg.b"}

    def test_edit_invalidates_only_that_module(self, tmp_path):
        write_tree(
            tmp_path / "tree", {"pkg/a.py": BAD_REDUCTION, "pkg/b.py": "X = 1\n"}
        )
        cache = tmp_path / "cache"
        build_graph(tmp_path / "tree", cache_dir=cache)
        write_tree(tmp_path / "tree", {"pkg/b.py": "X = 2\n"})
        _, hits = build_graph(tmp_path / "tree", cache_dir=cache)
        assert hits == 1

    def test_cached_results_match_uncached(self, tmp_path):
        write_tree(tmp_path / "tree", {"pkg/a.py": BAD_REDUCTION})
        cache = tmp_path / "cache"
        cold = run_flow(root=tmp_path / "tree", cache_dir=cache)
        warm = run_flow(root=tmp_path / "tree", cache_dir=cache)
        plain = run_flow(root=tmp_path / "tree")
        assert cold.violations == warm.violations == plain.violations
