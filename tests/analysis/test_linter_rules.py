"""Per-rule positive/negative fixtures for the AST linter.

Every rule gets at least one snippet it must flag and one it must not;
the engine-level behaviours (noqa suppression, syntax-error reporting,
path collection, reporters) are covered at the end.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    default_rules,
    get_rule,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.rules.contract import MechanismContractRule
from repro.analysis.rules.float_equality import NoFloatEqualityRule
from repro.analysis.rules.hygiene import (
    NoBareExceptRule,
    NoMutableDefaultRule,
)
from repro.analysis.rules.output import NoPrintRule
from repro.analysis.rules.purity import NoRunMutationRule
from repro.analysis.rules.randomness import NoGlobalRandomRule


def lint(source, rule, path="src/repro/fake.py"):
    return lint_source(textwrap.dedent(source), path=path, rules=[rule])


# ----------------------------------------------------------------------
# no-global-random
# ----------------------------------------------------------------------
class TestNoGlobalRandom:
    def test_stdlib_import_flagged(self):
        found = lint("import random\n", NoGlobalRandomRule())
        assert [v.rule for v in found] == ["no-global-random"]

    def test_stdlib_call_flagged(self):
        found = lint(
            """
            import random

            def pick(xs):
                return random.choice(xs)
            """,
            NoGlobalRandomRule(),
        )
        assert len(found) == 2  # the import and the call

    def test_np_random_seed_flagged(self):
        found = lint(
            """
            import numpy as np

            np.random.seed(42)
            """,
            NoGlobalRandomRule(),
        )
        assert len(found) == 1
        assert "np.random.seed" in found[0].message

    def test_legacy_np_random_draw_flagged(self):
        found = lint(
            """
            import numpy as np

            def noise():
                return np.random.uniform(0.0, 1.0)
            """,
            NoGlobalRandomRule(),
        )
        assert len(found) == 1

    def test_from_import_of_legacy_name_flagged(self):
        found = lint(
            "from numpy.random import uniform\n", NoGlobalRandomRule()
        )
        assert len(found) == 1

    def test_default_rng_allowed(self):
        found = lint(
            """
            import numpy as np
            from numpy.random import SeedSequence

            def make(seed):
                return np.random.default_rng(SeedSequence(seed))
            """,
            NoGlobalRandomRule(),
        )
        assert found == []

    def test_passed_in_generator_allowed(self):
        found = lint(
            """
            def draw(rng):
                return rng.uniform(0.0, 1.0)
            """,
            NoGlobalRandomRule(),
        )
        assert found == []


# ----------------------------------------------------------------------
# no-float-equality
# ----------------------------------------------------------------------
class TestNoFloatEquality:
    def test_money_vs_literal_flagged(self):
        found = lint(
            "assert outcome.payment(1) == 12.0\n", NoFloatEqualityRule()
        )
        assert [v.rule for v in found] == ["no-float-equality"]

    def test_money_vs_money_flagged(self):
        found = lint(
            "ok = claimed_welfare != true_welfare\n", NoFloatEqualityRule()
        )
        assert len(found) == 1
        assert "!=" in found[0].message

    def test_pytest_approx_allowed(self):
        found = lint(
            "assert bid.cost == pytest.approx(4.5)\n",
            NoFloatEqualityRule(),
        )
        assert found == []

    def test_epsilon_helper_allowed(self):
        found = lint(
            "ok = float_eq(total_payment, 12.0)\n", NoFloatEqualityRule()
        )
        assert found == []

    def test_string_comparison_allowed(self):
        found = lint(
            'if payment_rule == "paper":\n    pass\n',
            NoFloatEqualityRule(),
        )
        assert found == []

    def test_container_comparison_allowed(self):
        found = lint("assert payments == {}\n", NoFloatEqualityRule())
        assert found == []

    def test_non_money_names_allowed(self):
        found = lint("assert num_slots == 5\n", NoFloatEqualityRule())
        assert found == []

    def test_terminal_attribute_decides(self):
        # the *count* of a welfare series is an int, not money
        found = lint(
            "assert result.welfare_per_round.count == 3\n",
            NoFloatEqualityRule(),
        )
        assert found == []


# ----------------------------------------------------------------------
# no-run-mutation
# ----------------------------------------------------------------------
class TestNoRunMutation:
    def test_mutating_method_on_argument_flagged(self):
        found = lint(
            """
            class Bad(Mechanism):
                def run(self, bids, schedule, config=None):
                    bids.sort()
                    return None
            """,
            NoRunMutationRule(),
        )
        assert [v.rule for v in found] == ["no-run-mutation"]
        assert ".sort()" in found[0].message

    def test_rebinding_argument_flagged(self):
        found = lint(
            """
            class Bad(Mechanism):
                def run(self, bids, schedule, config=None):
                    bids = list(bids)
                    return None
            """,
            NoRunMutationRule(),
        )
        assert len(found) == 1
        assert "rebinds" in found[0].message

    def test_attribute_write_through_argument_flagged(self):
        found = lint(
            """
            class Bad(Mechanism):
                def run(self, bids, schedule, config=None):
                    schedule.tasks = []
                    return None
            """,
            NoRunMutationRule(),
        )
        assert len(found) == 1

    def test_item_write_through_argument_flagged(self):
        found = lint(
            """
            class Bad(Mechanism):
                def run(self, bids, schedule, config=None):
                    bids[0] = None
                    return None
            """,
            NoRunMutationRule(),
        )
        assert len(found) == 1

    def test_hidden_state_on_self_flagged(self):
        found = lint(
            """
            class Bad(Mechanism):
                def run(self, bids, schedule, config=None):
                    self._cache = list(bids)
                    return None
            """,
            NoRunMutationRule(),
        )
        assert len(found) == 1
        assert "hidden state" in found[0].message

    def test_pure_run_allowed(self):
        found = lint(
            """
            class Good(Mechanism):
                def run(self, bids, schedule, config=None):
                    ordered = sorted(bids, key=lambda b: b.cost)
                    allocation = {}
                    for bid in ordered:
                        allocation[bid.phone_id] = bid
                    return allocation
            """,
            NoRunMutationRule(),
        )
        assert found == []

    def test_non_mechanism_run_ignored(self):
        found = lint(
            """
            class Driver:
                def run(self, bids):
                    bids.sort()
            """,
            NoRunMutationRule(),
        )
        assert found == []


# ----------------------------------------------------------------------
# mechanism-contract
# ----------------------------------------------------------------------
_REGISTRY_STUB = "builtin = {RegisteredMechanism.name: RegisteredMechanism}"


class TestMechanismContract:
    def test_missing_attrs_flagged(self):
        found = lint(
            """
            class RegisteredMechanism(Mechanism):
                def run(self, bids, schedule, config=None):
                    return None
            """,
            MechanismContractRule(registry_source=_REGISTRY_STUB),
        )
        assert len(found) == 1
        assert "name, is_truthful, is_online" in found[0].message

    def test_unregistered_class_flagged(self):
        found = lint(
            """
            class OrphanMechanism(Mechanism):
                name = "orphan"
                is_truthful = False
                is_online = False

                def run(self, bids, schedule, config=None):
                    return None
            """,
            MechanismContractRule(registry_source=_REGISTRY_STUB),
        )
        assert len(found) == 1
        assert "registry" in found[0].message

    def test_compliant_class_passes(self):
        found = lint(
            """
            class RegisteredMechanism(Mechanism):
                name = "registered"
                is_truthful = True
                is_online = False

                def run(self, bids, schedule, config=None):
                    return None
            """,
            MechanismContractRule(registry_source=_REGISTRY_STUB),
        )
        assert found == []

    def test_abstract_subclass_ignored(self):
        found = lint(
            """
            class StillAbstract(Mechanism):
                \"\"\"No run() yet.\"\"\"
            """,
            MechanismContractRule(registry_source=_REGISTRY_STUB),
        )
        assert found == []

    def test_registration_not_required_outside_library(self):
        found = lint(
            """
            class OrphanMechanism(Mechanism):
                name = "orphan"
                is_truthful = False
                is_online = False

                def run(self, bids, schedule, config=None):
                    return None
            """,
            MechanismContractRule(registry_source=_REGISTRY_STUB),
            path="tests/fake_test.py",
        )
        assert found == []

    def test_shipped_tree_registry_is_readable(self):
        # the default registry source resolves to the installed module
        rule = MechanismContractRule()
        assert "register_mechanism" in rule.registry_source


# ----------------------------------------------------------------------
# no-bare-except / no-mutable-default
# ----------------------------------------------------------------------
class TestHygieneRules:
    def test_bare_except_flagged(self):
        found = lint(
            """
            try:
                risky()
            except:
                pass
            """,
            NoBareExceptRule(),
        )
        assert [v.rule for v in found] == ["no-bare-except"]

    def test_typed_except_allowed(self):
        found = lint(
            """
            try:
                risky()
            except ValueError:
                pass
            """,
            NoBareExceptRule(),
        )
        assert found == []

    def test_mutable_default_flagged(self):
        found = lint(
            "def f(x, acc=[]):\n    return acc\n", NoMutableDefaultRule()
        )
        assert [v.rule for v in found] == ["no-mutable-default"]

    def test_mutable_factory_default_flagged(self):
        found = lint(
            "def f(x, acc=dict()):\n    return acc\n",
            NoMutableDefaultRule(),
        )
        assert len(found) == 1

    def test_kwonly_mutable_default_flagged(self):
        found = lint(
            "def f(*, acc={}):\n    return acc\n", NoMutableDefaultRule()
        )
        assert len(found) == 1

    def test_none_default_allowed(self):
        found = lint(
            "def f(x, acc=None):\n    return acc or []\n",
            NoMutableDefaultRule(),
        )
        assert found == []


# ----------------------------------------------------------------------
# no-print (REP007)
# ----------------------------------------------------------------------
class TestNoPrint:
    def test_print_call_in_library_code_flagged(self):
        found = lint(
            "def report(x):\n    print(x)\n",
            NoPrintRule(),
        )
        assert [v.rule for v in found] == ["no-print"]
        assert found[0].code == "REP007"

    def test_multiple_prints_each_flagged(self):
        found = lint(
            "print(1)\nprint(2)\n",
            NoPrintRule(),
        )
        assert len(found) == 2

    def test_paths_outside_src_repro_exempt(self):
        for path in ("tests/test_x.py", "examples/demo.py", "setup.py"):
            found = lint("print('ok')\n", NoPrintRule(), path=path)
            assert found == [], path

    def test_shadowed_print_method_not_flagged(self):
        found = lint(
            "def f(doc):\n    doc.print()\n    return doc\n",
            NoPrintRule(),
        )
        assert found == []

    def test_noqa_by_code_suppresses(self):
        source = "print('cli')  # repro: noqa-REP007 -- output choke point\n"
        assert lint_source(
            source, path="src/repro/obs/console.py", rules=[NoPrintRule()]
        ) == []

    def test_noqa_by_name_suppresses(self):
        source = "print('cli')  # repro: noqa-no-print -- choke point\n"
        assert lint_source(
            source, path="src/repro/obs/console.py", rules=[NoPrintRule()]
        ) == []

    def test_library_tree_is_self_clean(self):
        # The rule must hold over the shipped sources: every print
        # under src/repro either went through the Console or carries an
        # explicit exemption.
        from repro.analysis.linter import lint_paths

        violations = lint_paths(["src/repro"], rules=[NoPrintRule()])
        assert violations == []


# ----------------------------------------------------------------------
# Engine behaviours
# ----------------------------------------------------------------------
class TestEngine:
    def test_noqa_suppresses_named_rule(self):
        source = (
            "a_cost == 1.0  # repro: noqa-no-float-equality -- exact by "
            "construction\n"
        )
        assert lint_source(source, rules=[NoFloatEqualityRule()]) == []

    def test_bare_noqa_suppresses_everything(self):
        source = "import random  # repro: noqa\n"
        assert lint_source(source, rules=[NoGlobalRandomRule()]) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        source = "import random  # repro: noqa-no-bare-except\n"
        found = lint_source(source, rules=[NoGlobalRandomRule()])
        assert len(found) == 1

    def test_syntax_error_reported_not_raised(self):
        found = lint_source("def broken(:\n")
        assert [v.rule for v in found] == ["syntax-error"]
        assert found[0].code == "REP000"

    def test_all_rules_have_unique_codes(self):
        codes = [rule.code for rule in ALL_RULES.values()]
        assert len(codes) == len(set(codes))
        assert len(ALL_RULES) >= 6

    def test_default_rules_instantiates_all(self):
        rules = default_rules()
        assert {rule.name for rule in rules} == set(ALL_RULES)

    def test_get_rule_unknown_name(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_rule("no-such-rule")


class TestReporters:
    def test_text_clean(self):
        assert "clean" in render_text([])

    def test_text_lists_and_tallies(self):
        found = lint_source("import random\n", path="pkg/mod.py")
        text = render_text(found)
        assert "pkg/mod.py:1" in text
        assert "no-global-random=1" in text

    def test_json_roundtrip(self):
        import json

        found = lint_source("import random\n", path="pkg/mod.py")
        payload = json.loads(render_json(found))
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "no-global-random"
        assert payload["violations"][0]["path"] == "pkg/mod.py"
