"""Display-path normalization and the noqa-justification rule (REP008)."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis.linter import display_path, lint_file, lint_paths, lint_source


class TestDisplayPath:
    def test_absolute_inside_cwd_becomes_relative(self):
        absolute = pathlib.Path.cwd() / "src" / "repro" / "cli.py"
        assert display_path(absolute) == "src/repro/cli.py"

    def test_relative_stays_relative(self):
        assert display_path("src/repro/cli.py") == "src/repro/cli.py"

    def test_outside_cwd_stays_absolute(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text("X = 1\n")
        assert display_path(target) == target.resolve().as_posix()

    def test_syntax_error_path_is_normalized(self, tmp_path, monkeypatch):
        """REP000 must report the same path shape as every other rule."""
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "pkg" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def broken(:\n")
        violations = lint_file(bad.resolve())
        assert [v.code for v in violations] == ["REP000"]
        assert violations[0].path == "pkg/broken.py"

    def test_lint_paths_reports_relative(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "pkg" / "ok.py"
        good.parent.mkdir()
        good.write_text("import numpy as np\n\n\ndef f():\n    np.random.seed(1)\n")
        violations = lint_paths([tmp_path.resolve()])
        assert violations
        assert all(v.path == "pkg/ok.py" for v in violations)


class TestNoqaJustification:
    def test_bare_named_noqa_flagged(self):
        violations = lint_source(
            "x = 1  # repro: noqa-no-print\n", path="t.py"
        )
        assert [v.code for v in violations] == ["REP008"]
        assert "no justification" in violations[0].message

    def test_justified_named_noqa_clean(self):
        violations = lint_source(
            "x = 1  # repro: noqa-no-print -- tooling output\n", path="t.py"
        )
        assert violations == []

    def test_blanket_noqa_flagged_even_with_justification(self):
        violations = lint_source(
            "x = 1  # repro: noqa -- because\n", path="t.py"
        )
        assert [v.code for v in violations] == ["REP008"]
        assert "blanket" in violations[0].message

    def test_blanket_noqa_cannot_suppress_itself(self):
        """The engine refuses blanket suppression for REP008 findings."""
        violations = lint_source("x = 1  # repro: noqa\n", path="t.py")
        assert [v.code for v in violations] == ["REP008"]

    def test_named_self_suppression_works(self):
        source = "x = 1  # repro: noqa, noqa-REP008 -- fixture exercising the blanket form\n"
        # A blanket noqa on a *different* line than a justified REP008
        # suppression: only the explicit named form silences the rule.
        violations = lint_source(
            "x = 1  # repro: noqa-REP008 -- demonstrating suppression syntax\n",
            path="t.py",
        )
        assert violations == []
        del source

    def test_noqa_inside_string_literal_not_flagged(self):
        source = textwrap.dedent(
            '''
            FIXTURE = """
            value = 1  # repro: noqa
            """
            '''
        )
        assert lint_source(source, path="t.py") == []

    def test_justified_suppression_still_suppresses_target_rule(self):
        source = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def f():\n"
            "    np.random.seed(1)  # repro: noqa-no-global-random -- fixture\n"
        )
        assert lint_source(source, path="t.py") == []
