"""JSON reporter schema: the contract downstream tooling relies on."""

from __future__ import annotations

import json

from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules.base import LintViolation


def violation(code="REP013", line=7, path="src/repro/metrics/o.py"):
    return LintViolation(
        path=path,
        line=line,
        col=4,
        code=code,
        rule="unordered-reduction",
        message="set iteration accumulates",
        symbol="repro.metrics.o:total",
    )


class TestRenderJson:
    def test_schema_keys(self):
        payload = json.loads(render_json([violation()]))
        assert set(payload) == {"count", "by_code", "violations", "suppressed"}
        assert payload["count"] == 1
        assert payload["by_code"] == {"REP013": 1}
        assert payload["suppressed"] == {"count": 0, "by_code": {}}

    def test_violation_fields_round_trip(self):
        original = violation()
        payload = json.loads(render_json([original]))
        rebuilt = LintViolation.from_dict(payload["violations"][0])
        assert rebuilt == original
        assert rebuilt.symbol == original.symbol
        assert rebuilt.line == original.line
        assert rebuilt.path == original.path

    def test_symbol_defaults_empty_on_legacy_payload(self):
        payload = violation().to_dict()
        del payload["symbol"]
        rebuilt = LintViolation.from_dict(payload)
        assert rebuilt.symbol == ""

    def test_suppressed_counts(self):
        rendered = render_json(
            [violation()],
            suppressed=[
                violation(code="REP011", line=1),
                violation(code="REP011", line=2),
                violation(code="REP015", line=3),
            ],
        )
        payload = json.loads(rendered)
        assert payload["suppressed"] == {
            "count": 3,
            "by_code": {"REP011": 2, "REP015": 1},
        }

    def test_output_is_stable(self):
        violations = [violation(), violation(code="REP011", line=1)]
        assert render_json(violations) == render_json(violations)

    def test_empty_report(self):
        payload = json.loads(render_json([]))
        assert payload["count"] == 0
        assert payload["violations"] == []


class TestRenderText:
    def test_clean_summary(self):
        assert render_text([]) == "lint: clean (0 violations)"

    def test_tally_by_rule(self):
        text = render_text([violation(), violation(line=9)])
        assert "unordered-reduction=2" in text
