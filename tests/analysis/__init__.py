"""Tests for the static/dynamic invariant analyzer (repro.analysis)."""
