"""Schedule-fuzzing determinism: the runtime twin of REP010–REP015.

``check_parallel_determinism`` executes one sweep point under permuted
worker counts, submission (chunk) orders, and matching backends, and
asserts every run's result rows pickle to the same bytes as the serial
reference.  The full acceptance matrix — ≥ 3 worker counts × the three
in-house backends × 3 submission orders, plus the shard-permutation
matrix against ``run_sharded_campaign`` — runs here unconditionally;
``pytest --schedule-fuzz`` additionally gates the whole suite on a
wider matrix at session start (see ``tests/conftest.py``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.sanitizer import check_parallel_determinism
from repro.errors import SanitizationError
from repro.simulation import WorkloadConfig


@pytest.fixture(scope="module")
def fuzz_workload():
    return WorkloadConfig(
        num_slots=5,
        phone_rate=3.0,
        task_rate=1.5,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=18.0,
    )


class TestScheduleFuzz:
    def test_full_matrix_is_byte_identical(self, fuzz_workload):
        """3 worker counts × 3 backends × 3 chunk orders, all identical.

        Plus the shard-permutation half: the workers=1 reference and
        five fuzzed (shard workers × submission order) combinations.
        """
        checked = check_parallel_determinism(
            workload=fuzz_workload,
            seeds=(0, 1, 2, 3),
            worker_counts=(1, 2, 3),
            backends=("numpy", "sparse", "python"),
            shard_worker_counts=(1, 2),
        )
        assert checked == 27 + 6

    def test_shard_matrix_alone(self, fuzz_workload):
        """The shard half runs (and passes) with the sweep half minimal."""
        checked = check_parallel_determinism(
            workload=fuzz_workload,
            seeds=(0,),
            worker_counts=(1,),
            backends=("numpy",),
            shard_worker_counts=(2,),
        )
        assert checked == 3 + 1 + 3

    def test_shard_matrix_skippable(self, fuzz_workload):
        """Empty shard_worker_counts skips the sharded half entirely."""
        checked = check_parallel_determinism(
            workload=fuzz_workload,
            seeds=(0,),
            worker_counts=(1,),
            backends=("numpy",),
            shard_worker_counts=(),
        )
        assert checked == 3

    def test_lost_repetition_detected(self, fuzz_workload, monkeypatch):
        """The seed-coverage guard trips before any byte comparison."""
        import repro.experiments.parallel as parallel_mod

        real = parallel_mod.run_repetitions_parallel

        def dropping(*args, **kwargs):
            return real(*args, **kwargs)[:-1]

        monkeypatch.setattr(
            parallel_mod, "run_repetitions_parallel", dropping
        )
        with pytest.raises(SanitizationError, match="lost repetitions"):
            check_parallel_determinism(
                workload=fuzz_workload,
                seeds=(0, 1),
                worker_counts=(2,),
                backends=("numpy",),
            )


class TestPaymentByteStability:
    """Regression for the defect the flow analyzer surfaced (REP013).

    The offline payment loops iterated ``set(allocation.values())``
    while filling the payments dict, so the dict's insertion order —
    and therefore the outcome's serialised bytes — depended on set hash
    order, which differs across backends (each inserts winners in its
    own discovery order) and across processes.  The loops now iterate
    ``sorted(...)``; these tests pin the observable consequences.
    """

    @pytest.mark.parametrize("mechanism_name", ["offline-vcg", "offline-greedy-vcg"])
    def test_payment_keys_inserted_in_sorted_order(
        self, fuzz_workload, mechanism_name
    ):
        from repro.mechanisms import create_mechanism
        from repro.simulation import SimulationEngine

        scenario = fuzz_workload.generate(seed=7)
        engine = SimulationEngine()
        result = engine.run(create_mechanism(mechanism_name), scenario)
        keys = list(result.outcome.payments)
        assert keys and keys == sorted(keys)

    def test_outcome_bytes_identical_across_backends(self, fuzz_workload):
        from repro.matching.backend import use_backend
        from repro.mechanisms import OfflineVCGMechanism
        from repro.simulation import SimulationEngine

        scenario = fuzz_workload.generate(seed=11)
        blobs = set()
        for backend in ("numpy", "sparse", "python"):
            with use_backend(backend):
                result = SimulationEngine().run(
                    OfflineVCGMechanism(), scenario
                )
            blobs.add(pickle.dumps(result.outcome.payments, protocol=4))
        assert len(blobs) == 1

    def test_total_overpayment_sums_in_sorted_order(self):
        """Winner-cost corrections sum in sorted, not hash, order.

        ``total_overpayment`` only reads ``outcome.winners`` and
        ``outcome.payments``, so a duck-typed stand-in keeps the fixture
        focused on the float-addition order being pinned.  The costs are
        chosen so the sum is order-sensitive in the last bit.
        """
        from types import SimpleNamespace

        from repro.metrics.overpayment import total_overpayment

        costs = {1: 0.1, 2: 0.2, 3: 0.3, 4: 0.7, 5: 0.9}
        # Winners in a deliberately scrambled order, none of them paid:
        # every one goes through the sorted correction loop.
        outcome = SimpleNamespace(winners=(5, 3, 1, 4, 2), payments={})

        class FakeScenario:
            def profile(self, phone_id):
                return SimpleNamespace(cost=costs[phone_id])

        expected = 0.0
        for phone_id in sorted(costs):
            expected -= costs[phone_id]
        assert total_overpayment(outcome, FakeScenario()) == expected
