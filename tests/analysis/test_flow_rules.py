"""Positive + negative fixtures for each interprocedural rule.

Every test builds a tiny in-memory module graph (module name → source),
runs the engine, and asserts on the codes that fire.  Module names are
chosen to land inside or outside each rule's package scope.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.modules import ModuleGraph
from repro.analysis.flow.rules import run_flow_rules
from repro.analysis.flow.summaries import summarize_module


def make_engine(sources: Dict[str, str]) -> FlowEngine:
    modules = {
        name: summarize_module(
            name, name.replace(".", "/") + ".py", textwrap.dedent(source)
        )
        for name, source in sources.items()
    }
    return FlowEngine(ModuleGraph(modules))


def codes_of(sources: Dict[str, str]) -> List[str]:
    return [v.code for v in run_flow_rules(make_engine(sources))]


WORKER_POOL = """
    from concurrent.futures import ProcessPoolExecutor
"""


class TestWorkerPickleSafety:
    def test_lambda_callable_flagged(self):
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(lambda x: x + 1, item) for item in items]
                    return [f.result() for f in futures]
                """
            }
        )
        assert "REP010" in codes

    def test_nested_function_callable_flagged(self):
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(items):
                    def work(item):
                        return item + 1

                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, item) for item in items]
                    return [f.result() for f in futures]
                """
            }
        )
        assert "REP010" in codes

    def test_lambda_argument_flagged(self):
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor

                def work(item, key):
                    return key(item)

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, item, lambda x: x) for item in items]
                    return [f.result() for f in futures]
                """
            }
        )
        assert "REP010" in codes

    def test_module_level_callable_clean(self):
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor

                def work(item):
                    return item + 1

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, item) for item in items]
                    return [f.result() for f in futures]
                """
            }
        )
        assert "REP010" not in codes

    def test_shared_memory_handle_by_value_flagged(self):
        """Submitting the live handle ships a second owner to the worker."""
        violations = run_flow_rules(
            make_engine(
                {
                    "app.fan": """
                    from concurrent.futures import ProcessPoolExecutor
                    from multiprocessing import shared_memory

                    def work(segment):
                        return bytes(segment.buf[:4])

                    def fan_out(payload):
                        segment = shared_memory.SharedMemory(create=True, size=len(payload))
                        with ProcessPoolExecutor() as pool:
                            future = pool.submit(work, segment)
                        return future.result()
                    """
                }
            )
        )
        flagged = [v for v in violations if v.code == "REP010"]
        assert flagged, "live SharedMemory handle crossing submit not flagged"
        assert "segment.name" in flagged[0].message

    def test_shared_memory_by_name_clean(self):
        """Passing segment.name and attaching worker-side is the discipline."""
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor
                from multiprocessing import shared_memory

                def work(segment_name):
                    segment = shared_memory.SharedMemory(name=segment_name)
                    try:
                        return bytes(segment.buf[:4])
                    finally:
                        segment.close()

                def fan_out(payload):
                    segment = shared_memory.SharedMemory(create=True, size=len(payload))
                    try:
                        with ProcessPoolExecutor() as pool:
                            future = pool.submit(work, segment.name)
                        return future.result()
                    finally:
                        segment.close()
                        segment.unlink()
                """
            }
        )
        assert "REP010" not in codes

    def test_direct_ctor_import_handle_flagged(self):
        """The bare-name ctor spelling resolves through the import map too."""
        codes = codes_of(
            {
                "app.fan": """
                from concurrent.futures import ProcessPoolExecutor
                from multiprocessing.shared_memory import SharedMemory

                def work(segment):
                    return segment.size

                def fan_out(n):
                    block = SharedMemory(create=True, size=n)
                    with ProcessPoolExecutor() as pool:
                        future = pool.submit(work, block)
                    return future.result()
                """
            }
        )
        assert "REP010" in codes


class TestWorkerMutableGlobal:
    WORKER = """
        from concurrent.futures import ProcessPoolExecutor
        from app.state import remember

        def work(item):
            remember(item)
            return item

        def fan_out(items):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(work, item) for item in items]
            return [f.result() for f in futures]
        """

    def test_cross_module_mutation_flagged(self):
        codes = codes_of(
            {
                "app.worker": self.WORKER,
                "app.state": """
                SEEN = set()

                def remember(item):
                    SEEN.add(item)
                """,
            }
        )
        assert "REP011" in codes

    def test_global_rebind_flagged(self):
        codes = codes_of(
            {
                "app.worker": self.WORKER,
                "app.state": """
                LAST = None

                def remember(item):
                    global LAST
                    LAST = item
                """,
            }
        )
        assert "REP011" in codes

    def test_unreachable_mutation_clean(self):
        codes = codes_of(
            {
                "app.state": """
                SEEN = set()

                def remember(item):
                    SEEN.add(item)
                """
            }
        )
        assert "REP011" not in codes

    def test_local_shadow_clean(self):
        codes = codes_of(
            {
                "app.worker": self.WORKER,
                "app.state": """
                SEEN = set()

                def remember(item):
                    SEEN = set()
                    SEEN.add(item)
                    return SEEN
                """,
            }
        )
        assert "REP011" not in codes


class TestRngStreamDiscipline:
    def test_ambient_rng_in_mechanism_flagged(self):
        codes = codes_of(
            {
                "repro.mechanisms.noisy": """
                import numpy as np

                def jitter(costs):
                    rng = np.random.default_rng()
                    return [cost + rng.normal() for cost in costs]
                """
            }
        )
        assert "REP012" in codes

    def test_global_reseed_in_faults_flagged(self):
        codes = codes_of(
            {
                "repro.faults.chaos": """
                import random

                def reseed(seed):
                    random.seed(seed)
                """
            }
        )
        assert "REP012" in codes

    def test_rng_argument_clean(self):
        codes = codes_of(
            {
                "repro.mechanisms.noisy": """
                def jitter(costs, rng):
                    return [cost + rng.normal() for cost in costs]
                """
            }
        )
        assert "REP012" not in codes

    def test_ambient_rng_outside_seeded_packages_clean(self):
        codes = codes_of(
            {
                "repro.experiments.scratch": """
                import numpy as np

                def jitter(costs):
                    rng = np.random.default_rng()
                    return [cost + rng.normal() for cost in costs]
                """
            }
        )
        assert "REP012" not in codes


class TestUnorderedReduction:
    def test_set_iteration_float_accumulation_flagged(self):
        codes = codes_of(
            {
                "app.metrics": """
                def total(values):
                    winners = set(values)
                    acc = 0.0
                    for value in winners:
                        acc += value
                    return acc
                """
            }
        )
        assert "REP013" in codes

    def test_set_iteration_dict_fill_flagged(self):
        codes = codes_of(
            {
                "app.metrics": """
                def pay(allocation):
                    payments = {}
                    for phone in set(allocation.values()):
                        payments[phone] = 1.0
                    return payments
                """
            }
        )
        assert "REP013" in codes

    def test_sorted_wrap_clean(self):
        codes = codes_of(
            {
                "app.metrics": """
                def pay(allocation):
                    payments = {}
                    for phone in sorted(set(allocation.values())):
                        payments[phone] = 1.0
                    return payments
                """
            }
        )
        assert "REP013" not in codes

    def test_membership_and_len_clean(self):
        codes = codes_of(
            {
                "app.metrics": """
                def count(values, winners):
                    chosen = set(winners)
                    total = 0.0
                    for value in values:
                        if value in chosen:
                            total += value
                    return total, len(chosen)
                """
            }
        )
        assert "REP013" not in codes


class TestTelemetryInInnerLoop:
    def test_counter_in_loop_on_hot_path_flagged(self):
        codes = codes_of(
            {
                "repro.mechanisms.hot": """
                from repro import obs

                def score(bids):
                    for bid in bids:
                        obs.counter("mechanism.bid.scored")
                """
            }
        )
        assert "REP014" in codes

    def test_span_outside_loop_clean(self):
        codes = codes_of(
            {
                "repro.mechanisms.hot": """
                from repro import obs

                def score(bids):
                    with obs.span("mechanism.score"):
                        for bid in bids:
                            pass
                """
            }
        )
        assert "REP014" not in codes

    def test_loop_telemetry_off_hot_path_clean(self):
        codes = codes_of(
            {
                "repro.experiments.loop": """
                from repro import obs

                def sweep(points):
                    for point in points:
                        obs.counter("sweep.point.done")
                """
            }
        )
        assert "REP014" not in codes


class TestUnguardedTimeRead:
    WORKER = """
        from concurrent.futures import ProcessPoolExecutor
        from app.clocked import measure

        def work(item):
            return measure(item)

        def fan_out(items):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(work, item) for item in items]
            return [f.result() for f in futures]
        """

    def test_worker_reachable_time_read_flagged(self):
        codes = codes_of(
            {
                "app.worker": self.WORKER,
                "app.clocked": """
                import time

                def measure(item):
                    return item, time.perf_counter()
                """,
            }
        )
        assert "REP015" in codes

    def test_environ_read_flagged(self):
        codes = codes_of(
            {
                "app.worker": self.WORKER,
                "app.clocked": """
                import os

                def measure(item):
                    return item, os.environ["HOME"]
                """,
            }
        )
        assert "REP015" in codes

    def test_unreachable_time_read_clean(self):
        codes = codes_of(
            {
                "app.clocked": """
                import time

                def measure(item):
                    return item, time.perf_counter()
                """
            }
        )
        assert "REP015" not in codes

    def test_clock_module_exempt(self):
        codes = codes_of(
            {
                "app.worker": """
                from concurrent.futures import ProcessPoolExecutor
                from repro.obs.clock import measure

                def work(item):
                    return measure(item)

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, item) for item in items]
                    return [f.result() for f in futures]
                """,
                "repro.obs.clock": """
                import time

                def measure(item):
                    return item, time.perf_counter()
                """,
            }
        )
        assert "REP015" not in codes


class TestEngineResolution:
    def test_method_dispatch_through_annotation(self):
        """A base-annotated call reaches subclass overrides."""
        engine = make_engine(
            {
                "app.base": """
                class Runner:
                    def run(self, item):
                        raise NotImplementedError
                """,
                "app.impl": """
                import time
                from app.base import Runner

                class TimedRunner(Runner):
                    def run(self, item):
                        return item, time.perf_counter()
                """,
                "app.worker": """
                from concurrent.futures import ProcessPoolExecutor
                from app.base import Runner

                def work(runner: Runner, item):
                    return runner.run(item)

                def fan_out(runner, items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(work, runner, item) for item in items]
                    return [f.result() for f in futures]
                """,
            }
        )
        reachable = engine.worker_reachable()
        assert "app.impl:TimedRunner.run" in reachable
        codes = [v.code for v in run_flow_rules(engine)]
        assert "REP015" in codes

    def test_symbol_names_findings(self):
        violations = run_flow_rules(
            make_engine(
                {
                    "app.metrics": """
                    def total(values):
                        acc = 0.0
                        for value in set(values):
                            acc += value
                        return acc
                    """
                }
            )
        )
        assert violations
        assert violations[0].symbol == "app.metrics:total"
