"""Tests for the runtime outcome sanitizer.

Two halves: hand-built pathological outcomes must be *caught* (one test
per check), and every mechanism in the registry must *pass* a sanitized
run on the paper's worked example.  The doctored-baseline test seeds an
IR violation inside a real mechanism and shows the wrapper raising at
the first bad run.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    SanitizedMechanism,
    Violation,
    sanitize_outcome,
)
from repro.errors import ExperimentError, SanitizationError
from repro.extensions.capabilities import CapabilityModel
from repro.mechanisms import OnlineGreedyMechanism, registry
from repro.model import AuctionOutcome, Bid, TaskSchedule
from repro.simulation.paper_example import (
    EXAMPLE_TASK_VALUE,
    paper_example_bids,
    paper_example_schedule,
)


def one_task_schedule(value: float = 10.0) -> TaskSchedule:
    return TaskSchedule.from_counts([1], value=value)


def bid(phone_id: int = 1, cost: float = 5.0, arrival: int = 1,
        departure: int = 1) -> Bid:
    return Bid(
        phone_id=phone_id, arrival=arrival, departure=departure, cost=cost
    )


class _DoctoredOutcome(AuctionOutcome):
    """An outcome whose *reported* state diverges from what it validated.

    ``AuctionOutcome.__init__`` rejects structurally infeasible inputs,
    so to exercise the sanitizer's feasibility and accounting checks we
    construct a valid outcome and then override the reported properties
    — exactly the shape of bug the sanitizer exists to catch (a record
    whose accessors disagree with the invariants).
    """

    def __init__(self, *args, allocation_override=None,
                 welfare_override=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._allocation_override = allocation_override
        self._welfare_override = welfare_override

    @property
    def allocation(self):
        if self._allocation_override is not None:
            return dict(self._allocation_override)
        return super().allocation

    @property
    def claimed_welfare(self):
        if self._welfare_override is not None:
            return self._welfare_override
        return super().claimed_welfare


def checks(violations):
    return [v.check for v in violations]


# ----------------------------------------------------------------------
# sanitize_outcome: each check fires on a hand-built bad outcome
# ----------------------------------------------------------------------
class TestFeasibilityChecks:
    def test_clean_outcome_has_no_violations(self):
        outcome = AuctionOutcome(
            bids=[bid()],
            schedule=one_task_schedule(),
            allocation={0: 1},
            payments={1: 6.0},
        )
        assert sanitize_outcome(outcome) == []

    def test_unknown_task_caught(self):
        outcome = _DoctoredOutcome(
            bids=[bid()],
            schedule=one_task_schedule(),
            allocation={},
            payments={},
            allocation_override={99: 1},
        )
        found = sanitize_outcome(outcome)
        assert "feasibility.unknown-task" in checks(found)
        assert found[0].task_id == 99

    def test_phone_overload_caught(self):
        schedule = TaskSchedule.from_counts([2], value=10.0)
        outcome = _DoctoredOutcome(
            bids=[bid(departure=1)],
            schedule=schedule,
            allocation={},
            payments={},
            allocation_override={0: 1, 1: 1},  # both tasks to phone 1
        )
        found = sanitize_outcome(outcome)
        assert "feasibility.phone-overload" in checks(found)

    def test_unknown_phone_caught(self):
        outcome = _DoctoredOutcome(
            bids=[bid()],
            schedule=one_task_schedule(),
            allocation={},
            payments={},
            allocation_override={0: 42},  # phone 42 never bid
        )
        found = sanitize_outcome(outcome)
        assert "feasibility.unknown-phone" in checks(found)

    def test_inactive_winner_caught(self):
        schedule = TaskSchedule.from_counts([0, 1], value=10.0)
        sleeper = bid(phone_id=1, arrival=1, departure=1)  # gone by slot 2
        awake = bid(phone_id=2, arrival=2, departure=2)
        outcome = _DoctoredOutcome(
            bids=[sleeper, awake],
            schedule=schedule,
            allocation={0: 2},
            payments={},
            allocation_override={0: 1},  # slot-2 task to the sleeper
        )
        found = sanitize_outcome(outcome)
        assert "feasibility.inactive-winner" in checks(found)


class TestPaymentAndWelfareChecks:
    def test_loser_payment_caught(self):
        losers_paid = AuctionOutcome(
            bids=[bid(phone_id=1), bid(phone_id=2, cost=7.0)],
            schedule=one_task_schedule(),
            allocation={0: 1},
            payments={1: 6.0, 2: 3.0},  # phone 2 lost
        )
        found = sanitize_outcome(losers_paid)
        assert checks(found) == ["payments.loser-paid"]
        assert found[0].phone_id == 2

    def test_ir_violation_caught_for_truthful_mechanism(self):
        underpaid = AuctionOutcome(
            bids=[bid(cost=5.0)],
            schedule=one_task_schedule(),
            allocation={0: 1},
            payments={1: 2.0},  # below the claimed cost
        )
        found = sanitize_outcome(
            underpaid, mechanism=OnlineGreedyMechanism()
        )
        assert checks(found) == ["ir.underpaid-winner"]
        assert found[0].phone_id == 1

    def test_ir_not_required_without_truthfulness_claim(self):
        underpaid = AuctionOutcome(
            bids=[bid(cost=5.0)],
            schedule=one_task_schedule(),
            allocation={0: 1},
            payments={1: 2.0},
        )
        # No mechanism context: the IR obligation does not apply.
        assert sanitize_outcome(underpaid) == []

    def test_welfare_mismatch_caught(self):
        cooked_books = _DoctoredOutcome(
            bids=[bid(cost=5.0)],
            schedule=one_task_schedule(value=10.0),
            allocation={0: 1},
            payments={1: 6.0},
            welfare_override=999.0,  # truth is 10 - 5 = 5
        )
        found = sanitize_outcome(cooked_books)
        assert checks(found) == ["welfare.accounting-mismatch"]
        assert "999" in found[0].message

    def test_violation_str_names_the_check(self):
        violation = Violation(check="ir.underpaid-winner", message="boom")
        assert str(violation) == "[ir.underpaid-winner] boom"


# ----------------------------------------------------------------------
# SanitizedMechanism wrapper
# ----------------------------------------------------------------------
class _UnderpayingGreedy(OnlineGreedyMechanism):
    """A doctored baseline: same allocation, payments halved.

    It still (falsely) claims ``is_truthful``, so the sanitizer must
    hold it to the IR obligation and catch the seeded violation.
    """

    def run(self, bids, schedule, config=None):
        outcome = super().run(bids, schedule, config)
        return AuctionOutcome(
            bids=outcome.bids,
            schedule=outcome.schedule,
            allocation=outcome.allocation,
            payments={
                phone: amount / 2.0
                for phone, amount in outcome.payments.items()
            },
        )


class TestSanitizedMechanism:
    def test_doctored_baseline_raises_at_first_bad_run(self):
        wrapped = SanitizedMechanism(_UnderpayingGreedy())
        with pytest.raises(SanitizationError) as excinfo:
            wrapped.run(paper_example_bids(), paper_example_schedule())
        assert excinfo.value.violations
        assert all(
            v.check == "ir.underpaid-winner"
            for v in excinfo.value.violations
        )

    def test_collect_mode_returns_outcome_and_records(self):
        wrapped = SanitizedMechanism(
            _UnderpayingGreedy(), on_violation="collect"
        )
        outcome = wrapped.run(
            paper_example_bids(), paper_example_schedule()
        )
        assert outcome.winners  # the outcome still comes back
        assert wrapped.collected_violations
        assert wrapped.collected_violations[0].check == (
            "ir.underpaid-winner"
        )

    def test_clean_mechanism_passes_through(self):
        wrapped = SanitizedMechanism(OnlineGreedyMechanism())
        outcome = wrapped.run(
            paper_example_bids(), paper_example_schedule()
        )
        assert outcome.claimed_welfare > 0.0

    def test_wrapper_is_transparent(self):
        inner = OnlineGreedyMechanism()
        wrapped = SanitizedMechanism(inner)
        assert wrapped.name == inner.name
        assert wrapped.is_truthful is inner.is_truthful
        assert wrapped.is_online is inner.is_online
        assert isinstance(wrapped, OnlineGreedyMechanism)
        assert wrapped.inner is inner
        # Mechanism-specific options forward through the wrapper.
        assert wrapped.payment_rule == inner.payment_rule

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_violation"):
            SanitizedMechanism(OnlineGreedyMechanism(), on_violation="log")


# ----------------------------------------------------------------------
# Registry integration
# ----------------------------------------------------------------------

#: Factory kwargs needed by mechanisms that take required arguments.
#: fixed-price must post a price above every paper-example cost so the
#: posted-price run stays individually rational.
_FACTORY_KWARGS = {
    "fixed-price": {"price": EXAMPLE_TASK_VALUE},
    "typed-offline-vcg": {"model": CapabilityModel()},
    "typed-online-greedy": {"model": CapabilityModel()},
}


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", registry.available_mechanisms())
    def test_every_registered_mechanism_passes_sanitized_run(self, name):
        mechanism = registry.create_mechanism(
            name, sanitize=True, **_FACTORY_KWARGS.get(name, {})
        )
        assert type(mechanism) is SanitizedMechanism
        outcome = mechanism.run(
            paper_example_bids(), paper_example_schedule()
        )
        assert sanitize_outcome(outcome, mechanism=mechanism.inner) == []

    def test_sanitize_flag_off_returns_bare_mechanism(self):
        mechanism = registry.create_mechanism(
            "online-greedy", sanitize=False
        )
        assert type(mechanism) is OnlineGreedyMechanism

    def test_suite_runs_with_sanitizer_enabled(self):
        # tests/conftest.py switches the process-wide default on for the
        # whole session; products therefore come wrapped by default.
        assert registry.sanitize_outcomes_enabled()
        mechanism = registry.create_mechanism("online-greedy")
        assert type(mechanism) is SanitizedMechanism

    def test_mis_keyed_registration_raises_with_both_names(self):
        registry.register_mechanism(
            "wrong-key", OnlineGreedyMechanism, replace=True
        )
        try:
            with pytest.raises(ExperimentError) as excinfo:
                registry.create_mechanism("wrong-key")
            message = str(excinfo.value)
            assert "wrong-key" in message
            assert "online-greedy" in message
        finally:
            registry._FACTORIES.pop("wrong-key", None)
            registry._NAME_CHECKED.discard("wrong-key")
