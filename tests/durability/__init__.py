"""Crash-consistency suite: journal, replay, and crash-fault injection.

CI rotates the crash-property base seed with the run number
(``--crash-seed``), so every run explores a fresh region of
crash-schedule space while any failure stays reproducible from the
printed seed.
"""
