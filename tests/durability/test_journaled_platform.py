"""The journaling platform wrapper and the platform lifecycle guards.

The write-ahead contract under test: every accepted command is
journaled *before* the platform mutates, and every **rejected** command
leaves both the platform and the journal exactly as they were.
"""

from __future__ import annotations

import pytest

from repro.auction.events import (
    BidSubmitted,
    RoundStarted,
    SlotClosed,
)
from repro.auction.platform import CrowdsourcingPlatform
from repro.durability import KIND_COMMAND, Journal, JournaledPlatform
from repro.errors import JournalError, MechanismError
from repro.model.bid import Bid


@pytest.fixture
def journal(tmp_path):
    with Journal(tmp_path / "journal") as journal:
        yield journal


@pytest.fixture
def platform(journal):
    return JournaledPlatform(journal, num_slots=3)


def _drive_to_finalize(platform):
    platform.submit_bid(Bid(phone_id=0, arrival=1, departure=3, cost=5.0))
    platform.submit_tasks(1, value=20.0)
    platform.advance_to(3)
    platform.close_slot()
    return platform.finalize()


class TestJournaledPlatform:
    def test_header_records_round_configuration(self, platform, journal):
        header = journal.records[0]
        assert header.kind == KIND_COMMAND
        assert isinstance(header.event, RoundStarted)
        assert header.event.num_slots == 3
        assert header.event.payment_rule == "paper"

    def test_commands_precede_their_derived_events(self, platform, journal):
        platform.submit_bid(
            Bid(phone_id=1, arrival=1, departure=2, cost=4.0)
        )
        kinds = [(r.kind, type(r.event).__name__) for r in journal.records]
        assert kinds[1] == (KIND_COMMAND, "BidSubmitted")
        assert ("event", "BidSubmitted") in kinds[2:]

    def test_close_slot_journals_derived_slot_closed(
        self, platform, journal
    ):
        platform.close_slot()
        derived = [
            r.event for r in journal.records if r.kind != KIND_COMMAND
        ]
        assert any(isinstance(e, SlotClosed) for e in derived)

    def test_empty_task_submission_is_not_journaled(self, platform, journal):
        before = journal.last_seq
        platform.submit_tasks(0, value=10.0)
        assert journal.last_seq == before

    def test_finalize_returns_platform_outcome(self, platform):
        outcome = _drive_to_finalize(platform)
        assert set(outcome.winners) == {0}
        assert platform.inner.current_slot == 3

    def test_delegates_read_surface_to_inner_platform(self, platform):
        assert platform.current_slot == 1
        assert platform.num_slots == 3
        with pytest.raises(AttributeError):
            platform.no_such_attribute

    def test_fresh_constructor_refuses_nonempty_journal(
        self, journal, platform
    ):
        with pytest.raises(JournalError, match="resume"):
            JournaledPlatform(journal, num_slots=3)

    def test_from_recovery_does_not_append_a_header(self, journal, platform):
        before = journal.last_seq
        wrapper = JournaledPlatform.from_recovery(
            journal, CrowdsourcingPlatform(num_slots=3)
        )
        assert journal.last_seq == before
        assert wrapper.journal is journal


class TestLifecycleGuards:
    """Misuse raises MechanismError and journals nothing."""

    def _assert_rejected(self, journal, platform, exercise, match):
        before_seq = journal.last_seq
        before_events = len(platform.inner.events)
        with pytest.raises(MechanismError, match=match):
            exercise()
        assert journal.last_seq == before_seq, (
            "a rejected command reached the write-ahead journal"
        )
        assert len(platform.inner.events) == before_events

    def test_dropout_after_finalize_rejected(self, journal, platform):
        _drive_to_finalize(platform)
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.report_dropout(0),
            match="finished",
        )

    def test_failure_report_after_finalize_rejected(self, journal, platform):
        _drive_to_finalize(platform)
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.report_task_failure(0),
            match="finished",
        )

    def test_backwards_advance_rejected(self, journal, platform):
        platform.advance_to(3)
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.advance_to(1),
            match="monotonically",
        )

    def test_advance_beyond_horizon_rejected(self, journal, platform):
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.advance_to(4),
            match="horizon",
        )

    def test_close_slot_after_round_end_rejected(self, journal, platform):
        platform.advance_to(3)
        platform.close_slot()  # the last slot: the round is finished
        self._assert_rejected(
            journal, platform, platform.close_slot, match="finished"
        )

    def test_double_finalize_rejected(self, journal, platform):
        _drive_to_finalize(platform)
        self._assert_rejected(
            journal, platform, platform.finalize, match="exactly one"
        )

    def test_duplicate_bid_rejected(self, journal, platform):
        bid = Bid(phone_id=5, arrival=1, departure=2, cost=3.0)
        platform.submit_bid(bid)
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.submit_bid(bid),
            match="already submitted",
        )

    def test_dropout_of_unknown_phone_rejected(self, journal, platform):
        self._assert_rejected(
            journal,
            platform,
            lambda: platform.report_dropout(404),
            match="never submitted",
        )

    def test_plain_platform_raises_the_same_errors(self):
        """The guards are the inner platform's, not the wrapper's."""
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.advance_to(3)
        platform.close_slot()
        platform.finalize()
        with pytest.raises(MechanismError):
            platform.report_dropout(0)
        with pytest.raises(MechanismError):
            platform.advance_to(1)
        with pytest.raises(MechanismError):
            platform.close_slot()


class TestBareEventsAreNotCommands:
    def test_apply_command_rejects_derived_events(self):
        from repro.durability import apply_command

        platform = CrowdsourcingPlatform(num_slots=3)
        with pytest.raises(JournalError, match="not a journal command"):
            apply_command(platform, SlotClosed(slot=1, pool_size=0))

    def test_bid_submitted_command_round_trips_the_bid(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        from repro.durability import apply_command

        apply_command(
            platform,
            BidSubmitted(
                slot=1, phone_id=3, arrival=1, departure=2, cost=7.5
            ),
        )
        assert platform.pool_size == 1
