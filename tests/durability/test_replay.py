"""Replay fidelity: the journal alone reconstructs the outcome."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import check_replay_fidelity
from repro.durability import (
    KIND_COMMAND,
    Journal,
    JournaledPlatform,
    execute_commands,
    replay_journal,
    resume_round,
    round_commands,
    scan_journal,
    segment_paths,
)
from repro.errors import (
    JournalError,
    ReplayDivergenceError,
    SanitizationError,
)
from repro.faults import FaultConfig, FaultInjector, run_with_faults
from repro.simulation import WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_slots=6,
    phone_rate=2.5,
    task_rate=1.5,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=20.0,
)

FAULTS = FaultConfig(
    dropout_prob=0.25,
    task_failure_prob=0.2,
    bid_delay_prob=0.15,
    bid_loss_prob=0.1,
)


def _journaled_round(tmp_path, seed=3, plan=None):
    scenario = WORKLOAD.generate(seed=seed)
    bids = scenario.truthful_bids()
    if plan is not None:
        from repro.faults.recovery import apply_bid_faults

        bids, _, _ = apply_bid_faults(list(bids), plan)
    commands = round_commands(bids, scenario, plan)
    journal = Journal(tmp_path / "journal")
    try:
        platform = JournaledPlatform(
            journal,
            num_slots=scenario.num_slots,
            max_reassignments=(
                3 if plan is None else plan.config.max_reassignments
            ),
        )
        outcome = execute_commands(platform, commands)
    finally:
        journal.close()
    return scenario, commands, outcome


class TestReplayFidelity:
    def test_replay_is_byte_identical(self, tmp_path):
        _, _, live = _journaled_round(tmp_path)
        replayed = replay_journal(tmp_path / "journal")
        assert replayed.finalized
        assert pickle.dumps(replayed.outcome) == pickle.dumps(live)

    def test_replay_of_faulty_round_is_byte_identical(self, tmp_path):
        scenario = WORKLOAD.generate(seed=9)
        plan = FaultInjector(FAULTS).plan(scenario, seed=9)
        _, _, live = _journaled_round(tmp_path, seed=9, plan=plan)
        replayed = replay_journal(tmp_path / "journal")
        assert pickle.dumps(replayed.outcome) == pickle.dumps(live)

    def test_replay_counts_commands_and_events(self, tmp_path):
        _, commands, _ = _journaled_round(tmp_path)
        replayed = replay_journal(tmp_path / "journal")
        assert replayed.commands_applied == len(commands)
        # Header + commands + derived events account for every record.
        assert (
            1 + replayed.commands_applied + replayed.events_verified
            == len(replayed.records)
        )

    def test_unfinalized_journal_replays_to_partial_state(self, tmp_path):
        scenario, commands, _ = _journaled_round(tmp_path, seed=5)
        # Re-journal without the finalize command.
        partial_dir = tmp_path / "partial"
        commands = round_commands(
            scenario.truthful_bids(),
            scenario,
            None,
            include_finalize=False,
        )
        with Journal(partial_dir) as journal:
            platform = JournaledPlatform(
                journal, num_slots=scenario.num_slots
            )
            execute_commands(platform, commands)
        replayed = replay_journal(partial_dir)
        assert not replayed.finalized
        assert replayed.outcome is None
        assert replayed.platform.finished

    def test_check_replay_fidelity_passes(self, tmp_path):
        scenario = WORKLOAD.generate(seed=4)
        outcome = check_replay_fidelity(scenario, tmp_path / "fidelity")
        assert outcome is not None

    def test_check_replay_fidelity_covers_faulty_rounds(self, tmp_path):
        scenario = WORKLOAD.generate(seed=4)
        plan = FaultInjector(FAULTS).plan(scenario, seed=7)
        check_replay_fidelity(
            scenario, tmp_path / "fidelity", fault_plan=plan
        )


class TestDivergenceDetection:
    def _tamper_record(self, directory, predicate, mutate):
        """Re-sign a record in place (valid chain, different payload)."""
        from repro.durability import decode_line
        from repro.durability.journal import make_record

        (segment,) = segment_paths(directory)
        lines = segment.read_text().splitlines()
        records = [decode_line(line) for line in lines]
        out, prev = [], None
        changed = False
        for record in records:
            payload = record.event.to_dict()
            if not changed and predicate(record):
                payload = mutate(dict(payload))
                changed = True
            from repro.auction.events import event_from_dict

            rebuilt = make_record(
                record.seq,
                prev if prev is not None else record.prev,
                record.kind,
                event_from_dict(payload),
            )
            out.append(rebuilt.to_line())
            prev = rebuilt.hash
        assert changed, "predicate matched no record"
        segment.write_text("\n".join(out) + "\n")

    def test_tampered_event_record_raises_divergence(self, tmp_path):
        _journaled_round(tmp_path)

        def is_derived_payment(record):
            return (
                record.kind != KIND_COMMAND
                and type(record.event).__name__ == "PaymentSettled"
            )

        def inflate(payload):
            payload["amount"] = payload["amount"] + 1.0
            return payload

        self._tamper_record(
            tmp_path / "journal", is_derived_payment, inflate
        )
        with pytest.raises(
            ReplayDivergenceError, match="diverges from replay"
        ) as exc:
            replay_journal(tmp_path / "journal")
        assert exc.value.sequence is not None

    def test_missing_header_raises(self, tmp_path):
        (segment,) = segment_paths(
            (_journaled_round(tmp_path), tmp_path / "journal")[1]
        )
        lines = segment.read_text().splitlines()
        segment.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(JournalError):
            replay_journal(tmp_path / "journal")

    def test_fidelity_check_reports_sanitization_error(
        self, tmp_path, monkeypatch
    ):
        """A divergent replay surfaces as SanitizationError."""
        import repro.durability.replay as replay_module

        scenario = WORKLOAD.generate(seed=4)

        real = replay_module.replay_records

        def corrupting(records):
            result = real(records)
            assert result.outcome is not None
            broken = pickle.loads(pickle.dumps(result.outcome))
            broken._payments[max(broken._payments, default=0)] = 1e9
            import dataclasses as dc

            return dc.replace(result, outcome=broken)

        monkeypatch.setattr(replay_module, "replay_records", corrupting)
        with pytest.raises(SanitizationError, match="not faithful"):
            check_replay_fidelity(scenario, tmp_path / "broken")


class TestResume:
    def test_resume_empty_journal_runs_fresh(self, tmp_path):
        scenario = WORKLOAD.generate(seed=6)
        commands = round_commands(scenario.truthful_bids(), scenario, None)
        with Journal(tmp_path / "journal") as journal:
            result = resume_round(
                journal, commands, num_slots=scenario.num_slots
            )
        assert result.outcome is not None
        assert result.replayed_commands == 0
        assert result.executed_commands == len(commands)

    def test_resume_config_mismatch_raises(self, tmp_path):
        scenario, commands, _ = _journaled_round(tmp_path, seed=5)
        with Journal(tmp_path / "journal") as journal:
            with pytest.raises(JournalError, match="config"):
                resume_round(
                    journal,
                    commands,
                    num_slots=scenario.num_slots,
                    payment_rule="exact",
                )

    def test_resume_command_prefix_mismatch_raises(self, tmp_path):
        scenario, commands, _ = _journaled_round(tmp_path, seed=5)
        other = WORKLOAD.generate(seed=999)
        foreign = round_commands(other.truthful_bids(), other, None)
        with Journal(tmp_path / "journal") as journal:
            with pytest.raises(ReplayDivergenceError):
                resume_round(
                    journal, foreign, num_slots=scenario.num_slots
                )


class TestJournaledDriversMatchPlainOnes:
    def test_run_with_faults_journal_dir_is_byte_identical(self, tmp_path):
        scenario = WORKLOAD.generate(seed=12)
        plain = run_with_faults(scenario, FAULTS, seed=12)
        journaled = run_with_faults(
            scenario, FAULTS, seed=12, journal_dir=tmp_path / "journal"
        )
        assert pickle.dumps(plain.outcome) == pickle.dumps(
            journaled.outcome
        )
        # The two FaultPlan instances are separate draws (FaultPlan does
        # not define value equality); compare everything else.
        import dataclasses as dc

        assert dc.replace(plain.report, plan=None) == dc.replace(
            journaled.report, plan=None
        )
        assert scan_journal(tmp_path / "journal").last_seq > 0

    def test_campaign_journal_dir_matches_plain_campaign(self, tmp_path):
        from repro.auction.multi_round import run_campaign
        from repro.mechanisms import create_mechanism

        mechanism = create_mechanism("online-greedy")
        plain = run_campaign(mechanism, WORKLOAD, num_rounds=2, seed=3)
        journaled = run_campaign(
            mechanism,
            WORKLOAD,
            num_rounds=2,
            seed=3,
            journal_dir=tmp_path / "campaign",
        )
        assert plain.total_welfare == pytest.approx(journaled.total_welfare)
        assert plain.total_payment == pytest.approx(journaled.total_payment)
        for p, j in zip(plain.rounds, journaled.rounds):
            assert set(p.outcome.winners) == set(j.outcome.winners)
            assert dict(p.outcome.payments) == dict(j.outcome.payments)
            assert dict(p.outcome.allocation) == dict(j.outcome.allocation)
        round_dirs = sorted(
            p.name for p in (tmp_path / "campaign").iterdir()
        )
        assert round_dirs == ["round-0000", "round-0001"]
        for name in round_dirs:
            replayed = replay_journal(tmp_path / "campaign" / name)
            assert replayed.finalized

    def test_faulty_campaign_journal_dir_is_byte_identical(self, tmp_path):
        from repro.auction.multi_round import run_campaign
        from repro.mechanisms import create_mechanism

        mechanism = create_mechanism("online-greedy")
        plain = run_campaign(
            mechanism, WORKLOAD, num_rounds=2, seed=3, fault_config=FAULTS
        )
        journaled = run_campaign(
            mechanism,
            WORKLOAD,
            num_rounds=2,
            seed=3,
            fault_config=FAULTS,
            journal_dir=tmp_path / "campaign",
        )
        assert pickle.dumps(plain) == pickle.dumps(journaled)

    def test_campaign_journal_gates(self, tmp_path):
        from repro.auction.multi_round import run_campaign
        from repro.errors import SimulationError
        from repro.mechanisms import create_mechanism

        with pytest.raises(SimulationError, match="online-greedy"):
            run_campaign(
                create_mechanism("offline-vcg"),
                WORKLOAD,
                num_rounds=1,
                journal_dir=tmp_path / "x",
            )
        with pytest.raises(SimulationError, match="workers"):
            run_campaign(
                create_mechanism("online-greedy"),
                WORKLOAD,
                num_rounds=1,
                workers=2,
                journal_dir=tmp_path / "x",
            )


class TestVerifyLogSurface:
    def test_scan_result_round_trips_to_json(self, tmp_path):
        """`verify-log` serialises the scan; keep its fields JSON-safe."""
        _journaled_round(tmp_path)
        scan = scan_journal(tmp_path / "journal")
        document = json.dumps(
            {
                "records": len(scan.records),
                "segments": [p.name for p in scan.segments],
                "last_seq": scan.last_seq,
                "torn": scan.torn,
                "truncated_bytes": scan.truncated_bytes,
            }
        )
        assert json.loads(document)["torn"] is False
