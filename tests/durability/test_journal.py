"""Unit tests for the write-ahead journal: format, chain, recovery."""

from __future__ import annotations

import json

import pytest

from repro.auction.events import PhoneDropped, SlotClosed
from repro.durability import (
    GENESIS_HASH,
    KIND_COMMAND,
    KIND_EVENT,
    Journal,
    decode_line,
    record_hash,
    scan_journal,
    segment_paths,
)
from repro.errors import JournalError


def _fill(journal, count, kind=KIND_COMMAND):
    return [
        journal.append(kind, PhoneDropped(slot=1, phone_id=i))
        for i in range(count)
    ]


def _segment(directory):
    (path,) = segment_paths(directory)
    return path


class TestRecordFormat:
    def test_first_record_chains_from_genesis(self, tmp_path):
        with Journal(tmp_path) as journal:
            record = journal.append(
                KIND_COMMAND, PhoneDropped(slot=2, phone_id=9)
            )
        assert record.seq == 1
        assert record.prev == GENESIS_HASH
        assert record.hash == record_hash(
            1, GENESIS_HASH, KIND_COMMAND, record.event.to_dict()
        )

    def test_lines_are_canonical_json(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(KIND_EVENT, SlotClosed(slot=1, pool_size=4))
        line = _segment(tmp_path).read_text().strip()
        document = json.loads(line)
        assert sorted(document) == ["event", "hash", "kind", "prev", "seq"]
        assert line == json.dumps(
            document, sort_keys=True, separators=(",", ":")
        )

    def test_decode_line_round_trips(self, tmp_path):
        with Journal(tmp_path) as journal:
            record = journal.append(
                KIND_COMMAND, PhoneDropped(slot=1, phone_id=5)
            )
        assert decode_line(record.to_line()) == record

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1,2,3]",
            '{"seq":1}',
        ],
    )
    def test_decode_line_rejects_garbage(self, line):
        with pytest.raises(JournalError):
            decode_line(line)

    def test_decode_line_rejects_tampered_payload(self, tmp_path):
        with Journal(tmp_path) as journal:
            record = journal.append(
                KIND_COMMAND, PhoneDropped(slot=1, phone_id=5)
            )
        document = json.loads(record.to_line())
        document["event"]["phone_id"] = 6  # bid tampering
        with pytest.raises(JournalError, match="checksum mismatch"):
            decode_line(json.dumps(document, sort_keys=True))


class TestAppendAndScan:
    def test_sequence_numbers_are_monotonic_from_one(self, tmp_path):
        with Journal(tmp_path) as journal:
            records = _fill(journal, 5)
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]

    def test_hash_chain_links_consecutive_records(self, tmp_path):
        with Journal(tmp_path) as journal:
            records = _fill(journal, 4)
        for previous, current in zip(records, records[1:]):
            assert current.prev == previous.hash

    def test_scan_reads_back_everything(self, tmp_path):
        with Journal(tmp_path) as journal:
            written = _fill(journal, 6)
        scan = scan_journal(tmp_path)
        assert list(scan.records) == written
        assert not scan.torn
        assert scan.last_seq == 6

    def test_reopen_resumes_the_chain(self, tmp_path):
        with Journal(tmp_path) as journal:
            first = _fill(journal, 3)
        with Journal(tmp_path) as journal:
            assert journal.last_seq == 3
            record = journal.append(
                KIND_COMMAND, PhoneDropped(slot=1, phone_id=99)
            )
        assert record.seq == 4
        assert record.prev == first[-1].hash

    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_all_fsync_policies_persist(self, tmp_path, fsync):
        with Journal(tmp_path / fsync, fsync=fsync) as journal:
            _fill(journal, 9)
        assert scan_journal(tmp_path / fsync).last_seq == 9

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal(tmp_path)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError, match="closed"):
            journal.append(KIND_COMMAND, PhoneDropped(slot=1, phone_id=0))


class TestRotation:
    def test_segments_rotate_by_size(self, tmp_path):
        with Journal(tmp_path, segment_bytes=256) as journal:
            _fill(journal, 20)
        segments = segment_paths(tmp_path)
        assert len(segments) > 1
        assert [p.name for p in segments] == sorted(p.name for p in segments)

    def test_scan_spans_segments(self, tmp_path):
        with Journal(tmp_path, segment_bytes=256) as journal:
            written = _fill(journal, 20)
        scan = scan_journal(tmp_path)
        assert list(scan.records) == written
        assert len(scan.segments) == len(segment_paths(tmp_path))

    def test_reopen_after_rotation_appends_to_last_segment(self, tmp_path):
        with Journal(tmp_path, segment_bytes=256) as journal:
            _fill(journal, 20)
            last_seq = journal.last_seq
        with Journal(tmp_path, segment_bytes=256) as journal:
            journal.append(KIND_COMMAND, PhoneDropped(slot=1, phone_id=77))
        assert scan_journal(tmp_path).last_seq == last_seq + 1


class TestRecovery:
    def _journal_with_tail(self, tmp_path, count=5):
        with Journal(tmp_path) as journal:
            _fill(journal, count)
        return _segment(tmp_path)

    def test_torn_final_record_is_truncated_on_open(self, tmp_path):
        segment = self._journal_with_tail(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-17])  # tear into the last record
        scan = scan_journal(tmp_path)
        assert scan.torn
        assert scan.last_seq == 4
        with Journal(tmp_path) as journal:
            assert journal.last_seq == 4
            journal.append(KIND_COMMAND, PhoneDropped(slot=1, phone_id=50))
        recovered = scan_journal(tmp_path)
        assert not recovered.torn
        assert recovered.last_seq == 5

    def test_missing_trailing_newline_counts_as_torn(self, tmp_path):
        """A final record without its newline would be corrupted by the
        next append; recovery must rewrite it."""
        segment = self._journal_with_tail(tmp_path)
        data = segment.read_bytes()
        assert data.endswith(b"\n")
        segment.write_bytes(data[:-1])
        scan = scan_journal(tmp_path)
        assert scan.torn
        assert scan.last_seq == 4
        with Journal(tmp_path) as journal:
            journal.append(KIND_COMMAND, PhoneDropped(slot=1, phone_id=50))
        assert scan_journal(tmp_path).last_seq == 5

    def test_duplicated_final_record_is_truncated(self, tmp_path):
        segment = self._journal_with_tail(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(lines) + lines[-1])
        scan = scan_journal(tmp_path)
        assert scan.torn
        assert scan.last_seq == 5
        with Journal(tmp_path):
            pass
        assert not scan_journal(tmp_path).torn

    def test_flipped_checksum_in_tail_is_truncated(self, tmp_path):
        segment = self._journal_with_tail(tmp_path)
        data = segment.read_bytes()
        marker = data.rindex(b'"hash":"')
        offset = marker + len(b'"hash":"')
        flipped = b"1" if data[offset : offset + 1] != b"1" else b"2"
        segment.write_bytes(data[:offset] + flipped + data[offset + 1 :])
        scan = scan_journal(tmp_path)
        assert scan.torn
        assert scan.last_seq == 4

    def test_mid_log_corruption_raises_with_sequence(self, tmp_path):
        segment = self._journal_with_tail(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        document = json.loads(lines[2])
        document["event"]["phone_id"] = 1234  # silent tamper, not a tear
        lines[2] = (
            json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="mid-log corruption") as exc:
            scan_journal(tmp_path)
        assert exc.value.sequence == 3
        # An open (even with repair) must refuse too: truncating back to
        # sequence 2 would silently discard good records 4 and 5.
        with pytest.raises(JournalError, match="mid-log corruption"):
            Journal(tmp_path)

    def test_repair_false_raises_on_torn_tail(self, tmp_path):
        segment = self._journal_with_tail(tmp_path)
        segment.write_bytes(segment.read_bytes()[:-17])
        with pytest.raises(JournalError, match="torn"):
            Journal(tmp_path, repair=False)
        # read-only scan still succeeds and reports the tear
        assert scan_journal(tmp_path).torn

    def test_empty_directory_is_a_valid_empty_journal(self, tmp_path):
        scan = scan_journal(tmp_path / "fresh")
        assert scan.records == ()
        assert scan.last_seq == 0
        assert scan.last_hash == GENESIS_HASH
