"""The crash-recovery property: kill anywhere, recover byte-identically.

For each seeded faulty round this suite re-runs the journaled round
once per journal-write index, simulating a process death *after every
single write* (cycling through all four corruption modes: clean kill,
torn final record, duplicated final record, flipped checksum byte),
then recovers from the journal on disk and resumes.  The resumed
:class:`~repro.model.AuctionOutcome` must be byte-identical (pickled
bytes) to the uncrashed run's — the durability layer's core guarantee.

CI rotates ``--crash-seed`` with the run number so every run explores a
fresh region of crash-schedule space.
"""

from __future__ import annotations

import pickle

import pytest

from repro.durability import (
    Journal,
    JournaledPlatform,
    execute_commands,
    resume_round,
    round_commands,
)
from repro.faults import (
    CRASH_MODES,
    CrashController,
    CrashPlan,
    FaultConfig,
    FaultInjector,
    SimulatedCrash,
    draw_crash_plan,
)
from repro.faults.recovery import apply_bid_faults
from repro.simulation import WorkloadConfig
from repro.utils.rng import RngStreams

#: Seeds per session; each seed exercises EVERY write index of its round.
NUM_SEEDS = 50

WORKLOAD = WorkloadConfig(
    num_slots=4,
    phone_rate=1.5,
    task_rate=1.0,
    mean_cost=10.0,
    mean_active_length=2,
    task_value=20.0,
)

FAULTS = FaultConfig(
    dropout_prob=0.3,
    task_failure_prob=0.25,
    bid_delay_prob=0.15,
    bid_loss_prob=0.1,
)


def _round_under_test(seed):
    """The faulty round's command stream and platform configuration."""
    scenario = WORKLOAD.generate(seed=seed)
    plan = FaultInjector(FAULTS).plan(scenario, seed=seed)
    bids, _, _ = apply_bid_faults(list(scenario.truthful_bids()), plan)
    commands = round_commands(bids, scenario, plan)
    return scenario, plan, commands


def _run_journaled(directory, scenario, plan, commands, crash_hook=None):
    journal = Journal(directory, crash_hook=crash_hook)
    try:
        platform = JournaledPlatform(
            journal,
            num_slots=scenario.num_slots,
            max_reassignments=plan.config.max_reassignments,
        )
        outcome = execute_commands(platform, commands)
    finally:
        journal.close()
    return outcome, journal


def _recover_and_resume(directory, scenario, plan, commands):
    with Journal(directory) as journal:  # open repairs any torn tail
        result = resume_round(
            journal,
            commands,
            num_slots=scenario.num_slots,
            max_reassignments=plan.config.max_reassignments,
        )
    return result.outcome


@pytest.fixture(scope="module", params=range(NUM_SEEDS))
def crash_round(request, crash_seed, tmp_path_factory):
    seed = crash_seed + request.param
    scenario, plan, commands = _round_under_test(seed)
    base_dir = tmp_path_factory.mktemp(f"crash-{seed}")
    baseline, journal = _run_journaled(
        base_dir / "baseline", scenario, plan, commands
    )
    assert baseline is not None
    return seed, scenario, plan, commands, len(journal.records), baseline


class TestCrashAfterEveryWrite:
    def test_recovery_is_byte_identical_at_every_write_index(
        self, crash_round, tmp_path
    ):
        seed, scenario, plan, commands, total_writes, baseline = crash_round
        expected = pickle.dumps(baseline)
        assert total_writes > len(commands)  # commands + derived events
        for index in range(1, total_writes + 1):
            mode = CRASH_MODES[index % len(CRASH_MODES)]
            directory = tmp_path / f"write-{index}"
            controller = CrashController(
                CrashPlan(
                    after_writes=index,
                    mode=mode,
                    torn_fraction=0.3 + 0.4 * (index % 2),
                    flip_offset=index % 64,
                )
            )
            with pytest.raises(SimulatedCrash):
                _run_journaled(
                    directory, scenario, plan, commands,
                    crash_hook=controller,
                )
            assert controller.fired, (
                f"seed {seed}: crash at write {index} never fired"
            )
            recovered = _recover_and_resume(
                directory, scenario, plan, commands
            )
            assert pickle.dumps(recovered) == expected, (
                f"seed {seed}: recovery after {mode} crash at write "
                f"{index}/{total_writes} diverged from the uncrashed run"
            )


class TestSeededCrashPlans:
    def test_drawn_plan_recovers_byte_identically(self, crash_round, tmp_path):
        seed, scenario, plan, commands, total_writes, baseline = crash_round
        crash_plan = draw_crash_plan(
            RngStreams(seed), total_writes=total_writes
        )
        directory = tmp_path / "drawn"
        with pytest.raises(SimulatedCrash):
            _run_journaled(
                directory,
                scenario,
                plan,
                commands,
                crash_hook=CrashController(crash_plan),
            )
        recovered = _recover_and_resume(directory, scenario, plan, commands)
        assert pickle.dumps(recovered) == pickle.dumps(baseline), (
            f"seed {seed}: drawn plan {crash_plan} diverged"
        )

    def test_draw_is_deterministic_per_seed(self, crash_seed):
        first = draw_crash_plan(RngStreams(crash_seed + 1), total_writes=40)
        second = draw_crash_plan(RngStreams(crash_seed + 1), total_writes=40)
        assert first == second
        assert 1 <= first.after_writes <= 40
        assert first.mode in CRASH_MODES

    def test_plan_round_trips_through_dict(self, crash_seed):
        plan = draw_crash_plan(RngStreams(crash_seed), total_writes=25)
        assert CrashPlan.from_dict(plan.to_dict()) == plan
