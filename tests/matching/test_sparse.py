"""Unit tests for the CSR sparse assignment solver.

Every query — full solve, column-removal repair, row-removal family —
is cross-checked against the dense :class:`AssignmentSolver` on the same
instance and against cold re-solves on reduced instances.
"""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching.solver import AssignmentSolver
from repro.matching.sparse import SparseAssignmentSolver, csr_from_dense


def _random_dense(rng, rows, cols, low=1.0, high=50.0):
    return rng.uniform(low, high, size=(rows, cols))


def _sparse_from(matrix, keep=None, dummy_cost=None):
    indptr, indices, data = csr_from_dense(matrix, keep=keep)
    rows, cols = np.asarray(matrix).shape
    return SparseAssignmentSolver(
        rows, cols, indptr, indices, data, dummy_cost=dummy_cost
    )


class TestConstruction:
    def test_csr_from_dense_roundtrip(self):
        matrix = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        indptr, indices, data = csr_from_dense(matrix)
        assert indptr.tolist() == [0, 3, 6]
        assert indices.tolist() == [0, 1, 2, 0, 1, 2]
        assert data.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_csr_from_dense_with_mask(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        keep = np.array([[True, False], [False, True]])
        indptr, indices, data = csr_from_dense(matrix, keep=keep)
        assert indptr.tolist() == [0, 1, 2]
        assert indices.tolist() == [0, 1]
        assert data.tolist() == [1.0, 4.0]

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(MatchingError, match="indptr"):
            SparseAssignmentSolver(
                2,
                2,
                np.array([0, 1]),
                np.array([0]),
                np.array([1.0]),
            )

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(MatchingError, match="monotone"):
            SparseAssignmentSolver(
                2,
                2,
                np.array([0, 2, 1]),
                np.array([0]),
                np.array([1.0]),
            )

    def test_rejects_unsorted_row_indices(self):
        with pytest.raises(MatchingError, match="strictly increasing"):
            SparseAssignmentSolver(
                1,
                3,
                np.array([0, 2]),
                np.array([2, 0]),
                np.array([1.0, 2.0]),
            )

    def test_rejects_duplicate_row_indices(self):
        with pytest.raises(MatchingError, match="strictly increasing"):
            SparseAssignmentSolver(
                1,
                3,
                np.array([0, 2]),
                np.array([1, 1]),
                np.array([1.0, 2.0]),
            )

    def test_rejects_out_of_range_column(self):
        with pytest.raises(MatchingError, match=r"\[0, 2\)"):
            SparseAssignmentSolver(
                1,
                2,
                np.array([0, 1]),
                np.array([2]),
                np.array([1.0]),
            )

    def test_rejects_non_finite_cost(self):
        with pytest.raises(MatchingError, match="finite"):
            SparseAssignmentSolver(
                1,
                2,
                np.array([0, 1]),
                np.array([0]),
                np.array([np.inf]),
            )

    def test_rejects_non_finite_dummy_cost(self):
        with pytest.raises(MatchingError, match="dummy_cost"):
            SparseAssignmentSolver(
                1,
                2,
                np.array([0, 1]),
                np.array([0]),
                np.array([1.0]),
                dummy_cost=np.nan,
            )

    def test_rejects_more_rows_than_cols_without_dummies(self):
        with pytest.raises(MatchingError, match="rows <= cols"):
            SparseAssignmentSolver(
                3,
                2,
                np.array([0, 2, 4, 6]),
                np.array([0, 1, 0, 1, 0, 1]),
                np.ones(6),
            )

    def test_edge_cost_lookup(self):
        solver = _sparse_from(
            np.array([[1.0, 2.0], [3.0, 4.0]]), dummy_cost=9.0
        )
        assert solver.edge_cost(0, 1) == 2.0  # repro: noqa-REP002 -- stored costs round-trip exactly
        assert solver.edge_cost(1, 0) == 3.0  # repro: noqa-REP002 -- stored costs round-trip exactly
        assert solver.edge_cost(0, 2) == 9.0  # repro: noqa-REP002 -- row 0's implicit dummy, exact
        with pytest.raises(MatchingError, match="not an edge"):
            solver.edge_cost(0, 3)  # row 1's dummy is private to row 1

    def test_shape_counts_implicit_dummies(self):
        solver = _sparse_from(np.ones((2, 3)), dummy_cost=1.0)
        assert solver.shape == (2, 5)
        assert solver.num_real_cols == 3
        bare = _sparse_from(np.ones((2, 3)))
        assert bare.shape == (2, 3)


class TestSolveEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_dense_total_on_full_matrices(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 9))
        cols = int(rng.integers(rows, 12))
        matrix = _random_dense(rng, rows, cols)
        dense = AssignmentSolver(matrix)
        sparse = _sparse_from(matrix)
        assignment_d, total_d = dense.solve()
        assignment_s, total_s = sparse.solve()
        assert total_s == pytest.approx(total_d, abs=1e-9)
        # Full continuous matrices have a unique optimum a.s.
        assert assignment_s.tolist() == assignment_d.tolist()

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_dense_with_explicit_dummies(self, seed):
        """Implicit per-row dummies == dense explicit dummy block."""
        rng = np.random.default_rng(100 + seed)
        rows = int(rng.integers(1, 8))
        cols = int(rng.integers(1, 8))
        matrix = _random_dense(rng, rows, cols)
        keep = rng.random((rows, cols)) < 0.5
        dummy = float(matrix.max()) + 1.0

        dense_matrix = np.full((rows, cols + rows), dummy)
        dense_matrix[:, :cols] = np.where(keep, matrix, dummy * 4)
        dense_total = AssignmentSolver(dense_matrix).solve()[1]

        sparse = _sparse_from(matrix, keep=keep, dummy_cost=dummy)
        total_s = sparse.solve()[1]
        # The dense stand-in prices missing edges at an unattractive
        # finite cost instead of removing them, so compare totals only
        # when the optimum uses no such edge.
        if total_s < dummy * 4:
            assert total_s == pytest.approx(dense_total, abs=1e-9)

    def test_empty_instance(self):
        solver = SparseAssignmentSolver(
            0, 0, np.array([0]), np.empty(0), np.empty(0)
        )
        assignment, total = solver.solve()
        assert assignment.tolist() == []
        assert total == 0.0

    def test_infeasible_raises(self):
        # Two rows, one shared column, no dummies.
        solver = SparseAssignmentSolver(
            2,
            2,
            np.array([0, 1, 2]),
            np.array([0, 0]),
            np.array([1.0, 2.0]),
        )
        with pytest.raises(MatchingError, match="no augmenting path"):
            solver.solve()

    def test_all_rows_park_on_dummies_when_cheapest(self):
        solver = _sparse_from(np.full((3, 3), 10.0), dummy_cost=1.0)
        assignment, total = solver.solve()
        assert assignment.tolist() == [3, 4, 5]
        assert total == pytest.approx(3.0)


class TestColumnRemoval:
    @pytest.mark.parametrize("seed", range(15))
    def test_total_without_column_matches_cold(self, seed):
        rng = np.random.default_rng(200 + seed)
        rows = int(rng.integers(2, 7))
        cols = int(rng.integers(2, 7))
        matrix = _random_dense(rng, rows, cols)
        dummy = float(matrix.max()) + 5.0
        solver = _sparse_from(matrix, dummy_cost=dummy)
        solver.solve()
        for column in range(cols):
            kept = [c for c in range(cols) if c != column]
            cold = _sparse_from(
                matrix[:, kept], dummy_cost=dummy
            ).solve()[1]
            warm = solver.total_cost_without_column(column)
            assert warm == pytest.approx(cold, abs=1e-9)

    @pytest.mark.parametrize("seed", range(15))
    def test_matching_without_column_is_optimal_and_avoids_it(self, seed):
        rng = np.random.default_rng(300 + seed)
        rows = int(rng.integers(2, 7))
        cols = int(rng.integers(2, 7))
        matrix = _random_dense(rng, rows, cols)
        dummy = float(matrix.max()) + 5.0
        solver = _sparse_from(matrix, dummy_cost=dummy)
        solver.solve()
        for column in range(cols):
            repaired = solver.matching_without_column(column)
            assert column not in repaired.tolist()
            repaired_cost = sum(
                solver.edge_cost(row, int(col))
                for row, col in enumerate(repaired)
            )
            expected = solver.total_cost_without_column(column)
            assert repaired_cost == pytest.approx(expected, abs=1e-9)
            # Non-mutating: the cached optimum is untouched.
            assert solver.total_cost() == pytest.approx(
                solver.solve()[1]
            )

    def test_unmatched_column_removal_is_free(self):
        matrix = np.array([[1.0, 50.0, 60.0]])
        solver = _sparse_from(matrix, dummy_cost=100.0)
        solver.solve()
        assert solver.total_cost_without_column(1) == solver.total_cost()  # repro: noqa-REP002 -- unmatched removal changes nothing, exactly
        assert (
            solver.matching_without_column(1).tolist()
            == solver.row_to_col().tolist()
        )

    def test_column_out_of_range(self):
        solver = _sparse_from(np.ones((1, 2)), dummy_cost=5.0)
        with pytest.raises(MatchingError, match="outside"):
            solver.total_cost_without_column(99)

    def test_requires_dummies_when_square(self):
        solver = _sparse_from(np.ones((2, 2)))
        with pytest.raises(MatchingError, match="every column is needed"):
            solver.total_cost_without_column(0)


class TestRowRemoval:
    @pytest.mark.parametrize("seed", range(15))
    def test_row_removal_family_matches_cold(self, seed):
        rng = np.random.default_rng(400 + seed)
        rows = int(rng.integers(2, 7))
        cols = int(rng.integers(2, 7))
        matrix = _random_dense(rng, rows, cols)
        dummy = float(matrix.max()) + 5.0
        solver = _sparse_from(matrix, dummy_cost=dummy)
        solver.solve()
        for row in range(rows):
            kept = [r for r in range(rows) if r != row]
            cold = _sparse_from(
                matrix[kept, :], dummy_cost=dummy
            ).solve()[1]
            assert solver.total_cost_without_row(row) == pytest.approx(
                cold, abs=1e-9
            )
            assignment, total = solver.resolve_without_row(row)
            assert total == pytest.approx(cold, abs=1e-9)
            assert assignment[row] == -1

    @pytest.mark.parametrize("seed", range(10))
    def test_sequential_delete_row_stays_exact(self, seed):
        rng = np.random.default_rng(500 + seed)
        rows, cols = 6, 6
        matrix = _random_dense(rng, rows, cols)
        dummy = float(matrix.max()) + 5.0
        solver = _sparse_from(matrix, dummy_cost=dummy)
        solver.solve()
        alive = list(range(rows))
        order = rng.permutation(rows)[: rows - 1]
        for row in order:
            alive.remove(int(row))
            total = solver.delete_row(int(row))
            cold = _sparse_from(
                matrix[alive, :], dummy_cost=dummy
            ).solve()[1]
            assert total == pytest.approx(cold, abs=1e-9)
            # Repairs after a deletion still answer exactly (the stale
            # duals are refreshed lazily).
            column = int(rng.integers(cols))
            kept = [c for c in range(cols) if c != column]
            cold_col = _sparse_from(
                matrix[np.ix_(alive, kept)], dummy_cost=dummy
            ).solve()[1]
            assert solver.total_cost_without_column(
                column
            ) == pytest.approx(cold_col, abs=1e-9)

    def test_delete_row_twice_raises(self):
        solver = _sparse_from(np.ones((2, 2)), dummy_cost=5.0)
        solver.delete_row(0)
        with pytest.raises(MatchingError, match="already deleted"):
            solver.delete_row(0)
        assert solver.num_active_rows == 1
