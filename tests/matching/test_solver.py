"""Unit tests for the vectorised AssignmentSolver and its repair query."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching.hungarian import solve_assignment_min
from repro.matching.solver import AssignmentSolver


def _random_cost(rng, rows, cols):
    return rng.uniform(0.0, 10.0, size=(rows, cols))


class TestSolve:
    def test_matches_python_reference_small(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            rows = int(rng.integers(1, 6))
            cols = int(rng.integers(rows, rows + 5))
            cost = _random_cost(rng, rows, cols)
            _, fast_total = AssignmentSolver(cost).solve()
            _, ref_total = solve_assignment_min(cost.tolist())
            assert fast_total == pytest.approx(ref_total)

    def test_matches_scipy_larger(self):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(1)
        for _ in range(5):
            cost = _random_cost(rng, 40, 55)
            _, total = AssignmentSolver(cost).solve()
            rows, cols = scipy_opt.linear_sum_assignment(cost)
            assert total == pytest.approx(float(cost[rows, cols].sum()))

    def test_assignment_structure(self):
        rng = np.random.default_rng(2)
        cost = _random_cost(rng, 6, 9)
        row_to_col, total = AssignmentSolver(cost).solve()
        assert len(row_to_col) == 6
        assert len(set(row_to_col.tolist())) == 6  # distinct columns
        assert total == pytest.approx(
            float(sum(cost[i, int(j)] for i, j in enumerate(row_to_col)))
        )

    def test_solve_cached(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        solver = AssignmentSolver(cost)
        first = solver.solve()
        second = solver.solve()
        assert np.array_equal(first[0], second[0])
        assert first[1] == second[1]

    def test_negative_costs(self):
        cost = np.array([[-3.0, 1.0], [1.0, -3.0]])
        _, total = AssignmentSolver(cost).solve()
        assert total == pytest.approx(-6.0)

    def test_rows_gt_cols_rejected(self):
        with pytest.raises(MatchingError, match="rows <= cols"):
            AssignmentSolver(np.zeros((3, 2)))

    def test_non_finite_rejected(self):
        with pytest.raises(MatchingError, match="finite"):
            AssignmentSolver(np.array([[np.inf, 1.0]]))

    def test_non_2d_rejected(self):
        with pytest.raises(MatchingError, match="2-D"):
            AssignmentSolver(np.zeros(3))

    def test_input_matrix_copied(self):
        cost = np.array([[1.0, 2.0], [2.0, 1.0]])
        solver = AssignmentSolver(cost)
        cost[0, 0] = 99.0
        _, total = solver.solve()
        assert total == pytest.approx(2.0)


class TestRepair:
    """total_cost_without_column must equal a full re-solve."""

    def test_against_full_resolve_random(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            rows = int(rng.integers(2, 8))
            cols = rows + int(rng.integers(1, 6))
            cost = _random_cost(rng, rows, cols)
            solver = AssignmentSolver(cost)
            solver.solve()
            for col in range(cols):
                repaired = solver.total_cost_without_column(col)
                reduced = np.delete(cost, col, axis=1)
                _, expected = AssignmentSolver(reduced).solve()
                assert repaired == pytest.approx(expected), (
                    f"col {col} of\n{cost}"
                )

    def test_unmatched_column_is_free(self):
        cost = np.array([[0.0, 5.0, 9.0]])
        solver = AssignmentSolver(cost)
        _, total = solver.solve()
        assert total == 0.0
        # Column 2 is unmatched; removing it changes nothing.
        assert solver.total_cost_without_column(2) == pytest.approx(0.0)

    def test_repair_does_not_mutate_state(self):
        rng = np.random.default_rng(4)
        cost = _random_cost(rng, 5, 8)
        solver = AssignmentSolver(cost)
        _, total_before = solver.solve()
        solver.total_cost_without_column(0)
        solver.total_cost_without_column(3)
        _, total_after = solver.solve()
        assert total_before == total_after

    def test_column_out_of_range(self):
        solver = AssignmentSolver(np.zeros((1, 2)))
        with pytest.raises(MatchingError, match="outside"):
            solver.total_cost_without_column(2)

    def test_square_matrix_removal_rejected(self):
        solver = AssignmentSolver(np.zeros((2, 2)))
        with pytest.raises(MatchingError, match="dummy columns"):
            solver.total_cost_without_column(0)

    def test_repair_with_ties(self):
        # Several equal-cost optima; repair must still be exact.
        cost = np.array(
            [
                [1.0, 1.0, 1.0, 0.0],
                [1.0, 1.0, 1.0, 0.0],
                [1.0, 1.0, 1.0, 0.0],
            ]
        )
        solver = AssignmentSolver(cost)
        solver.solve()
        for col in range(4):
            reduced = np.delete(cost, col, axis=1)
            _, expected = AssignmentSolver(reduced).solve()
            assert solver.total_cost_without_column(col) == pytest.approx(
                expected
            )
