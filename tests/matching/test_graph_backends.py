"""Backend dispatch and gating tests for the assignment graph.

Covers the ``auto`` density rule, explicit overrides, the scipy
cross-check backend (gracefully gated when scipy is absent), and the
``compatible`` callback on the sparse path.
"""

import numpy as np
import pytest

import repro.matching.graph as graph_module
from repro.errors import MatchingError
from repro.matching import (
    AVAILABLE_BACKENDS,
    max_weight_matching,
    require_backend_available,
    scipy_available,
    set_default_backend,
    use_backend,
)
from repro.matching.graph import TaskAssignmentGraph
from repro.model.bid import Bid
from repro.model.task import TaskSchedule
from repro.simulation.workload import WorkloadConfig

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed ([perf] extra)"
)


def _small_instance():
    scenario = WorkloadConfig(num_slots=12).generate(seed=3)
    return scenario.truthful_bids(), scenario.schedule


class TestRegistry:
    def test_available_backends(self):
        assert AVAILABLE_BACKENDS == (
            "auto",
            "numpy",
            "sparse",
            "scipy",
            "python",
        )

    def test_default_backend_is_auto(self):
        assert graph_module.resolve_backend(None) == "auto"

    def test_unknown_backend_rejected(self):
        bids, schedule = _small_instance()
        with pytest.raises(MatchingError, match="unknown matching backend"):
            TaskAssignmentGraph(
                schedule, bids, backend="fortran"
            ).solver_backend
        with pytest.raises(MatchingError, match="unknown matching backend"):
            set_default_backend("fortran")
        with pytest.raises(MatchingError, match="unknown matching backend"):
            require_backend_available("fortran")


class TestAutoDispatch:
    def test_small_instance_resolves_dense(self):
        bids, schedule = _small_instance()
        graph = TaskAssignmentGraph(schedule, bids)
        assert graph.solver_backend == "numpy"

    def test_explicit_override_wins(self):
        bids, schedule = _small_instance()
        assert (
            TaskAssignmentGraph(
                schedule, bids, backend="sparse"
            ).solver_backend
            == "sparse"
        )
        assert (
            TaskAssignmentGraph(
                schedule, bids, backend="python"
            ).solver_backend
            == "python"
        )

    def test_session_default_applies_when_unset(self):
        bids, schedule = _small_instance()
        with use_backend("sparse"):
            assert (
                TaskAssignmentGraph(schedule, bids).solver_backend
                == "sparse"
            )
        assert TaskAssignmentGraph(schedule, bids).solver_backend == "numpy"

    def test_large_sparse_instance_resolves_sparse(self, monkeypatch):
        # Shrink the size threshold so a 30-slot instance counts as
        # city-scale; the dispatch rule itself is what's under test.
        scenario = WorkloadConfig(num_slots=30).generate(seed=3)
        bids, schedule = scenario.truthful_bids(), scenario.schedule
        probe = TaskAssignmentGraph(schedule, bids)
        monkeypatch.setattr(graph_module, "AUTO_SPARSE_MIN_CELLS", 1)
        assert probe.edge_density <= graph_module.AUTO_SPARSE_MAX_DENSITY
        graph = TaskAssignmentGraph(schedule, bids)
        assert graph.solver_backend == "sparse"

    def test_dense_instance_stays_dense_despite_size(self, monkeypatch):
        monkeypatch.setattr(graph_module, "AUTO_SPARSE_MIN_CELLS", 1)
        schedule = TaskSchedule.from_counts([2, 2], value=30.0)
        bids = [
            Bid(phone_id=i, arrival=1, departure=2, cost=10.0 + i)
            for i in range(4)
        ]
        graph = TaskAssignmentGraph(schedule, bids)
        assert graph.edge_density == 1.0
        assert graph.solver_backend == "numpy"

    def test_auto_thresholds_hold_paper_scale_on_dense(self):
        scenario = WorkloadConfig(num_slots=80).generate(seed=11)
        graph = TaskAssignmentGraph(
            scenario.schedule, scenario.truthful_bids()
        )
        assert graph.solver_backend == "numpy"


class TestScipyGating:
    def test_missing_scipy_raises_matching_error(self, monkeypatch):
        import repro.matching.scipy_backend as scipy_backend

        def broken_load():
            raise MatchingError(
                "matching backend 'scipy' requires scipy, which is not "
                "installed; install the perf extra"
            )

        monkeypatch.setattr(scipy_backend, "_load_scipy", broken_load)
        bids, schedule = _small_instance()
        with pytest.raises(MatchingError, match="perf extra"):
            TaskAssignmentGraph(
                schedule, bids, backend="scipy"
            ).solver_backend

    @needs_scipy
    def test_scipy_backend_matches_welfare(self):
        bids, schedule = _small_instance()
        _, expected = TaskAssignmentGraph(
            schedule, bids, backend="numpy"
        ).solve()
        allocation, welfare = TaskAssignmentGraph(
            schedule, bids, backend="scipy"
        ).solve()
        assert welfare == pytest.approx(expected, abs=1e-9)
        assert allocation  # something was actually matched

    @needs_scipy
    def test_scipy_welfare_without_phone_matches_cold(self):
        bids, schedule = _small_instance()
        graph = TaskAssignmentGraph(schedule, bids, backend="scipy")
        allocation, _ = graph.solve()
        phone = next(iter(allocation.values()))
        assert graph.welfare_without_phone(phone) == pytest.approx(
            graph.solve(exclude_phone=phone)[1], abs=1e-9
        )

    @needs_scipy
    def test_max_weight_matching_scipy_total(self):
        rng = np.random.default_rng(5)
        weights = rng.uniform(-5.0, 20.0, size=(6, 9)).tolist()
        expected = max_weight_matching(weights, backend="numpy")
        via_scipy = max_weight_matching(weights, backend="scipy")
        assert via_scipy.total_weight == pytest.approx(
            expected.total_weight, abs=1e-9
        )


class TestSparseGraphPath:
    def test_compatible_callback_on_sparse_backend(self):
        schedule = TaskSchedule.from_counts([1, 1], value=30.0)
        bids = [
            Bid(phone_id=0, arrival=1, departure=2, cost=5.0),
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
        ]
        evaluated = []

        def compatible(task, bid):
            evaluated.append((task.task_id, bid.phone_id))
            return bid.phone_id == 0

        graph = TaskAssignmentGraph(
            schedule, bids, compatible=compatible, backend="sparse"
        )
        allocation, _ = graph.solve()
        assert set(allocation.values()) == {0}
        # Evaluated only on interval-active pairs — here all four.
        assert sorted(evaluated) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_compatible_skips_interval_inactive_pairs(self):
        schedule = TaskSchedule.from_counts([1, 0, 1], value=30.0)
        bids = [
            Bid(phone_id=0, arrival=1, departure=1, cost=5.0),
            Bid(phone_id=1, arrival=3, departure=3, cost=5.0),
        ]
        evaluated = []

        def compatible(task, bid):
            evaluated.append((task.slot, bid.phone_id))
            return True

        TaskAssignmentGraph(schedule, bids, compatible=compatible)
        # Phone 0 is active only in slot 1, phone 1 only in slot 3: the
        # two cross pairs are never evaluated.
        assert sorted(evaluated) == [(1, 0), (3, 1)]

    def test_exclude_phone_inherits_backend(self):
        bids, schedule = _small_instance()
        graph = TaskAssignmentGraph(schedule, bids, backend="sparse")
        allocation, _ = graph.solve()
        phone = next(iter(allocation.values()))
        _, reduced_welfare = graph.solve(exclude_phone=phone)
        assert reduced_welfare == graph.welfare_without_phone(phone)  # repro: noqa-REP002 -- warm repair vs cold exclusion, bitwise

    def test_weight_accessor_agrees_with_dense_matrix(self):
        bids, schedule = _small_instance()
        graph = TaskAssignmentGraph(schedule, bids, backend="sparse")
        dense = np.asarray(graph.weights)
        for row, task in enumerate(graph.tasks[:10]):
            for col, bid in enumerate(graph.bids):
                assert (
                    graph.weight(task.task_id, bid.phone_id)
                    == dense[row, col]
                )

    def test_city_scale_build_never_allocates_dense_matrix(self):
        """A 1000-slot graph builds in a fraction of the dense footprint.

        The dense ``tasks x bids`` matrix of this instance is ~140 MB;
        the CSR build must stay well under a quarter of that (it
        measures ~6 MB in practice — the point is the *scaling*, not
        the constant).
        """
        import tracemalloc

        scenario = WorkloadConfig.paper_default().replace(
            num_slots=1000
        ).generate(seed=1)
        bids = scenario.truthful_bids()
        tracemalloc.start()
        try:
            graph = TaskAssignmentGraph(
                scenario.schedule, bids, backend="sparse"
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        dense_bytes = len(graph.tasks) * len(graph.bids) * 8
        assert dense_bytes > 100_000_000  # genuinely city-scale
        assert peak < dense_bytes / 4
        # ... and auto dispatch sends an instance this size to sparse.
        auto = TaskAssignmentGraph(scenario.schedule, bids)
        assert auto.solver_backend == "sparse"

    def test_max_weight_matching_sparse_backend_identical(self):
        rng = np.random.default_rng(9)
        weights = rng.uniform(-5.0, 20.0, size=(7, 11)).tolist()
        dense = max_weight_matching(weights, backend="numpy")
        sparse = max_weight_matching(weights, backend="sparse")
        assert sparse.pairs == dense.pairs
        assert sparse.total_weight == pytest.approx(
            dense.total_weight, abs=1e-12
        )
