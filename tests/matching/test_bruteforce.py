"""Unit tests for the brute-force matcher and Hungarian cross-checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching import brute_force_max_weight_matching, max_weight_matching
from repro.matching.validate import check_matching


class TestBruteForce:
    def test_known_instance(self):
        weights = [[3.0, 1.0], [1.0, 3.0]]
        result = brute_force_max_weight_matching(weights)
        assert result.total_weight == 6.0

    def test_skips_negative(self):
        weights = [[-1.0, -2.0]]
        result = brute_force_max_weight_matching(weights)
        assert result.pairs == ()

    def test_empty(self):
        assert brute_force_max_weight_matching([]).total_weight == 0.0

    def test_size_limit(self):
        big = [[1.0] * 2 for _ in range(13)]
        with pytest.raises(MatchingError, match="limited"):
            brute_force_max_weight_matching(big)

    def test_partial_matching_beats_full(self):
        # Matching both rows costs more than matching row 0 alone.
        weights = [[10.0, 0.0], [9.0, -100.0]]
        result = brute_force_max_weight_matching(weights)
        assert result.total_weight == 10.0


class TestHungarianAgainstBruteForce:
    """The headline cross-check: Hungarian == exhaustive optimum."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 7))
        cols = int(rng.integers(1, 7))
        weights = rng.uniform(-5.0, 10.0, size=(rows, cols)).tolist()
        fast = max_weight_matching(weights)
        exact = brute_force_max_weight_matching(weights)
        assert fast.total_weight == pytest.approx(exact.total_weight)
        check_matching(weights, fast.pairs)

    @pytest.mark.parametrize("seed", range(8))
    def test_sparse_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        rows = int(rng.integers(1, 7))
        cols = int(rng.integers(1, 7))
        weights = np.where(
            rng.random((rows, cols)) < 0.3,
            rng.uniform(0.1, 10.0, size=(rows, cols)),
            0.0,
        ).tolist()
        fast = max_weight_matching(weights)
        exact = brute_force_max_weight_matching(weights)
        assert fast.total_weight == pytest.approx(exact.total_weight)

    def test_integer_weights_with_ties(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            weights = rng.integers(0, 4, size=(4, 4)).astype(float).tolist()
            fast = max_weight_matching(weights)
            exact = brute_force_max_weight_matching(weights)
            assert fast.total_weight == pytest.approx(exact.total_weight)
