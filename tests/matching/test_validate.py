"""Unit tests for matching validity checks."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching import check_matching

WEIGHTS = [
    [1.0, 2.0, 0.0],
    [3.0, -1.0, 4.0],
]


class TestCheckMatching:
    def test_valid_matching_total(self):
        assert check_matching(WEIGHTS, [(0, 1), (1, 2)]) == 6.0

    def test_empty_matching(self):
        assert check_matching(WEIGHTS, []) == 0.0

    def test_row_matched_twice(self):
        with pytest.raises(MatchingError, match="row 0 matched twice"):
            check_matching(WEIGHTS, [(0, 0), (0, 1)])

    def test_col_matched_twice(self):
        with pytest.raises(MatchingError, match="column 0 matched twice"):
            check_matching(WEIGHTS, [(0, 0), (1, 0)])

    def test_out_of_range(self):
        with pytest.raises(MatchingError, match="outside"):
            check_matching(WEIGHTS, [(2, 0)])
        with pytest.raises(MatchingError, match="outside"):
            check_matching(WEIGHTS, [(0, 3)])

    def test_zero_weight_pair_rejected(self):
        with pytest.raises(MatchingError, match="non-positive"):
            check_matching(WEIGHTS, [(0, 2)])

    def test_negative_weight_pair_rejected(self):
        with pytest.raises(MatchingError, match="non-positive"):
            check_matching(WEIGHTS, [(1, 1)])
