"""Unit tests for the task x smartphone assignment graph."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching.graph import TaskAssignmentGraph
from repro.model import Bid, TaskSchedule


@pytest.fixture
def schedule():
    # Two tasks in slot 1, one in slot 2, value 10.
    return TaskSchedule.from_counts([2, 1], value=10.0)


@pytest.fixture
def bids():
    return [
        Bid(phone_id=1, arrival=1, departure=1, cost=3.0),
        Bid(phone_id=2, arrival=1, departure=2, cost=6.0),
        Bid(phone_id=3, arrival=2, departure=2, cost=12.0),  # above value
    ]


class TestConstruction:
    def test_weights_follow_paper(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        # Task 0 (slot 1): phone 1 active (10-3), phone 2 active (10-6),
        # phone 3 inactive (0).
        assert graph.weight(0, 1) == 7.0
        assert graph.weight(0, 2) == 4.0
        assert graph.weight(0, 3) == 0.0
        # Task 2 (slot 2): phone 1 inactive, phone 3 active but negative.
        assert graph.weight(2, 1) == 0.0
        assert graph.weight(2, 3) == -2.0

    def test_num_edges_counts_positive_only(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        # Positive: (t0,p1), (t0,p2), (t1,p1), (t1,p2), (t2,p2) = 5.
        assert graph.num_edges == 5

    def test_duplicate_phone_rejected(self, schedule, bids):
        with pytest.raises(MatchingError, match="duplicate"):
            TaskAssignmentGraph(schedule, bids + [bids[0]])

    def test_unknown_lookups_rejected(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        with pytest.raises(MatchingError):
            graph.weight(99, 1)
        with pytest.raises(MatchingError):
            graph.weight(0, 99)

    def test_bids_sorted_by_phone(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, list(reversed(bids)))
        assert [b.phone_id for b in graph.bids] == [1, 2, 3]


class TestSolve:
    def test_optimal_allocation(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        allocation, welfare = graph.solve()
        # Optimal: task0/task1 -> phones 1 and 2 (slot 1), task 2 unserved
        # (only phone 3 could do it, at negative welfare).
        assert set(allocation.values()) == {1, 2}
        assert welfare == pytest.approx(7.0 + 4.0)
        assert 2 not in allocation  # task 2 unserved

    def test_never_allocates_negative_welfare(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        allocation, _ = graph.solve()
        for task_id, phone_id in allocation.items():
            assert graph.weight(task_id, phone_id) > 0.0

    def test_exclude_phone(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        allocation, welfare = graph.solve(exclude_phone=1)
        assert 1 not in allocation.values()
        # Phone 2 takes one slot-1 task: welfare 4.
        assert welfare == pytest.approx(4.0)

    def test_exclude_unknown_phone_rejected(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        with pytest.raises(MatchingError):
            graph.solve(exclude_phone=99)

    def test_empty_bids(self, schedule):
        graph = TaskAssignmentGraph(schedule, [])
        allocation, welfare = graph.solve()
        assert allocation == {}
        assert welfare == pytest.approx(0.0)

    def test_empty_schedule(self, bids):
        schedule = TaskSchedule.from_counts([0, 0], value=10.0)
        graph = TaskAssignmentGraph(schedule, bids)
        allocation, welfare = graph.solve()
        assert allocation == {}
        assert welfare == pytest.approx(0.0)


class TestWelfareWithoutPhone:
    def test_matches_full_resolve(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        for bid in bids:
            fast = graph.welfare_without_phone(bid.phone_id)
            _, slow = graph.solve(exclude_phone=bid.phone_id)
            assert fast == pytest.approx(slow)

    def test_matches_full_resolve_random(self):
        from repro.simulation import WorkloadConfig

        workload = WorkloadConfig(
            num_slots=8,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        )
        for seed in range(4):
            scenario = workload.generate(seed=seed)
            graph = TaskAssignmentGraph(
                scenario.schedule, scenario.truthful_bids()
            )
            allocation, _ = graph.solve()
            for phone_id in set(allocation.values()):
                fast = graph.welfare_without_phone(phone_id)
                _, slow = graph.solve(exclude_phone=phone_id)
                assert fast == pytest.approx(slow)

    def test_unknown_phone_rejected(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        with pytest.raises(MatchingError):
            graph.welfare_without_phone(99)

    def test_loser_removal_keeps_welfare(self, schedule, bids):
        graph = TaskAssignmentGraph(schedule, bids)
        _, full = graph.solve()
        # Phone 3 never wins; removing it cannot change the optimum.
        assert graph.welfare_without_phone(3) == pytest.approx(full)
