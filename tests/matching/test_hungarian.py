"""Unit tests for the pure-Python Hungarian reference implementation."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching import max_weight_matching, solve_assignment_min
from repro.matching.validate import check_matching


class TestSolveAssignmentMin:
    def test_identity_optimal(self):
        cost = [[0.0, 9.0], [9.0, 0.0]]
        assignment, total = solve_assignment_min(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_cross_optimal(self):
        cost = [[9.0, 1.0], [1.0, 9.0]]
        assignment, total = solve_assignment_min(cost)
        assert assignment == [1, 0]
        assert total == 2.0

    def test_rectangular_chooses_cheapest_columns(self):
        cost = [[5.0, 1.0, 3.0]]
        assignment, total = solve_assignment_min(cost)
        assert assignment == [1]
        assert total == 1.0

    def test_three_by_three_known_optimum(self):
        cost = [
            [4.0, 1.0, 3.0],
            [2.0, 0.0, 5.0],
            [3.0, 2.0, 2.0],
        ]
        _, total = solve_assignment_min(cost)
        assert total == 5.0  # 1 + 2 + 2

    def test_negative_costs_supported(self):
        cost = [[-5.0, 0.0], [0.0, -5.0]]
        assignment, total = solve_assignment_min(cost)
        assert total == -10.0
        assert assignment == [0, 1]

    def test_empty_matrix(self):
        assignment, total = solve_assignment_min([])
        assert assignment == []
        assert total == 0.0

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(MatchingError, match="rows <= cols"):
            solve_assignment_min([[1.0], [2.0]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(MatchingError, match="ragged"):
            solve_assignment_min([[1.0, 2.0], [1.0]])

    def test_nan_rejected(self):
        with pytest.raises(MatchingError, match="finite"):
            solve_assignment_min([[float("nan")]])

    def test_assignment_is_permutation(self):
        cost = [
            [3.0, 8.0, 2.0, 4.0],
            [9.0, 1.0, 5.0, 6.0],
            [2.0, 7.0, 3.0, 1.0],
            [4.0, 4.0, 4.0, 4.0],
        ]
        assignment, _ = solve_assignment_min(cost)
        assert sorted(assignment) == [0, 1, 2, 3]


class TestMaxWeightMatching:
    def test_simple_positive(self):
        weights = [[3.0, 1.0], [1.0, 3.0]]
        result = max_weight_matching(weights)
        assert result.total_weight == 6.0
        assert set(result.pairs) == {(0, 0), (1, 1)}

    def test_skips_non_positive_edges(self):
        weights = [[0.0, -2.0], [0.0, 0.0]]
        result = max_weight_matching(weights)
        assert result.pairs == ()
        assert result.total_weight == 0.0

    def test_prefers_leaving_row_unmatched_over_negative(self):
        weights = [[5.0, -1.0], [5.0, -1.0]]
        result = max_weight_matching(weights)
        # Only one row can take the weight-5 column; the other stays out.
        assert result.total_weight == 5.0
        assert len(result.pairs) == 1

    def test_rectangular_more_rows(self):
        weights = [[2.0], [3.0], [1.0]]
        result = max_weight_matching(weights)
        assert result.total_weight == 3.0
        assert result.pairs == ((1, 0),)

    def test_rectangular_more_cols(self):
        weights = [[1.0, 5.0, 2.0]]
        result = max_weight_matching(weights)
        assert result.pairs == ((0, 1),)

    def test_empty(self):
        assert max_weight_matching([]).total_weight == 0.0
        assert max_weight_matching([[]]).total_weight == 0.0

    def test_result_valid_matching(self):
        weights = [
            [4.0, 0.0, 2.0],
            [2.0, 3.0, 0.0],
            [0.0, 1.0, 5.0],
        ]
        result = max_weight_matching(weights)
        assert check_matching(weights, result.pairs) == pytest.approx(
            result.total_weight
        )
        assert result.total_weight == 12.0

    def test_row_and_col_views(self):
        weights = [[1.0, 0.0], [0.0, 2.0]]
        result = max_weight_matching(weights)
        assert result.row_to_col() == {0: 0, 1: 1}
        assert result.col_to_row() == {0: 0, 1: 1}

    def test_greedy_trap(self):
        # Greedy would take (0,0)=10 then leave row 1 with 0;
        # optimal is (0,1)=9 + (1,0)=9.
        weights = [[10.0, 9.0], [9.0, 0.0]]
        result = max_weight_matching(weights)
        assert result.total_weight == 18.0
