"""Unit tests for Hopcroft-Karp maximum-cardinality matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching import hopcroft_karp, max_weight_matching


class TestHopcroftKarp:
    def test_perfect_matching(self):
        size, matching = hopcroft_karp([[0], [1]], num_right=2)
        assert size == 2
        assert matching == {0: 0, 1: 1}

    def test_contended_vertex(self):
        # Both left vertices only like right vertex 0.
        size, matching = hopcroft_karp([[0], [0]], num_right=1)
        assert size == 1
        assert len(matching) == 1

    def test_augmenting_path_needed(self):
        # 0-{0}, 1-{0,1}: greedy 1->0 would block 0; HK must fix it.
        size, matching = hopcroft_karp([[0], [0, 1]], num_right=2)
        assert size == 2
        assert matching[0] == 0
        assert matching[1] == 1

    def test_empty_graph(self):
        size, matching = hopcroft_karp([], num_right=0)
        assert size == 0
        assert matching == {}

    def test_isolated_left_vertices(self):
        size, matching = hopcroft_karp([[], [0], []], num_right=1)
        assert size == 1
        assert matching == {1: 0}

    def test_out_of_range_right_vertex(self):
        with pytest.raises(MatchingError, match="out of range"):
            hopcroft_karp([[5]], num_right=2)

    def test_matching_is_injective(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n_left = int(rng.integers(1, 12))
            n_right = int(rng.integers(1, 12))
            adjacency = [
                sorted(
                    set(
                        int(v)
                        for v in rng.integers(
                            0, n_right, size=rng.integers(0, n_right + 1)
                        )
                    )
                )
                for _ in range(n_left)
            ]
            size, matching = hopcroft_karp(adjacency, num_right=n_right)
            assert size == len(matching)
            assert len(set(matching.values())) == len(matching)
            for left, right in matching.items():
                assert right in adjacency[left]

    def test_cardinality_matches_weighted_matcher_on_01(self):
        """Cross-check: HK cardinality == max-weight matching size on a
        0/1 weight matrix."""
        rng = np.random.default_rng(1)
        for _ in range(10):
            n_left = int(rng.integers(1, 8))
            n_right = int(rng.integers(1, 8))
            mask = rng.random((n_left, n_right)) < 0.4
            adjacency = [
                [j for j in range(n_right) if mask[i, j]]
                for i in range(n_left)
            ]
            hk_size, _ = hopcroft_karp(adjacency, num_right=n_right)
            weights = mask.astype(float).tolist()
            result = max_weight_matching(weights)
            assert hk_size == len(result.pairs)
