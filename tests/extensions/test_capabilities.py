"""Unit tests for the typed-task / capability extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MechanismError, ValidationError
from repro.extensions import (
    CapabilityModel,
    TypedOfflineVCGMechanism,
    TypedOnlineGreedyMechanism,
    generate_capability_model,
)
from repro.extensions.capabilities import GENERIC_KIND, check_typed_outcome
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.metrics import audit_individual_rationality, audit_truthfulness
from repro.model import Bid, TaskSchedule
from repro.simulation import Scenario, WorkloadConfig


@pytest.fixture
def schedule():
    return TaskSchedule.from_counts([2, 1], value=20.0)


@pytest.fixture
def bids():
    return [
        Bid(phone_id=1, arrival=1, departure=2, cost=2.0),   # mic only
        Bid(phone_id=2, arrival=1, departure=2, cost=5.0),   # gas only
        Bid(phone_id=3, arrival=1, departure=2, cost=9.0),   # both
    ]


@pytest.fixture
def model():
    # Task 0: mic, task 1: gas, task 2: mic.
    return CapabilityModel(
        task_kinds={0: "mic", 1: "gas", 2: "mic"},
        phone_capabilities={
            1: frozenset({"mic"}),
            2: frozenset({"gas"}),
            3: frozenset({"mic", "gas"}),
        },
    )


class TestCapabilityModel:
    def test_kind_defaults_to_generic(self, model, schedule):
        unknown = TaskSchedule.from_counts([1], value=5.0).task(0)
        assert model.kind_of(unknown) in (GENERIC_KIND, "mic")

    def test_compatible(self, model, schedule, bids):
        task_mic = schedule.task(0)
        task_gas = schedule.task(1)
        assert model.compatible(task_mic, bids[0])
        assert not model.compatible(task_gas, bids[0])
        assert model.compatible(task_gas, bids[1])
        assert model.compatible(task_mic, bids[2])

    def test_everyone_supports_generic(self, model):
        generic_task = TaskSchedule.from_counts([1], value=5.0).task(0)
        unlisted = Bid(phone_id=99, arrival=1, departure=1, cost=1.0)
        assert CapabilityModel().compatible(generic_task, unlisted)

    def test_kinds_listing(self, model):
        assert set(model.kinds()) == {"mic", "gas", GENERIC_KIND}

    def test_generate_random_model(self, schedule):
        rng = np.random.default_rng(0)
        generated = generate_capability_model(
            schedule, [1, 2, 3], ["mic", "gas"], rng,
            capability_probability=1.0,
        )
        assert set(generated.task_kinds.values()) <= {"mic", "gas"}
        for phone_id in (1, 2, 3):
            assert generated.capabilities_of(phone_id) >= {"mic", "gas"}

    def test_generate_validation(self, schedule):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            generate_capability_model(schedule, [1], [], rng)
        with pytest.raises(ValidationError):
            generate_capability_model(
                schedule, [1], ["mic"], rng, capability_probability=2.0
            )


class TestTypedOffline:
    def test_respects_capabilities(self, schedule, bids, model):
        outcome = TypedOfflineVCGMechanism(model).run(bids, schedule)
        check_typed_outcome(outcome, model)
        # Gas task (1) must go to phone 2 or 3.
        assert outcome.phone_of(1) in (2, 3)

    def test_reduces_to_base_when_unrestricted(self, schedule, bids):
        typed = TypedOfflineVCGMechanism(
            CapabilityModel()  # everything generic
        ).run(bids, schedule)
        base = OfflineVCGMechanism().run(bids, schedule)
        assert typed.allocation == base.allocation
        assert typed.payments == pytest.approx(base.payments)

    def test_optimal_on_restricted_graph(self, schedule, bids, model):
        outcome = TypedOfflineVCGMechanism(model).run(bids, schedule)
        # Optimal: task0 -> 1 (mic, 2), task1 -> 2 (gas, 5),
        # task2... wait task2 is slot 2 mic -> phone 3 (9).
        assert outcome.claimed_welfare == pytest.approx(
            (20 - 2) + (20 - 5) + (20 - 9)
        )

    def test_restriction_never_increases_welfare(self):
        workload = WorkloadConfig(
            num_slots=8, phone_rate=3.0, task_rate=2.0,
            mean_cost=10.0, mean_active_length=3, task_value=20.0,
        )
        for seed in range(3):
            scenario = workload.generate(seed=seed)
            bids = scenario.truthful_bids()
            rng = np.random.default_rng(seed)
            model = generate_capability_model(
                scenario.schedule,
                [b.phone_id for b in bids],
                ["a", "b", "c"],
                rng,
                capability_probability=0.5,
            )
            restricted = TypedOfflineVCGMechanism(model).run(
                bids, scenario.schedule
            )
            base = OfflineVCGMechanism().run(bids, scenario.schedule)
            assert (
                restricted.claimed_welfare <= base.claimed_welfare + 1e-9
            )

    def test_vcg_payment_formula(self, schedule, bids, model):
        mechanism = TypedOfflineVCGMechanism(model)
        outcome = mechanism.run(bids, schedule)
        for phone_id in outcome.winners:
            assert (
                outcome.payment(phone_id)
                >= outcome.bid_of(phone_id).cost - 1e-9
            )


class TestTypedOnline:
    def test_respects_capabilities(self, schedule, bids, model):
        outcome = TypedOnlineGreedyMechanism(model).run(bids, schedule)
        check_typed_outcome(outcome, model)

    def test_cheapest_capable_wins(self, schedule, bids, model):
        outcome = TypedOnlineGreedyMechanism(model).run(bids, schedule)
        # Slot 1 has a mic and a gas task: phone 1 (cheapest mic-capable
        # ... actually cheapest overall) takes the mic task; phone 2
        # takes the gas task even though phone 1 is cheaper (incapable).
        assert outcome.phone_of(0) == 1
        assert outcome.phone_of(1) == 2

    def test_skips_task_with_no_capable_phone(self, schedule, model):
        only_gas = [Bid(phone_id=2, arrival=1, departure=2, cost=5.0)]
        outcome = TypedOnlineGreedyMechanism(model).run(only_gas, schedule)
        # Mic tasks (0, 2) unserved; gas task (1) served.
        assert set(outcome.allocation) == {1}

    def test_reduces_to_base_when_unrestricted(self):
        workload = WorkloadConfig(
            num_slots=8, phone_rate=3.0, task_rate=2.0,
            mean_cost=10.0, mean_active_length=3, task_value=25.0,
        )
        scenario = workload.generate(seed=4)
        bids = scenario.truthful_bids()
        typed = TypedOnlineGreedyMechanism(CapabilityModel()).run(
            bids, scenario.schedule
        )
        base = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        ).run(bids, scenario.schedule)
        assert typed.allocation == base.allocation
        assert typed.payments == pytest.approx(base.payments)

    def test_critical_payment_threshold_semantics(self, schedule, model):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=2.0),
            Bid(phone_id=4, arrival=1, departure=2, cost=7.0),  # mic rival
        ]
        rival_model = CapabilityModel(
            task_kinds={0: "mic", 1: "gas", 2: "mic"},
            phone_capabilities={
                1: frozenset({"mic"}),
                4: frozenset({"mic"}),
            },
        )
        mechanism = TypedOnlineGreedyMechanism(rival_model)
        outcome = mechanism.run(bids, schedule)
        # Phone 1 wins a mic task; its only rival bids 7; with two mic
        # tasks and two mic phones both win => critical = task value 20.
        assert outcome.is_winner(1)
        threshold = outcome.payment(1)
        above = [
            b.with_cost(threshold + 0.01) if b.phone_id == 1 else b
            for b in bids
        ]
        assert not mechanism.run(above, schedule).is_winner(1)
        below = [
            b.with_cost(threshold - 0.01) if b.phone_id == 1 else b
            for b in bids
        ]
        assert mechanism.run(below, schedule).is_winner(1)


class TestTypedProperties:
    @pytest.fixture
    def typed_scenario(self):
        workload = WorkloadConfig(
            num_slots=6, phone_rate=4.0, task_rate=1.5,
            mean_cost=10.0, mean_active_length=3, task_value=25.0,
        )
        scenario = workload.generate(seed=2)
        rng = np.random.default_rng(2)
        model = generate_capability_model(
            scenario.schedule,
            [p.phone_id for p in scenario.profiles],
            ["mic", "gas", "cam"],
            rng,
            capability_probability=0.6,
        )
        return scenario, model

    def test_offline_truthful(self, typed_scenario):
        scenario, model = typed_scenario
        report = audit_truthfulness(
            TypedOfflineVCGMechanism(model),
            scenario,
            np.random.default_rng(0),
            max_phones=8,
        )
        assert report.passed, report.violations

    def test_online_truthful(self, typed_scenario):
        scenario, model = typed_scenario
        report = audit_truthfulness(
            TypedOnlineGreedyMechanism(model),
            scenario,
            np.random.default_rng(0),
            max_phones=6,
        )
        assert report.passed, report.violations

    def test_individual_rationality(self, typed_scenario):
        scenario, model = typed_scenario
        for mechanism in (
            TypedOfflineVCGMechanism(model),
            TypedOnlineGreedyMechanism(model),
        ):
            assert (
                audit_individual_rationality(mechanism, scenario) == []
            ), mechanism.name

    def test_offline_dominates_online(self, typed_scenario):
        scenario, model = typed_scenario
        bids = scenario.truthful_bids()
        offline = TypedOfflineVCGMechanism(model).run(
            bids, scenario.schedule
        )
        online = TypedOnlineGreedyMechanism(model).run(
            bids, scenario.schedule
        )
        assert offline.claimed_welfare >= online.claimed_welfare - 1e-9

    def test_check_typed_outcome_catches_violation(self):
        # Run the *base* mechanism, which ignores capabilities; the
        # cheapest phone (mic-only) grabs the gas task — the checker
        # must flag the incompatible assignment.
        gas_only_schedule = TaskSchedule.from_counts([1], value=20.0)
        bids = [
            Bid(phone_id=1, arrival=1, departure=1, cost=2.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=5.0),
        ]
        model = CapabilityModel(
            task_kinds={0: "gas"},
            phone_capabilities={
                1: frozenset({"mic"}),
                2: frozenset({"gas"}),
            },
        )
        outcome = OnlineGreedyMechanism().run(bids, gas_only_schedule)
        assert outcome.phone_of(0) == 1  # base rule ignores capabilities
        with pytest.raises(MechanismError, match="capabilities"):
            check_typed_outcome(outcome, model)
