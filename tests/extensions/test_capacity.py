"""Unit tests for the capacitated-supply extension."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.extensions import CapacitatedOfflineVCGMechanism
from repro.extensions.capacity import check_capacitated_outcome
from repro.mechanisms import OfflineVCGMechanism
from repro.model import Bid, TaskSchedule


def _schedule(counts, value=10.0):
    return TaskSchedule.from_counts(counts, value=value)


class TestConstruction:
    def test_default_capacity_is_one(self):
        mechanism = CapacitatedOfflineVCGMechanism()
        assert mechanism.capacity_of(7) == 1

    def test_explicit_capacities(self):
        mechanism = CapacitatedOfflineVCGMechanism({1: 3})
        assert mechanism.capacity_of(1) == 3
        assert mechanism.capacity_of(2) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValidationError):
            CapacitatedOfflineVCGMechanism({1: 0})

    def test_non_int_capacity_rejected(self):
        with pytest.raises(ValidationError):
            CapacitatedOfflineVCGMechanism({1: 1.5})  # type: ignore[dict-item]


class TestAllocation:
    def test_capacity_used_across_slots(self):
        """One phone with capacity 2 serves both slots' tasks."""
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=2.0)]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2})
        outcome = mechanism.run(bids, _schedule([1, 1]))
        assert outcome.units_of(1) == 2
        assert outcome.claimed_welfare == pytest.approx(16.0)
        check_capacitated_outcome(outcome, mechanism)

    def test_capacity_respected(self):
        bids = [Bid(phone_id=1, arrival=1, departure=3, cost=2.0)]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2})
        outcome = mechanism.run(bids, _schedule([1, 1, 1]))
        assert outcome.units_of(1) == 2  # not 3
        check_capacitated_outcome(outcome, mechanism)

    def test_one_task_per_slot_per_unit(self):
        """Capacity does not let a phone serve two tasks in one slot —
        unit columns compete for distinct tasks, and each task has one
        row, so two same-slot tasks CAN go to the same phone (it has
        two units).  Capacity is per round, not per slot, matching the
        relaxation's semantics."""
        bids = [Bid(phone_id=1, arrival=1, departure=1, cost=2.0)]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2})
        outcome = mechanism.run(bids, _schedule([2]))
        assert outcome.units_of(1) == 2

    def test_capacity_one_equals_base_mechanism(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=1.0),
            Bid(phone_id=2, arrival=1, departure=1, cost=2.0),
        ]
        schedule = _schedule([1, 1])
        capacitated = CapacitatedOfflineVCGMechanism().run(bids, schedule)
        base = OfflineVCGMechanism().run(bids, schedule)
        assert capacitated.allocation == base.allocation
        assert capacitated.claimed_welfare == pytest.approx(
            base.claimed_welfare
        )
        for phone_id in base.winners:
            assert capacitated.payments[phone_id] == pytest.approx(
                base.payment(phone_id)
            )

    def test_unprofitable_units_unused(self):
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=50.0)]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2})
        outcome = mechanism.run(bids, _schedule([1, 1], value=10.0))
        assert outcome.allocation == {}
        assert outcome.payments == {}

    def test_empty_inputs(self):
        mechanism = CapacitatedOfflineVCGMechanism()
        outcome = mechanism.run([], _schedule([1]))
        assert outcome.allocation == {}
        outcome = mechanism.run(
            [Bid(phone_id=1, arrival=1, departure=1, cost=1.0)],
            _schedule([0]),
        )
        assert outcome.allocation == {}


class TestPayments:
    def test_monopolist_paid_value_per_unit(self):
        bids = [Bid(phone_id=1, arrival=1, departure=2, cost=2.0)]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2})
        outcome = mechanism.run(bids, _schedule([1, 1], value=10.0))
        # ω* = 16, ω*₋₁ = 0: p = 16 + 2·2 − 0 = 20 = 2 tasks × ν.
        assert outcome.payments[1] == pytest.approx(20.0)

    def test_competition_caps_payment(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=2, cost=2.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=6.0),
        ]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2, 2: 2})
        outcome = mechanism.run(bids, _schedule([1, 1], value=10.0))
        # Phone 1 serves both; without it phone 2 would: ω*₋₁ = 8.
        # p₁ = 16 + 4 − 8 = 12 (= both tasks at the rival's cost).
        assert outcome.units_of(1) == 2
        assert outcome.payments[1] == pytest.approx(12.0)

    def test_payment_at_least_claimed_cost_times_units(self):
        bids = [
            Bid(phone_id=i, arrival=1, departure=3, cost=float(i))
            for i in range(1, 5)
        ]
        mechanism = CapacitatedOfflineVCGMechanism({1: 2, 2: 2})
        outcome = mechanism.run(bids, _schedule([2, 1, 1], value=20.0))
        bid_costs = {b.phone_id: b.cost for b in bids}
        for phone_id, payment in outcome.payments.items():
            floor = bid_costs[phone_id] * outcome.units_of(phone_id)
            assert payment >= floor - 1e-9


class TestTruthfulness:
    @pytest.mark.parametrize("factor", [0.5, 0.8, 1.3, 2.0])
    def test_cost_misreport_never_profits(self, factor):
        """Whole-phone VCG: unilateral cost misreports never profit."""
        bids = [
            Bid(phone_id=1, arrival=1, departure=3, cost=3.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=5.0),
            Bid(phone_id=3, arrival=2, departure=3, cost=7.0),
        ]
        schedule = _schedule([1, 1, 1], value=20.0)
        mechanism = CapacitatedOfflineVCGMechanism({1: 2, 2: 2, 3: 1})
        true_cost = 3.0

        truthful = mechanism.run(bids, schedule)
        truthful_u = truthful.payments.get(1, 0.0) - (
            true_cost * truthful.units_of(1)
        )
        deviated_bids = [
            b.with_cost(true_cost * factor) if b.phone_id == 1 else b
            for b in bids
        ]
        deviated = mechanism.run(deviated_bids, schedule)
        deviated_u = deviated.payments.get(1, 0.0) - (
            true_cost * deviated.units_of(1)
        )
        assert deviated_u <= truthful_u + 1e-9

    def test_individual_rationality(self):
        bids = [
            Bid(phone_id=1, arrival=1, departure=3, cost=3.0),
            Bid(phone_id=2, arrival=1, departure=2, cost=5.0),
        ]
        schedule = _schedule([1, 1, 1], value=20.0)
        mechanism = CapacitatedOfflineVCGMechanism({1: 3, 2: 2})
        outcome = mechanism.run(bids, schedule)
        bid_costs = {b.phone_id: b.cost for b in bids}
        for phone_id, payment in outcome.payments.items():
            utility = payment - bid_costs[phone_id] * outcome.units_of(
                phone_id
            )
            assert utility >= -1e-9

    def test_higher_capacity_never_lowers_welfare(self):
        from repro.simulation import WorkloadConfig

        workload = WorkloadConfig(
            num_slots=6, phone_rate=2.0, task_rate=2.0,
            mean_cost=10.0, mean_active_length=3, task_value=20.0,
        )
        for seed in range(3):
            scenario = workload.generate(seed=seed)
            bids = scenario.truthful_bids()
            unit = CapacitatedOfflineVCGMechanism().run(
                bids, scenario.schedule
            )
            doubled = CapacitatedOfflineVCGMechanism(
                {b.phone_id: 2 for b in bids}
            ).run(bids, scenario.schedule)
            assert (
                doubled.claimed_welfare >= unit.claimed_welfare - 1e-9
            )
