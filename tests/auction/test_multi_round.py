"""Unit tests for multi-round campaign operation."""

from __future__ import annotations

import pytest

from repro.auction import RETRY_LOSERS, RETRY_NONE, run_campaign
from repro.errors import SimulationError, ValidationError
from repro.mechanisms import OnlineGreedyMechanism
from repro.simulation import WorkloadConfig


@pytest.fixture
def workload():
    return WorkloadConfig(
        num_slots=8,
        phone_rate=3.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=2,
        task_value=15.0,
    )


class TestCampaign:
    def test_per_round_results(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=3, seed=1
        )
        assert result.num_rounds == 3
        assert result.total_welfare == pytest.approx(
            sum(r.true_welfare for r in result.rounds)
        )
        assert result.total_payment == pytest.approx(
            sum(r.total_payment for r in result.rounds)
        )
        assert result.welfare_per_round.count == 3

    def test_rounds_are_independent_draws(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=3, seed=1
        )
        welfares = [r.true_welfare for r in result.rounds]
        assert len(set(welfares)) > 1  # not the same round repeated

    def test_deterministic_given_seed(self, workload):
        a = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=2, seed=5
        )
        b = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=2, seed=5
        )
        assert [r.true_welfare for r in a.rounds] == [
            r.true_welfare for r in b.rounds
        ]

    def test_different_seeds_differ(self, workload):
        a = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=2, seed=5
        )
        b = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=2, seed=6
        )
        assert [r.true_welfare for r in a.rounds] != [
            r.true_welfare for r in b.rounds
        ]

    def test_no_retry_has_no_returning_phones(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=1,
            retry_policy=RETRY_NONE,
        )
        assert result.returning_phones == 0

    def test_retry_losers_adds_phones(self, workload):
        baseline = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=3, seed=1
        )
        retry = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=1,
            retry_policy=RETRY_LOSERS,
        )
        assert retry.returning_phones > 0
        # Later rounds see strictly more phones than the baseline draw.
        for base_round, retry_round in zip(
            baseline.rounds[1:], retry.rounds[1:]
        ):
            assert len(retry_round.utilities) >= len(base_round.utilities)

    def test_retry_increases_supply_and_welfare(self, workload):
        """More (cheap-retaining) supply should not hurt welfare."""
        scarce = workload.replace(phone_rate=1.0, task_rate=3.0)
        baseline = run_campaign(
            OnlineGreedyMechanism(reserve_price=True),
            scarce,
            num_rounds=4,
            seed=2,
        )
        retry = run_campaign(
            OnlineGreedyMechanism(reserve_price=True),
            scarce,
            num_rounds=4,
            seed=2,
            retry_policy=RETRY_LOSERS,
        )
        assert retry.total_welfare >= baseline.total_welfare - 1e-6

    def test_max_retries_cap(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=1,
            retry_policy=RETRY_LOSERS,
            max_retries_per_round=1,
        )
        assert result.returning_phones <= 2  # at most 1 per later round


class TestValidation:
    def test_zero_rounds_rejected(self, workload):
        with pytest.raises(ValidationError):
            run_campaign(OnlineGreedyMechanism(), workload, num_rounds=0)

    def test_unknown_policy_rejected(self, workload):
        with pytest.raises(SimulationError, match="retry_policy"):
            run_campaign(
                OnlineGreedyMechanism(),
                workload,
                num_rounds=1,
                retry_policy="always",
            )

    def test_single_round_campaign(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=1, seed=0
        )
        assert result.num_rounds == 1
        assert result.welfare_per_round.std == 0.0


class TestFaultyCampaign:
    def _fault_config(self, **kwargs):
        from repro.faults import FaultConfig

        return FaultConfig(**kwargs)

    def test_requires_online_greedy(self, workload):
        from repro.mechanisms import OfflineVCGMechanism

        with pytest.raises(SimulationError, match="online-greedy"):
            run_campaign(
                OfflineVCGMechanism(),
                workload,
                num_rounds=2,
                fault_config=self._fault_config(dropout_prob=0.2),
            )

    def test_deterministic_given_seeds(self, workload):
        config = self._fault_config(dropout_prob=0.3, task_failure_prob=0.2)
        runs = [
            run_campaign(
                OnlineGreedyMechanism(),
                workload,
                num_rounds=3,
                seed=4,
                retry_policy=RETRY_LOSERS,
                fault_config=config,
                fault_seed=9,
            )
            for _ in range(2)
        ]
        assert runs[0].total_welfare == pytest.approx(runs[1].total_welfare)
        assert runs[0].dropped_phones == runs[1].dropped_phones
        assert runs[0].delivery_failures == runs[1].delivery_failures
        assert runs[0].returning_phones == runs[1].returning_phones

    def test_zero_fault_config_matches_plain_campaign(self, workload):
        plain = run_campaign(
            OnlineGreedyMechanism(), workload, num_rounds=3, seed=2
        )
        faulty = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=2,
            fault_config=self._fault_config(),
        )
        assert faulty.total_welfare == pytest.approx(plain.total_welfare)
        assert faulty.total_payment == pytest.approx(plain.total_payment)
        assert faulty.dropped_phones == 0
        assert faulty.delivery_failures == 0

    def test_fault_accounting_accumulates(self, workload):
        result = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=4,
            seed=1,
            fault_config=self._fault_config(
                dropout_prob=0.5, task_failure_prob=0.3
            ),
        )
        assert result.dropped_phones > 0
        assert result.delivery_failures > 0
        assert result.recovered_tasks >= 0

    def test_dropped_phones_reenter_as_losers(self, workload):
        """A dropped phone did not deliver, so under the losers policy
        it re-enters the next round with a fresh active window."""
        config = self._fault_config(dropout_prob=0.6)
        faulty = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=3,
            retry_policy=RETRY_LOSERS,
            fault_config=config,
        )
        plain = run_campaign(
            OnlineGreedyMechanism(),
            workload,
            num_rounds=3,
            seed=3,
            retry_policy=RETRY_LOSERS,
        )
        assert faulty.dropped_phones > 0
        # Dropped winners are not "winners", so more phones carry over.
        assert faulty.returning_phones >= plain.returning_phones
