"""Parallel campaign rounds — identical results, guarded policies."""

from __future__ import annotations

import pytest

from repro.auction.multi_round import run_campaign
from repro.errors import SimulationError
from repro.faults.plan import FaultConfig
from repro.mechanisms import create_mechanism
from repro.simulation import WorkloadConfig


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig.paper_default().replace(num_slots=12)


@pytest.fixture(scope="module")
def mechanism():
    return create_mechanism("online-greedy")


class TestParallelCampaign:
    def test_equal_to_serial(self, mechanism, workload):
        serial = run_campaign(mechanism, workload, 4, seed=3)
        parallel = run_campaign(mechanism, workload, 4, seed=3, workers=3)
        assert serial == parallel

    def test_equal_to_serial_with_faults(self, mechanism, workload):
        faults = FaultConfig(dropout_prob=0.2, task_failure_prob=0.1)
        serial = run_campaign(
            mechanism, workload, 3, seed=5, fault_config=faults
        )
        parallel = run_campaign(
            mechanism, workload, 3, seed=5, fault_config=faults, workers=2
        )
        assert serial == parallel

    def test_workers_must_be_positive(self, mechanism, workload):
        with pytest.raises(SimulationError, match="workers"):
            run_campaign(mechanism, workload, 2, workers=0)

    def test_losers_policy_rejects_workers(self, mechanism, workload):
        with pytest.raises(SimulationError, match="retry_policy"):
            run_campaign(
                mechanism,
                workload,
                2,
                retry_policy="losers",
                workers=2,
            )
