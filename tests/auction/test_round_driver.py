"""Unit tests for the scenario replay driver."""

from __future__ import annotations

import pytest

from repro.agents import CostScalingStrategy
from repro.auction import replay_scenario
from repro.auction.events import PaymentSettled, TaskAllocated
from repro.mechanisms import OnlineGreedyMechanism
from repro.simulation import WorkloadConfig


@pytest.fixture
def scenario():
    return WorkloadConfig(
        num_slots=8,
        phone_rate=3.0,
        task_rate=2.0,
        mean_cost=10.0,
        mean_active_length=2,
        task_value=15.0,
    ).generate(seed=5)


class TestReplay:
    def test_outcome_equals_batch_mechanism(self, scenario):
        """The headline equivalence: incremental == batch."""
        outcome, _ = replay_scenario(scenario)
        batch = OnlineGreedyMechanism().run(
            scenario.truthful_bids(), scenario.schedule
        )
        assert outcome.allocation == batch.allocation
        assert outcome.payments == pytest.approx(batch.payments)
        for phone_id in batch.winners:
            assert outcome.payment_slot(phone_id) == batch.payment_slot(
                phone_id
            )

    def test_equivalence_with_reserve_and_exact_rule(self, scenario):
        outcome, _ = replay_scenario(
            scenario, reserve_price=True, payment_rule="exact"
        )
        batch = OnlineGreedyMechanism(
            reserve_price=True, payment_rule="exact"
        ).run(scenario.truthful_bids(), scenario.schedule)
        assert outcome.allocation == batch.allocation
        assert outcome.payments == pytest.approx(batch.payments)

    def test_event_log_covers_all_allocations(self, scenario):
        outcome, events = replay_scenario(scenario)
        allocated_events = [
            e for e in events if isinstance(e, TaskAllocated)
        ]
        assert len(allocated_events) == len(outcome.allocation)

    def test_payments_settled_at_departures(self, scenario):
        outcome, events = replay_scenario(scenario)
        settlements = {
            e.phone_id: e.slot
            for e in events
            if isinstance(e, PaymentSettled)
        }
        for phone_id in outcome.winners:
            assert settlements[phone_id] == outcome.bid_of(
                phone_id
            ).departure

    def test_strategies_forwarded(self, scenario):
        # Inflate everyone: allocations may change but it must still run.
        outcome, _ = replay_scenario(
            scenario,
            strategies={
                p.phone_id: CostScalingStrategy(1.2)
                for p in scenario.profiles
            },
        )
        for bid in outcome.bids:
            assert bid.cost == pytest.approx(
                scenario.profile(bid.phone_id).cost * 1.2
            )


class TestStrategyValidation:
    def test_unknown_strategy_keys_rejected(self, scenario):
        from repro.errors import SimulationError

        known = {p.phone_id for p in scenario.profiles}
        bogus = max(known) + 100
        with pytest.raises(SimulationError, match=str(bogus)):
            replay_scenario(
                scenario, strategies={bogus: CostScalingStrategy(1.1)}
            )

    def test_known_strategy_keys_accepted(self, scenario):
        import numpy as np

        phone = scenario.profiles[0]
        outcome, _ = replay_scenario(
            scenario,
            strategies={phone.phone_id: CostScalingStrategy(1.0)},
            rng=np.random.default_rng(0),
        )
        assert outcome is not None
