"""Event serialisation: ``to_dict`` / ``event_from_dict`` round-trips."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.auction import CrowdsourcingPlatform
from repro.auction.events import (
    EVENT_TYPES,
    AuctionEvent,
    BidSubmitted,
    PaymentSettled,
    TaskAllocated,
    TaskReassigned,
    event_from_dict,
)
from repro.model import Bid
from repro.simulation.scenario import Scenario
from repro.simulation.paper_example import (
    paper_example_profiles,
    paper_example_schedule,
)
from repro.auction.round_driver import replay_scenario


def _sample_events():
    """One instance of every registered event class, fields filled."""
    samples = []
    for cls in EVENT_TYPES.values():
        kwargs = {}
        for field in dataclasses.fields(cls):
            if field.type in ("int", int):
                kwargs[field.name] = 3
            elif field.type in ("float", float):
                kwargs[field.name] = 2.5
            else:
                kwargs[field.name] = "dropout"
        samples.append(cls(**kwargs))
    return samples


class TestEventRegistry:
    def test_every_concrete_event_class_is_registered(self):
        assert len(EVENT_TYPES) == 14
        for name, cls in EVENT_TYPES.items():
            assert cls.__name__ == name
            assert issubclass(cls, AuctionEvent)
        assert AuctionEvent not in EVENT_TYPES.values()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "event", _sample_events(), ids=lambda e: type(e).__name__
    )
    def test_every_event_class_round_trips(self, event):
        payload = event.to_dict()
        assert payload["event"] == type(event).__name__
        # The payload is genuinely JSON-friendly.
        rebuilt = event_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == event
        assert type(rebuilt) is type(event)

    def test_to_dict_carries_every_field(self):
        event = BidSubmitted(
            slot=1, phone_id=4, arrival=1, departure=3, cost=2.5
        )
        assert event.to_dict() == {
            "event": "BidSubmitted",
            "slot": 1,
            "phone_id": 4,
            "arrival": 1,
            "departure": 3,
            "cost": 2.5,
        }

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"event": "NoSuchEvent", "slot": 1})

    def test_missing_tag_raises(self):
        with pytest.raises(ValueError, match="event"):
            event_from_dict({"slot": 1})

    def test_full_platform_log_round_trips(self):
        scenario = Scenario(
            paper_example_profiles(), paper_example_schedule()
        )
        _, events = replay_scenario(scenario)
        assert len(events) > 0
        rebuilt = [event_from_dict(e.to_dict()) for e in events]
        assert rebuilt == list(events)
        assert any(isinstance(e, TaskAllocated) for e in rebuilt)
        assert any(isinstance(e, PaymentSettled) for e in rebuilt)

    def test_reassignment_event_round_trips_with_reason_fields(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=3, cost=1.0))
        platform.submit_bid(Bid(phone_id=2, arrival=1, departure=3, cost=4.0))
        platform.submit_tasks(1, value=20.0)
        platform.close_slot()
        platform.report_dropout(1)
        reassigned = [
            e for e in platform.events if isinstance(e, TaskReassigned)
        ]
        assert reassigned
        rebuilt = event_from_dict(reassigned[0].to_dict())
        assert rebuilt == reassigned[0]
        assert rebuilt.from_phone == 1
        assert rebuilt.to_phone == 2
