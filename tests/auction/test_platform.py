"""Unit tests for the incremental crowdsourcing platform."""

from __future__ import annotations

import pytest

from repro.auction import CrowdsourcingPlatform
from repro.auction.events import (
    BidSubmitted,
    PaymentSettled,
    SlotClosed,
    TaskAllocated,
    TasksAnnounced,
    TaskUnserved,
)
from repro.errors import MechanismError
from repro.model import Bid


class TestLifecycle:
    def test_slots_advance(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        assert platform.current_slot == 1
        platform.close_slot()
        assert platform.current_slot == 2
        assert not platform.finished
        platform.close_slot()
        assert platform.finished

    def test_finalize_requires_finish(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        platform.close_slot()
        with pytest.raises(MechanismError, match="not finished"):
            platform.finalize()

    def test_no_submissions_after_finish(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.close_slot()
        with pytest.raises(MechanismError, match="finished"):
            platform.submit_tasks(1, value=5.0)
        with pytest.raises(MechanismError, match="finished"):
            platform.close_slot()

    def test_empty_round_finalizes(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        for _ in range(3):
            platform.close_slot()
        outcome = platform.finalize()
        assert outcome.allocation == {}
        assert outcome.total_payment == pytest.approx(0.0)

    def test_invalid_payment_rule(self):
        with pytest.raises(MechanismError):
            CrowdsourcingPlatform(num_slots=1, payment_rule="bogus")


class TestBidSubmission:
    def test_bid_must_arrive_in_current_slot(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        with pytest.raises(MechanismError, match="arrival slot"):
            platform.submit_bid(
                Bid(phone_id=1, arrival=2, departure=3, cost=1.0)
            )

    def test_departure_within_horizon(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        with pytest.raises(MechanismError, match="horizon"):
            platform.submit_bid(
                Bid(phone_id=1, arrival=1, departure=4, cost=1.0)
            )

    def test_one_bid_per_phone(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=2, cost=1.0))
        platform.close_slot()
        with pytest.raises(MechanismError, match="already submitted"):
            platform.submit_bid(
                Bid(phone_id=1, arrival=2, departure=2, cost=1.0)
            )

    def test_pool_size_tracks_active_unallocated(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=1.0))
        platform.submit_bid(Bid(phone_id=2, arrival=1, departure=3, cost=2.0))
        assert platform.pool_size == 2
        platform.close_slot()  # no tasks; phone 1 departs after slot 1
        assert platform.pool_size == 1


class TestAllocationAndPayment:
    def test_cheapest_wins_and_paid_at_departure(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=2, cost=1.0))
        platform.submit_bid(Bid(phone_id=2, arrival=1, departure=2, cost=5.0))
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()
        # Winner decided in slot 1 but settled at departure (slot 2).
        settled_slot1 = [
            e for e in platform.events if isinstance(e, PaymentSettled)
        ]
        assert settled_slot1 == []
        platform.close_slot()
        outcome = platform.finalize()
        assert outcome.winners == (1,)
        assert outcome.payment(1) == pytest.approx(5.0)
        assert outcome.payment_slot(1) == 2

    def test_unserved_task_event(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()
        assert any(
            isinstance(e, TaskUnserved) for e in platform.events
        )

    def test_task_values_and_ids_sequential(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        created = platform.submit_tasks(2, value=7.0)
        assert [t.task_id for t in created] == [0, 1]
        assert [t.index for t in created] == [1, 2]
        platform.close_slot()
        more = platform.submit_tasks(1, value=7.0)
        assert more[0].task_id == 2
        assert more[0].slot == 2

    def test_negative_task_count_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        with pytest.raises(MechanismError):
            platform.submit_tasks(-1, value=5.0)

    def test_reserve_price_enforced(self):
        platform = CrowdsourcingPlatform(num_slots=1, reserve_price=True)
        platform.submit_bid(
            Bid(phone_id=1, arrival=1, departure=1, cost=50.0)
        )
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()
        assert platform.finalize().allocation == {}


class TestEventLog:
    def test_event_sequence(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=2.0))
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()
        kinds = [type(e) for e in platform.events]
        assert kinds == [
            BidSubmitted,
            TasksAnnounced,
            TaskAllocated,
            PaymentSettled,
            SlotClosed,
        ]

    def test_events_describe(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=2.0))
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()
        for event in platform.events:
            text = event.describe()
            assert "[slot 1]" in text


class TestApiGuards:
    def test_double_finalize_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.close_slot()
        platform.finalize()
        with pytest.raises(MechanismError, match="exactly one outcome"):
            platform.finalize()

    def test_advance_to_closes_empty_slots(self):
        platform = CrowdsourcingPlatform(num_slots=5)
        platform.advance_to(4)
        assert platform.current_slot == 4

    def test_advance_to_backwards_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=5)
        platform.advance_to(3)
        with pytest.raises(MechanismError, match="monotonically"):
            platform.advance_to(2)

    def test_advance_past_horizon_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=5)
        with pytest.raises(MechanismError, match="horizon"):
            platform.advance_to(6)

    def test_negative_max_reassignments_rejected(self):
        with pytest.raises(MechanismError, match="max_reassignments"):
            CrowdsourcingPlatform(num_slots=1, max_reassignments=-1)


class TestFaultReportGuards:
    def test_dropout_requires_a_bid(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        with pytest.raises(MechanismError, match="never submitted"):
            platform.report_dropout(9)

    def test_double_dropout_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=3, cost=1.0))
        platform.report_dropout(1)
        with pytest.raises(MechanismError, match="already dropped"):
            platform.report_dropout(1)

    def test_dropout_after_reported_departure_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=1.0))
        platform.close_slot()
        with pytest.raises(MechanismError, match="already left"):
            platform.report_dropout(1)

    def test_failure_requires_a_bid(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        with pytest.raises(MechanismError, match="never"):
            platform.report_task_failure(9)

    def test_failure_after_delivery_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=2)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=1.0))
        platform.submit_tasks(1, value=10.0)
        platform.close_slot()  # phone 1 settles at its departure (slot 1)
        with pytest.raises(MechanismError, match="already delivered"):
            platform.report_task_failure(1)

    def test_failure_after_dropout_rejected(self):
        platform = CrowdsourcingPlatform(num_slots=3)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=3, cost=1.0))
        platform.report_dropout(1)
        with pytest.raises(MechanismError, match="redundant"):
            platform.report_task_failure(1)

    def test_reports_rejected_after_finish(self):
        platform = CrowdsourcingPlatform(num_slots=1)
        platform.submit_bid(Bid(phone_id=1, arrival=1, departure=1, cost=1.0))
        platform.close_slot()
        with pytest.raises(MechanismError, match="finished"):
            platform.report_dropout(1)
        with pytest.raises(MechanismError, match="finished"):
            platform.report_task_failure(1)
