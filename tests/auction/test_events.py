"""Unit tests for the typed platform events."""

from __future__ import annotations

from repro.auction.events import (
    AuctionEvent,
    BidSubmitted,
    PaymentSettled,
    SlotClosed,
    TaskAllocated,
    TasksAnnounced,
    TaskUnserved,
)


class TestEventDescriptions:
    def test_base_event(self):
        assert AuctionEvent(slot=3).describe() == "[slot 3] AuctionEvent"

    def test_bid_submitted(self):
        event = BidSubmitted(
            slot=1, phone_id=5, arrival=1, departure=4, cost=7.5
        )
        text = event.describe()
        assert "[slot 1]" in text
        assert "phone 5" in text
        assert "[1, 4]" in text
        assert "7.5" in text

    def test_tasks_announced(self):
        assert "3 task(s)" in TasksAnnounced(slot=2, count=3).describe()

    def test_task_allocated(self):
        event = TaskAllocated(
            slot=2, task_id=9, phone_id=4, claimed_cost=3.0
        )
        text = event.describe()
        assert "task 9" in text and "phone 4" in text

    def test_task_unserved(self):
        assert "unserved" in TaskUnserved(slot=2, task_id=9).describe()

    def test_payment_settled(self):
        event = PaymentSettled(slot=5, phone_id=2, amount=12.5)
        assert "paid" in event.describe()
        assert "12.5" in event.describe()

    def test_slot_closed(self):
        assert "3 active" in SlotClosed(slot=1, pool_size=3).describe()


class TestEventSemantics:
    def test_events_are_frozen(self):
        import pytest

        event = TasksAnnounced(slot=1, count=2)
        with pytest.raises(Exception):
            event.count = 5  # type: ignore[misc]

    def test_events_are_value_objects(self):
        a = PaymentSettled(slot=1, phone_id=2, amount=3.0)
        b = PaymentSettled(slot=1, phone_id=2, amount=3.0)
        assert a == b

    def test_all_events_subclass_base(self):
        for cls in (
            BidSubmitted,
            TasksAnnounced,
            TaskAllocated,
            TaskUnserved,
            PaymentSettled,
            SlotClosed,
        ):
            assert issubclass(cls, AuctionEvent)
