"""Adversarial round-trip property tests for event (de)serialisation.

The journal trusts :func:`event_from_dict` to either reconstruct an
event exactly or fail with a typed, payload-carrying error — never to
half-decode.  These tests round-trip every registered event class and
then mutate the payloads adversarially (dropped fields, injected
fields, retagged, non-mapping) asserting the typed failure mode.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.auction.events import EVENT_TYPES, event_from_dict
from repro.errors import EventDecodeError, ValidationError

#: One deterministic sample value per annotated field type.
_SAMPLES = {"int": 3, "float": 2.5, "str": "reason-text", "bool": True}


def _sample_event(cls):
    kwargs = {
        field.name: _SAMPLES[field.type]
        for field in dataclasses.fields(cls)
    }
    return cls(**kwargs)


@pytest.fixture(params=sorted(EVENT_TYPES))
def event(request):
    return _sample_event(EVENT_TYPES[request.param])


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self, event):
        assert event_from_dict(event.to_dict()) == event

    def test_round_trip_survives_json(self, event):
        import json

        payload = json.loads(json.dumps(event.to_dict()))
        assert event_from_dict(payload) == event


class TestAdversarialPayloads:
    def test_non_mapping_payload_rejected(self):
        with pytest.raises(EventDecodeError, match="mapping"):
            event_from_dict(["BidSubmitted", 1])  # type: ignore[arg-type]

    def test_missing_tag_rejected(self):
        with pytest.raises(EventDecodeError, match="unknown event type"):
            event_from_dict({"slot": 1})

    def test_unknown_tag_rejected_and_payload_attached(self):
        payload = {"event": "TimeTravelled", "slot": 1}
        with pytest.raises(EventDecodeError) as excinfo:
            event_from_dict(payload)
        assert excinfo.value.payload == payload

    def test_dropped_field_rejected(self, event):
        payload = event.to_dict()
        victim = sorted(k for k in payload if k != "event")[0]
        del payload[victim]
        with pytest.raises(EventDecodeError, match="malformed"):
            event_from_dict(payload)

    def test_injected_field_rejected(self, event):
        payload = event.to_dict()
        payload["smuggled"] = 99
        with pytest.raises(EventDecodeError) as excinfo:
            event_from_dict(payload)
        assert excinfo.value.payload == payload

    def test_decode_error_is_a_value_error(self):
        """Callers catching ValueError (or ValidationError) keep working."""
        assert issubclass(EventDecodeError, ValidationError)
        assert issubclass(EventDecodeError, ValueError)
        with pytest.raises(ValueError):
            event_from_dict({"event": "nope"})
