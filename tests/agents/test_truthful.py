"""Unit tests for the truthful strategy."""

from __future__ import annotations

from repro.agents import TruthfulStrategy
from repro.model import SmartphoneProfile


class TestTruthfulStrategy:
    def test_reports_private_type_verbatim(self):
        profile = SmartphoneProfile(
            phone_id=3, arrival=2, departure=6, cost=11.5
        )
        bid = TruthfulStrategy().make_bid(profile)
        assert bid == profile.truthful_bid()

    def test_no_rng_needed(self):
        profile = SmartphoneProfile(
            phone_id=0, arrival=1, departure=1, cost=0.0
        )
        assert TruthfulStrategy().make_bid(profile, rng=None) is not None

    def test_name(self):
        assert TruthfulStrategy().name == "truthful"
