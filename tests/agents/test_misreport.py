"""Unit tests for the misreporting strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    CombinedMisreportStrategy,
    CostAdditiveStrategy,
    CostScalingStrategy,
    DelayedArrivalStrategy,
    EarlyDepartureStrategy,
    RandomMisreportStrategy,
)
from repro.errors import ValidationError
from repro.model import SmartphoneProfile


@pytest.fixture
def profile():
    return SmartphoneProfile(phone_id=1, arrival=2, departure=6, cost=10.0)


@pytest.fixture
def single_slot_profile():
    return SmartphoneProfile(phone_id=2, arrival=3, departure=3, cost=4.0)


class TestCostScaling:
    def test_inflation(self, profile):
        bid = CostScalingStrategy(1.5).make_bid(profile)
        assert bid.cost == pytest.approx(15.0)
        assert (bid.arrival, bid.departure) == (2, 6)

    def test_deflation(self, profile):
        bid = CostScalingStrategy(0.5).make_bid(profile)
        assert bid.cost == pytest.approx(5.0)

    def test_zero_factor_rejected(self):
        with pytest.raises(ValidationError):
            CostScalingStrategy(0.0)

    def test_factor_property(self):
        assert CostScalingStrategy(2.0).factor == 2.0


class TestCostAdditive:
    def test_addition(self, profile):
        assert CostAdditiveStrategy(3.0).make_bid(profile).cost == pytest.approx(13.0)

    def test_subtraction_clamped_at_zero(self, profile):
        assert CostAdditiveStrategy(-99.0).make_bid(profile).cost == pytest.approx(0.0)

    def test_non_number_rejected(self):
        with pytest.raises(ValidationError):
            CostAdditiveStrategy("five")  # type: ignore[arg-type]


class TestDelayedArrival:
    def test_delay_applied(self, profile):
        bid = DelayedArrivalStrategy(2).make_bid(profile)
        assert bid.arrival == 4
        assert bid.departure == 6
        assert bid.cost == pytest.approx(10.0)

    def test_zero_delay_is_truthful(self, profile):
        assert DelayedArrivalStrategy(0).make_bid(profile) == (
            profile.truthful_bid()
        )

    def test_abstains_when_window_emptied(self, single_slot_profile):
        assert DelayedArrivalStrategy(1).make_bid(single_slot_profile) is None

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            DelayedArrivalStrategy(-1)

    def test_result_is_feasible(self, profile):
        bid = DelayedArrivalStrategy(3).make_bid(profile)
        assert profile.is_feasible_claim(bid)


class TestEarlyDeparture:
    def test_advance_applied(self, profile):
        bid = EarlyDepartureStrategy(2).make_bid(profile)
        assert bid.departure == 4
        assert bid.arrival == 2

    def test_abstains_when_window_emptied(self, single_slot_profile):
        assert EarlyDepartureStrategy(1).make_bid(single_slot_profile) is None

    def test_result_is_feasible(self, profile):
        bid = EarlyDepartureStrategy(1).make_bid(profile)
        assert profile.is_feasible_claim(bid)


class TestCombined:
    def test_all_dimensions(self, profile):
        strategy = CombinedMisreportStrategy(
            cost_factor=2.0, arrival_delay=1, departure_advance=1
        )
        bid = strategy.make_bid(profile)
        assert bid.cost == pytest.approx(20.0)
        assert (bid.arrival, bid.departure) == (3, 5)

    def test_abstains_when_window_collapses(self, single_slot_profile):
        strategy = CombinedMisreportStrategy(arrival_delay=1)
        assert strategy.make_bid(single_slot_profile) is None

    def test_defaults_are_truthful(self, profile):
        assert CombinedMisreportStrategy().make_bid(profile) == (
            profile.truthful_bid()
        )


class TestRandomMisreport:
    def test_requires_rng(self, profile):
        with pytest.raises(ValidationError, match="rng"):
            RandomMisreportStrategy().make_bid(profile, rng=None)

    def test_always_feasible(self, profile):
        rng = np.random.default_rng(0)
        strategy = RandomMisreportStrategy()
        for _ in range(50):
            bid = strategy.make_bid(profile, rng)
            assert bid is not None
            assert profile.is_feasible_claim(bid)

    def test_deterministic_given_rng_state(self, profile):
        a = RandomMisreportStrategy().make_bid(
            profile, np.random.default_rng(7)
        )
        b = RandomMisreportStrategy().make_bid(
            profile, np.random.default_rng(7)
        )
        assert a == b

    def test_single_slot_profile_supported(self, single_slot_profile):
        rng = np.random.default_rng(1)
        bid = RandomMisreportStrategy().make_bid(single_slot_profile, rng)
        assert bid.arrival == bid.departure == 3
