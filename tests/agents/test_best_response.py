"""Unit tests for the best-response search."""

from __future__ import annotations

import pytest

from repro.agents import best_response_search, candidate_deviations
from repro.errors import ValidationError
from repro.mechanisms import OnlineGreedyMechanism
from repro.mechanisms.baselines import SecondPriceSlotMechanism
from repro.model import Bid, SmartphoneProfile
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)


class TestCandidateDeviations:
    def test_all_candidates_feasible(self):
        profile = SmartphoneProfile(
            phone_id=1, arrival=2, departure=4, cost=5.0
        )
        others = [Bid(phone_id=2, arrival=1, departure=3, cost=3.0)]
        for bid in candidate_deviations(profile, others):
            assert profile.is_feasible_claim(bid)

    def test_includes_other_bid_thresholds(self):
        profile = SmartphoneProfile(
            phone_id=1, arrival=1, departure=1, cost=5.0
        )
        others = [Bid(phone_id=2, arrival=1, departure=1, cost=3.0)]
        costs = {b.cost for b in candidate_deviations(profile, others)}
        assert 3.0 in costs

    def test_max_windows_cap(self):
        profile = SmartphoneProfile(
            phone_id=1, arrival=1, departure=6, cost=5.0
        )
        capped = candidate_deviations(profile, [], max_windows=2)
        windows = {(b.arrival, b.departure) for b in capped}
        assert len(windows) == 2
        assert (1, 6) in windows  # widest kept first

    def test_max_windows_validation(self):
        profile = SmartphoneProfile(
            phone_id=1, arrival=1, departure=2, cost=5.0
        )
        with pytest.raises(ValidationError):
            candidate_deviations(profile, [], max_windows=0)

    def test_own_bid_excluded_from_others(self):
        profile = SmartphoneProfile(
            phone_id=1, arrival=1, departure=1, cost=5.0
        )
        own = Bid(phone_id=1, arrival=1, departure=1, cost=5.0)
        # Should not crash nor duplicate thresholds from its own bid.
        candidates = candidate_deviations(profile, [own])
        assert all(b.phone_id == 1 for b in candidates)


class TestBestResponseSearch:
    def test_no_profitable_deviation_against_online(self):
        """The paper's mechanism survives the search (competitive case)."""
        mechanism = OnlineGreedyMechanism()
        profiles = paper_example_profiles()
        bids = paper_example_bids()
        schedule = paper_example_schedule()
        for profile in profiles:
            result = best_response_search(
                mechanism, profile, bids, schedule, max_windows=6
            )
            assert not result.profitable, (
                f"phone {profile.phone_id} gains {result.gain} with "
                f"{result.best_bid}"
            )

    def test_rediscovers_fig5_deviation_against_second_price(self):
        """Against per-slot second price, phone 1 profits by delaying."""
        mechanism = SecondPriceSlotMechanism()
        profiles = paper_example_profiles()
        phone1 = next(p for p in profiles if p.phone_id == 1)
        result = best_response_search(
            mechanism, phone1, paper_example_bids(), paper_example_schedule()
        )
        assert result.profitable
        assert result.gain >= 4.0 - 1e-9  # at least the paper's gain
        # The winning deviation misreports (the search may find an even
        # better deviation than the paper's 2-slot delay, e.g. cost
        # inflation up to the second price).
        assert result.best_bid != phone1.truthful_bid()
        # And the paper's specific delay deviation is itself profitable:
        delayed = phone1.truthful_bid().with_window(4, 5)
        outcome = mechanism.run(
            [b for b in paper_example_bids() if b.phone_id != 1] + [delayed],
            paper_example_schedule(),
        )
        delayed_utility = outcome.payment(1) - phone1.cost
        assert delayed_utility - result.truthful_utility == pytest.approx(4.0)

    def test_result_counts_candidates(self):
        mechanism = OnlineGreedyMechanism()
        profile = SmartphoneProfile(
            phone_id=1, arrival=1, departure=1, cost=5.0
        )
        result = best_response_search(
            mechanism,
            profile,
            [Bid(phone_id=2, arrival=1, departure=1, cost=3.0)],
            paper_example_schedule(),
        )
        assert result.num_candidates > 1

    def test_truthful_utility_reported(self):
        mechanism = OnlineGreedyMechanism()
        profiles = paper_example_profiles()
        phone1 = next(p for p in profiles if p.phone_id == 1)
        result = best_response_search(
            mechanism,
            phone1,
            paper_example_bids(),
            paper_example_schedule(),
            max_windows=4,
        )
        # Phone 1 wins truthfully and is paid 9 against a cost of 3.
        assert result.truthful_utility == pytest.approx(6.0)
        assert result.best_utility >= result.truthful_utility
