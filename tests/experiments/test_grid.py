"""Unit tests for 2-D grid sweeps and heatmap rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig
from repro.experiments.grid import render_grid_heatmap, run_grid
from repro.simulation import WorkloadConfig


@pytest.fixture(scope="module")
def grid_result():
    config = ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=6,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        ),
        repetitions=2,
        base_seed=3,
    )
    return run_grid(
        config,
        param_x="task_rate",
        values_x=(1.0, 3.0),
        param_y="num_slots",
        values_y=(4, 8),
    )


class TestRunGrid:
    def test_shape(self, grid_result):
        assert grid_result.values_x == (1.0, 3.0)
        assert grid_result.values_y == (4, 8)
        assert len(grid_result.cells) == 2
        assert len(grid_result.cells[0]) == 2

    def test_metric_grid_values(self, grid_result):
        grid = grid_result.metric_grid("online", "welfare")
        assert len(grid) == 2 and len(grid[0]) == 2
        # More slots and more tasks => more welfare: corner dominance.
        assert grid[1][1] > grid[0][0]

    def test_welfare_monotone_along_both_axes(self, grid_result):
        grid = grid_result.metric_grid("offline", "welfare")
        assert grid[0][1] >= grid[0][0]  # more tasks helps
        assert grid[1][0] >= grid[0][0]  # more slots helps

    def test_unknown_label(self, grid_result):
        with pytest.raises(ExperimentError, match="labelled"):
            grid_result.metric_grid("bogus")

    def test_same_param_rejected(self):
        config = ExperimentConfig(repetitions=1)
        with pytest.raises(ExperimentError, match="must differ"):
            run_grid(
                config,
                param_x="num_slots",
                values_x=(1,),
                param_y="num_slots",
                values_y=(2,),
            )

    def test_empty_axis_rejected(self):
        config = ExperimentConfig(repetitions=1)
        with pytest.raises(ExperimentError, match="empty"):
            run_grid(
                config,
                param_x="num_slots",
                values_x=(),
                param_y="task_rate",
                values_y=(1.0,),
            )


class TestHeatmap:
    def test_renders_axes_and_range(self, grid_result):
        text = render_grid_heatmap(grid_result, "online", "welfare")
        assert "rows = num_slots" in text
        assert "cols = task_rate" in text
        assert "range" in text
        assert "1.0" in text and "3.0" in text

    def test_contains_shade_bars(self, grid_result):
        text = render_grid_heatmap(grid_result, "online", "welfare")
        bars = [line for line in text.splitlines() if line.endswith("|")]
        assert len(bars) == 2  # one per row

    def test_all_metrics_render(self, grid_result):
        for metric in ("welfare", "total_payment", "tasks_served"):
            assert render_grid_heatmap(grid_result, "offline", metric)
