"""Parallel sweep execution — byte-identity with the serial path.

``run_sweep(..., workers=N)`` fans repetitions out over a process pool
but must remain an implementation detail: identical aggregation, the
same checkpoint bytes, the same retry/partial semantics.  These tests
pin that contract, including checkpoint-resume *under* parallelism.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    CheckpointStore,
    ExperimentConfig,
    SweepSpec,
    point_to_dict,
)
from repro.experiments.parallel import (
    RepetitionResult,
    run_repetition,
    run_repetitions_parallel,
)
from repro.experiments.runner import run_point, run_sweep
from repro.simulation import WorkloadConfig


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=8,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        ),
        repetitions=4,
        base_seed=77,
    )


@pytest.fixture(scope="module")
def spec(fast_config):
    return SweepSpec(
        name="parallel-test",
        title="t",
        param="num_slots",
        values=(6, 8),
        config=fast_config,
    )


def _point_bytes(point) -> str:
    return json.dumps(point_to_dict(point), sort_keys=True)


class TestRunRepetition:
    def test_worker_row_matches_serial_engine(self, fast_config):
        seed = next(iter(fast_config.seeds()))
        result = run_repetition(
            fast_config.workload,
            fast_config.mechanisms,
            seed,
            retries=0,
            backoff=0.0,
            on_failure="raise",
        )
        assert isinstance(result, RepetitionResult)
        assert not result.failed
        assert result.retried == 0
        assert len(result.row) == len(fast_config.mechanisms)
        labels = [r.mechanism_name for r in result.row]
        assert labels == [s.name for s in fast_config.mechanisms]

    def test_workers_must_be_positive(self, fast_config):
        with pytest.raises(ExperimentError, match="workers"):
            run_repetitions_parallel(
                fast_config.workload,
                fast_config.mechanisms,
                seeds=[1],
                retries=0,
                backoff=0.0,
                on_failure="raise",
                workers=0,
            )


class TestRunPointParallel:
    def test_equal_to_serial(self, fast_config):
        serial = run_point(fast_config, param="num_slots", value=8)
        parallel = run_point(
            fast_config, param="num_slots", value=8, workers=4
        )
        assert _point_bytes(serial) == _point_bytes(parallel)

    def test_workers_must_be_positive(self, fast_config):
        with pytest.raises(ExperimentError, match="workers"):
            run_point(fast_config, param="num_slots", value=8, workers=0)

    def test_sleep_stub_rejected_in_parallel(self, fast_config):
        with pytest.raises(ExperimentError, match="sleep stub"):
            run_point(
                fast_config,
                param="num_slots",
                value=8,
                workers=2,
                sleep=lambda _: None,
            )


class TestRunSweepParallel:
    def test_byte_identical_to_serial(self, spec):
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=4)
        assert len(serial.points) == len(parallel.points)
        for a, b in zip(serial.points, parallel.points):
            assert _point_bytes(a) == _point_bytes(b)

    def test_checkpoint_resume_under_parallelism(self, tmp_path, spec):
        """A serial run killed mid-sweep resumes with workers=4 and
        still aggregates byte-identically."""
        uninterrupted = run_sweep(spec)

        store = CheckpointStore(tmp_path)
        store.save_point(spec.name, uninterrupted.points[0])  # "killed"
        resumed = run_sweep(spec, checkpoint=store, workers=4)

        for fresh, loaded in zip(uninterrupted.points, resumed.points):
            assert _point_bytes(fresh) == _point_bytes(loaded)

    def test_parallel_sweep_populates_the_store(self, tmp_path, spec):
        store = CheckpointStore(tmp_path)
        run_sweep(spec, checkpoint=store, workers=2)
        for value in spec.values:
            assert store.path_for(spec.name, spec.param, value).exists()

    def test_workers_must_be_positive(self, spec):
        with pytest.raises(ExperimentError, match="workers"):
            run_sweep(spec, workers=0)
