"""Unit tests for sweep report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    SweepSpec,
    render_sweep_csv,
    render_sweep_table,
    run_sweep,
)
from repro.experiments.report import render_sweep_chart
from repro.simulation import WorkloadConfig


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=6,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        ),
        repetitions=2,
        base_seed=9,
    )
    spec = SweepSpec(
        name="mini",
        title="mini sweep",
        param="num_slots",
        values=(5, 8),
        config=config,
    )
    return run_sweep(spec)


class TestTable:
    def test_contains_param_and_labels(self, result):
        text = render_sweep_table(result, "welfare")
        assert "num_slots" in text
        assert "offline welfare" in text
        assert "online welfare" in text

    def test_one_row_per_value(self, result):
        text = render_sweep_table(result, "welfare")
        # title + underline + header + separator + 2 rows
        assert len(text.splitlines()) == 6

    def test_custom_title(self, result):
        text = render_sweep_table(result, "welfare", title="Fig. 6")
        assert text.splitlines()[0] == "Fig. 6"

    def test_unknown_metric(self, result):
        with pytest.raises(ExperimentError, match="unknown metric"):
            render_sweep_table(result, "bogus")

    def test_all_metrics_render(self, result):
        for metric in (
            "welfare",
            "overpayment_ratio",
            "total_payment",
            "tasks_served",
        ):
            assert render_sweep_table(result, metric)


class TestCsv:
    def test_header_and_rows(self, result):
        csv = render_sweep_csv(result, "welfare")
        lines = csv.strip().splitlines()
        assert lines[0].startswith("num_slots,offline_welfare_mean")
        assert len(lines) == 3

    def test_values_parse_as_float(self, result):
        csv = render_sweep_csv(result, "welfare")
        for line in csv.strip().splitlines()[1:]:
            cells = line.split(",")
            assert float(cells[1]) >= 0.0


class TestChart:
    def test_chart_contains_legend(self, result):
        chart = render_sweep_chart(result, "welfare")
        assert "= offline" in chart
        assert "= online" in chart

    def test_chart_axis_labels(self, result):
        chart = render_sweep_chart(result, "welfare")
        assert "5" in chart and "8" in chart

    def test_unknown_metric(self, result):
        with pytest.raises(ExperimentError):
            render_sweep_chart(result, "bogus")
