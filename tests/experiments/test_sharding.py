"""Sharded campaign engine: planning, byte-identity, durability, lifecycle.

The acceptance contract under test:

* Assembled results pickle **byte-identically** across worker counts,
  shard submission orders, and resume points (50-seed property suite).
* A city's result matches the serial ``run_campaign`` round for round.
* Checkpoints stream per round, tolerate torn tails, and resume
  mid-shard byte-identically — including after an injected crash.
* Shared-memory segments are closed and unlinked on normal exit, on
  worker exceptions, and on injected crashes (20-seed property), with
  no resource-tracker leak warnings.
"""

from __future__ import annotations

import glob
import pickle
import subprocess
import sys

import pytest

from repro.auction.multi_round import run_campaign
from repro.errors import CheckpointError, ReproError, ShardingError
from repro.experiments.config import MechanismSpec
from repro.experiments.sharding import (
    CityConfig,
    ShardCheckpointWriter,
    load_shard_checkpoint,
    plan_shards,
    run_sharded_campaign,
    shard_checkpoint_path,
)
from repro.faults.crash import SimulatedCrash
from repro.simulation.workload import WorkloadConfig

SPEC = MechanismSpec.of("online-greedy")


def tiny_workload(**overrides):
    base = dict(
        num_slots=6,
        phone_rate=2.0,
        task_rate=1.0,
        mean_cost=10.0,
        mean_active_length=2,
        task_value=16.0,
    )
    base.update(overrides)
    return WorkloadConfig(**base)


def two_cities(rounds=(3, 2)):
    return [
        CityConfig("east", tiny_workload(), num_rounds=rounds[0]),
        CityConfig(
            "west", tiny_workload(phone_rate=3.0), num_rounds=rounds[1]
        ),
    ]


def result_bytes(result) -> bytes:
    return pickle.dumps(result, protocol=4)


class TestPlanning:
    def test_even_split_with_remainder(self):
        plans = plan_shards(
            [CityConfig("solo", tiny_workload(), num_rounds=7)],
            shards_per_city=3,
        )
        ranges = [(p.round_start, p.round_stop) for p in plans]
        assert ranges == [(0, 3), (3, 5), (5, 7)]
        assert [p.shard_id for p in plans] == [0, 1, 2]

    def test_city_never_gets_more_shards_than_rounds(self):
        plans = plan_shards(
            [CityConfig("solo", tiny_workload(), num_rounds=2)],
            shards_per_city=5,
        )
        assert len(plans) == 2

    def test_shard_ids_stable_across_cities(self):
        plans = plan_shards(two_cities(), shards_per_city=2)
        assert [(p.shard_id, p.city_name) for p in plans] == [
            (0, "east"),
            (1, "east"),
            (2, "west"),
            (3, "west"),
        ]

    def test_explicit_city_seed_wins(self):
        city = CityConfig("fixed", tiny_workload(), num_rounds=1, seed=99)
        (plan,) = plan_shards([city], seed=0)
        assert plan.city_seed == 99

    def test_city_seed_depends_on_name_and_position(self):
        (a,) = plan_shards(
            [CityConfig("aa", tiny_workload(), num_rounds=1)], seed=1
        )
        (b,) = plan_shards(
            [CityConfig("bb", tiny_workload(), num_rounds=1)], seed=1
        )
        assert a.city_seed != b.city_seed

    def test_duplicate_city_names_rejected(self):
        cities = [
            CityConfig("dup", tiny_workload(), num_rounds=1),
            CityConfig("dup", tiny_workload(), num_rounds=1),
        ]
        with pytest.raises(ShardingError, match="duplicate city names"):
            plan_shards(cities)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ShardingError, match="must not be empty"):
            plan_shards([])

    def test_city_name_pattern_enforced(self):
        with pytest.raises(ShardingError, match="city name"):
            CityConfig("bad/name", tiny_workload(), num_rounds=1)


class TestSerialParity:
    def test_city_results_match_run_campaign(self):
        """Shard boundaries are invisible: every round's pickle bytes
        equal the serial campaign's, and the aggregates agree."""
        cities = two_cities()
        sharded = run_sharded_campaign(
            SPEC, cities, seed=11, workers=1, shards_per_city=2
        )
        seeds = {
            p.city_name: p.city_seed
            for p in plan_shards(cities, shards_per_city=2, seed=11)
        }
        for city in cities:
            serial = run_campaign(
                SPEC.build(),
                city.workload,
                num_rounds=city.num_rounds,
                seed=seeds[city.name],
            )
            shard_city = sharded.city(city.name)
            assert len(serial.rounds) == len(shard_city.rounds)
            for serial_round, shard_round in zip(
                serial.rounds, shard_city.rounds
            ):
                assert pickle.dumps(
                    serial_round, protocol=4
                ) == pickle.dumps(shard_round, protocol=4)
            # Exact (byte-level) aggregate identity, not approximate.
            for attr in (
                "total_welfare",
                "total_payment",
                "welfare_per_round",
                "overpayment_per_round",
            ):
                assert pickle.dumps(
                    getattr(serial, attr), protocol=4
                ) == pickle.dumps(getattr(shard_city, attr), protocol=4)

    def test_totals_sum_city_aggregates(self):
        result = run_sharded_campaign(SPEC, two_cities(), seed=4)
        assert result.total_welfare == sum(
            r.total_welfare for _, r in result.cities
        )
        assert result.num_rounds == 5

    def test_unknown_city_lookup_raises(self):
        result = run_sharded_campaign(SPEC, two_cities(), seed=4)
        with pytest.raises(ShardingError, match="unknown city"):
            result.city("atlantis")


class TestByteIdentityProperty:
    """The 50-seed acceptance suite: worker counts × submission orders
    × resume-from-mid-shard, all pickle-byte-identical."""

    @pytest.mark.parametrize("seed_block", range(10))
    def test_fifty_seeds_byte_identical(self, seed_block, tmp_path):
        for lane in range(5):
            seed = seed_block * 5 + lane
            cities = two_cities(rounds=(3, 2))
            reference = result_bytes(
                run_sharded_campaign(
                    SPEC, cities, seed=seed, workers=1, shards_per_city=2
                )
            )
            # Rotate through the fuzz matrix: worker count and a
            # seed-dependent shard submission permutation.
            workers = (2, 4)[seed % 2]
            order = [(i + seed) % 4 for i in range(4)]
            fuzzed = result_bytes(
                run_sharded_campaign(
                    SPEC,
                    cities,
                    seed=seed,
                    workers=workers,
                    shards_per_city=2,
                    submission_order=order,
                )
            )
            assert fuzzed == reference, (
                f"seed {seed}: workers={workers} order={order} diverged"
            )
            if seed % 5 == 0:
                # Resume from mid-shard: pre-seed a partial checkpoint
                # (first round of shard 0 only), then rerun.
                ckpt = tmp_path / f"seed-{seed}"
                full = run_sharded_campaign(
                    SPEC,
                    cities,
                    seed=seed,
                    workers=1,
                    shards_per_city=2,
                    checkpoint_dir=ckpt,
                )
                assert result_bytes(full) == reference
                plans = plan_shards(cities, shards_per_city=2, seed=seed)
                keep = shard_checkpoint_path(ckpt, plans[0])
                lines = keep.read_bytes().splitlines(keepends=True)
                keep.write_bytes(lines[0])  # drop all but round 0
                resumed = run_sharded_campaign(
                    SPEC,
                    cities,
                    seed=seed,
                    workers=2,
                    shards_per_city=2,
                    checkpoint_dir=ckpt,
                )
                assert result_bytes(resumed) == reference


class TestCheckpointing:
    def test_records_stream_per_round(self, tmp_path):
        cities = [CityConfig("solo", tiny_workload(), num_rounds=4)]
        run_sharded_campaign(
            SPEC, cities, seed=3, shards_per_city=2, checkpoint_dir=tmp_path
        )
        plans = plan_shards(cities, shards_per_city=2, seed=3)
        for plan in plans:
            loaded = load_shard_checkpoint(
                shard_checkpoint_path(tmp_path, plan)
            )
            assert sorted(loaded) == list(plan.round_indices)

    def test_full_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        cities = two_cities()
        first = run_sharded_campaign(
            SPEC, cities, seed=8, checkpoint_dir=tmp_path
        )
        import repro.experiments.sharding as sharding_mod

        def exploding(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume recomputed a checkpointed round")

        monkeypatch.setattr(sharding_mod, "_run_shard_round", exploding)
        resumed = run_sharded_campaign(
            SPEC, cities, seed=8, checkpoint_dir=tmp_path
        )
        assert result_bytes(resumed) == result_bytes(first)

    def test_torn_tail_truncated_and_recomputed(self, tmp_path):
        cities = [CityConfig("solo", tiny_workload(), num_rounds=3)]
        reference = result_bytes(
            run_sharded_campaign(SPEC, cities, seed=5)
        )
        run_sharded_campaign(
            SPEC, cities, seed=5, checkpoint_dir=tmp_path
        )
        (plan,) = plan_shards(cities, seed=5)
        target = shard_checkpoint_path(tmp_path, plan)
        intact = target.read_bytes().splitlines(keepends=True)
        target.write_bytes(intact[0] + intact[1][: len(intact[1]) // 2])
        loaded = load_shard_checkpoint(target)
        assert sorted(loaded) == [0]
        assert target.read_bytes() == intact[0]  # torn tail truncated
        resumed = run_sharded_campaign(
            SPEC, cities, seed=5, checkpoint_dir=tmp_path
        )
        assert result_bytes(resumed) == reference

    def test_corrupt_checksum_ends_valid_prefix(self, tmp_path):
        writer = ShardCheckpointWriter(tmp_path / "s.ckpt.jsonl")
        writer.append(0, b"alpha")
        writer.append(1, b"beta")
        writer.close()
        raw = (tmp_path / "s.ckpt.jsonl").read_bytes()
        (tmp_path / "s.ckpt.jsonl").write_bytes(
            raw.replace(b'"round":1', b'"round":2')
        )
        loaded = load_shard_checkpoint(tmp_path / "s.ckpt.jsonl")
        assert loaded == {0: b"alpha"}

    def test_duplicate_round_later_record_wins(self, tmp_path):
        writer = ShardCheckpointWriter(tmp_path / "d.ckpt.jsonl")
        writer.append(0, b"old")
        writer.append(0, b"new")
        writer.close()
        assert load_shard_checkpoint(tmp_path / "d.ckpt.jsonl") == {
            0: b"new"
        }

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert load_shard_checkpoint(tmp_path / "absent.jsonl") == {}

    def test_writer_error_surfaces_on_close(self, tmp_path):
        writer = ShardCheckpointWriter(tmp_path / "e.ckpt.jsonl")
        writer._handle.close()  # provoke a write failure in the thread
        writer.append(0, b"x")
        with pytest.raises(ValueError):
            writer.close()

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ShardingError, match="fsync"):
            ShardCheckpointWriter(tmp_path / "f.jsonl", fsync="sometimes")
        with pytest.raises(ShardingError, match="fsync"):
            run_sharded_campaign(
                SPEC, two_cities(), seed=0, fsync="sometimes"
            )


class TestCrashInjection:
    def test_simulated_crash_mid_shard_then_resume(self, tmp_path):
        cities = [CityConfig("solo", tiny_workload(), num_rounds=4)]
        reference = result_bytes(
            run_sharded_campaign(SPEC, cities, seed=13)
        )
        appended = {"n": 0}

        def crash_hook(count: int) -> None:
            appended["n"] = count
            if count == 2:
                raise SimulatedCrash("die after the second append")

        with pytest.raises(SimulatedCrash):
            run_sharded_campaign(
                SPEC,
                cities,
                seed=13,
                checkpoint_dir=tmp_path,
                fsync="always",
                checkpoint_crash_hook=crash_hook,
            )
        assert appended["n"] == 2
        (plan,) = plan_shards(cities, seed=13)
        survived = load_shard_checkpoint(
            shard_checkpoint_path(tmp_path, plan)
        )
        assert sorted(survived) == [0, 1]
        resumed = run_sharded_campaign(
            SPEC, cities, seed=13, checkpoint_dir=tmp_path
        )
        assert result_bytes(resumed) == reference

    def test_crash_hook_requires_serial_workers(self, tmp_path):
        with pytest.raises(ShardingError, match="workers=1"):
            run_sharded_campaign(
                SPEC,
                two_cities(),
                seed=0,
                workers=2,
                checkpoint_dir=tmp_path,
                checkpoint_crash_hook=lambda n: None,
            )

    def test_crash_hook_requires_checkpoint_dir(self):
        with pytest.raises(ShardingError, match="checkpoint_dir"):
            run_sharded_campaign(
                SPEC,
                two_cities(),
                seed=0,
                checkpoint_crash_hook=lambda n: None,
            )


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ShardingError, match="workers"):
            run_sharded_campaign(SPEC, two_cities(), workers=0)

    def test_submission_order_must_be_permutation(self):
        with pytest.raises(ShardingError, match="permutation"):
            run_sharded_campaign(
                SPEC, two_cities(), submission_order=[0, 0, 1, 1]
            )

    def test_missing_rounds_detected_at_assembly(self, tmp_path):
        """A checkpoint claiming rounds outside its shard is ignored and
        the gap recomputed; a genuinely missing round raises."""
        from repro.experiments.sharding import _assemble, plan_shards

        cities = [CityConfig("solo", tiny_workload(), num_rounds=2)]
        plans = plan_shards(cities, seed=0)
        with pytest.raises(ShardingError, match="no outcome"):
            _assemble(cities, plans, {}, {})


class SegmentNameSpy:
    """Wraps ``_create_segment`` to record every segment name created."""

    def __init__(self, real):
        self.real = real
        self.names = []

    def __call__(self, nbytes):
        segment = self.real(nbytes)
        self.names.append(segment.name)
        return segment


def assert_segments_gone(names):
    from multiprocessing import shared_memory

    assert names, "spy captured no segments"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSharedMemoryLifecycle:
    @pytest.fixture
    def spy(self, monkeypatch):
        import repro.experiments.sharding as sharding_mod

        spy = SegmentNameSpy(sharding_mod._create_segment)
        monkeypatch.setattr(sharding_mod, "_create_segment", spy)
        return spy

    @pytest.mark.parametrize("workers", [1, 2])
    def test_normal_exit_unlinks_every_segment(self, spy, workers):
        run_sharded_campaign(
            SPEC, two_cities(), seed=1, workers=workers, shards_per_city=2
        )
        assert len(spy.names) == 4
        assert_segments_gone(spy.names)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_exception_unlinks_segments(self, spy, workers):
        bad = MechanismSpec.of("online-greedy", engine="no-such-engine")
        with pytest.raises(ReproError):
            run_sharded_campaign(
                bad, two_cities(), seed=1, workers=workers
            )
        assert_segments_gone(spy.names)

    def test_injected_crash_unlinks_segments(self, spy, tmp_path):
        def crash_hook(count: int) -> None:
            raise SimulatedCrash("immediate")

        with pytest.raises(SimulatedCrash):
            run_sharded_campaign(
                SPEC,
                two_cities(),
                seed=1,
                checkpoint_dir=tmp_path,
                checkpoint_crash_hook=crash_hook,
            )
        assert_segments_gone(spy.names)

    def test_twenty_seed_lifecycle_property(self, spy):
        """No segment survives any of 20 seeded campaigns, and no
        repro-shard segment is left in /dev/shm afterwards."""
        for seed in range(20):
            run_sharded_campaign(
                SPEC,
                [CityConfig("prop", tiny_workload(), num_rounds=2)],
                seed=seed,
                workers=(seed % 2) + 1,
                shards_per_city=2,
            )
        assert len(spy.names) == 40
        assert_segments_gone(spy.names)
        assert glob.glob("/dev/shm/repro-shard-*") == []

    def test_no_resource_tracker_warnings(self, tmp_path):
        """A pool run in a fresh interpreter exits with clean stderr —
        in particular no resource_tracker 'leaked shared_memory' noise."""
        script = (
            "from repro.experiments.sharding import CityConfig, "
            "run_sharded_campaign\n"
            "from repro.experiments.config import MechanismSpec\n"
            "from repro.simulation.workload import WorkloadConfig\n"
            "wl = WorkloadConfig(num_slots=6, phone_rate=2.0, "
            "task_rate=1.0, mean_cost=10.0, mean_active_length=2, "
            "task_value=16.0)\n"
            "cities = [CityConfig('east', wl, 3), CityConfig('west', wl, 2)]\n"
            "run_sharded_campaign(MechanismSpec.of('online-greedy'), "
            "cities, seed=2, workers=2, shards_per_city=2)\n"
            "print('done')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "done" in completed.stdout
        assert "resource_tracker" not in completed.stderr
        assert "leaked" not in completed.stderr
