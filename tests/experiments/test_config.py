"""Unit tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, MechanismSpec
from repro.experiments.config import (
    apply_workload_override,
    paper_mechanisms,
)
from repro.mechanisms import OfflineVCGMechanism
from repro.simulation import WorkloadConfig


class TestMechanismSpec:
    def test_of_builder(self):
        spec = MechanismSpec.of("fixed-price", price=5.0)
        assert spec.name == "fixed-price"
        assert dict(spec.kwargs) == {"price": 5.0}

    def test_build(self):
        spec = MechanismSpec.of("offline-vcg")
        assert isinstance(spec.build(), OfflineVCGMechanism)

    def test_build_with_kwargs(self):
        spec = MechanismSpec.of("fixed-price", price=7.5)
        assert spec.build().price == pytest.approx(7.5)

    def test_display_label_defaults_to_name(self):
        assert MechanismSpec.of("offline-vcg").display_label == "offline-vcg"

    def test_custom_label(self):
        spec = MechanismSpec.of("online-greedy", label="online+reserve",
                                reserve_price=True)
        assert spec.display_label == "online+reserve"

    def test_hashable(self):
        assert hash(MechanismSpec.of("offline-vcg")) == hash(
            MechanismSpec.of("offline-vcg")
        )


class TestExperimentConfig:
    def test_defaults_use_paper_mechanisms(self):
        config = ExperimentConfig()
        labels = [s.display_label for s in config.mechanisms]
        assert labels == ["offline", "online"]
        assert config.workload == WorkloadConfig.paper_default()

    def test_seeds(self):
        config = ExperimentConfig(repetitions=3, base_seed=100)
        assert config.seeds() == (100, 101, 102)

    def test_empty_mechanisms_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(mechanisms=())

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(repetitions=0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ExperimentError, match="unique"):
            ExperimentConfig(
                mechanisms=(
                    MechanismSpec.of("offline-vcg"),
                    MechanismSpec.of("offline-vcg"),
                )
            )

    def test_describe_is_json_friendly(self):
        import json

        text = json.dumps(ExperimentConfig().describe())
        assert "offline" in text

    def test_replace(self):
        config = ExperimentConfig().replace(repetitions=2)
        assert config.repetitions == 2


class TestWorkloadOverride:
    def test_valid_override(self):
        workload = apply_workload_override(
            WorkloadConfig.paper_default(), "num_slots", 80
        )
        assert workload.num_slots == 80

    def test_unknown_parameter(self):
        with pytest.raises(ExperimentError, match="unknown workload parameter"):
            apply_workload_override(
                WorkloadConfig.paper_default(), "bogus", 1
            )

    def test_paper_mechanisms_truthful(self):
        for spec in paper_mechanisms():
            assert spec.build().is_truthful
