"""Checkpoint/resume and graceful-degradation tests.

The headline property: a sweep killed mid-run and resumed from its
checkpoints aggregates *byte-identically* to an uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError, ExperimentError
from repro.experiments import (
    CheckpointStore,
    ExperimentConfig,
    SweepSpec,
    point_from_dict,
    point_to_dict,
)
from repro.experiments.checkpoint import SCHEMA_VERSION
from repro.experiments.runner import run_point, run_sweep
from repro.simulation import WorkloadConfig


@pytest.fixture
def fast_config():
    return ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=8,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        ),
        repetitions=3,
        base_seed=50,
    )


@pytest.fixture
def spec(fast_config):
    return SweepSpec(
        name="resume-test",
        title="t",
        param="num_slots",
        values=(6, 8, 10),
        config=fast_config,
    )


class FlakyWorkload:
    """Delegates to a real workload but fails the first ``fail_times``
    generations of the configured seeds."""

    def __init__(self, base, fail_seeds, fail_times=1):
        self._base = base
        self._remaining = {seed: fail_times for seed in fail_seeds}

    def generate(self, seed):
        if self._remaining.get(seed, 0) > 0:
            self._remaining[seed] -= 1
            raise RuntimeError(f"transient failure for seed {seed}")
        return self._base.generate(seed)


class TestStoreRoundTrip:
    def test_save_then_load(self, tmp_path, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        store = CheckpointStore(tmp_path)
        path = store.save_point("sweep", point)
        assert path.exists()
        loaded = store.load_point("sweep", "num_slots", 8)
        assert loaded == point

    def test_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_point("sweep", "num_slots", 8) is None

    def test_no_temp_files_left_behind(self, tmp_path, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        store = CheckpointStore(tmp_path)
        store.save_point("sweep", point)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_point_dict_round_trip(self, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        assert point_from_dict(point_to_dict(point)) == point

    def test_malformed_point_payload_raises(self):
        with pytest.raises(CheckpointError, match="malformed"):
            point_from_dict({"param": "x"})


class TestCorruptionHandling:
    def _saved(self, tmp_path, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        store = CheckpointStore(tmp_path)
        path = store.save_point("sweep", point)
        return store, path

    def test_truncated_file_treated_as_missing(self, tmp_path, fast_config):
        store, path = self._saved(tmp_path, fast_config)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load_point("sweep", "num_slots", 8) is None
        # The corrupt file was quarantined, not deleted: the evidence
        # survives under *.corrupt and a clean re-save is possible.
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_quarantined_point_can_be_resaved(self, tmp_path, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        store = CheckpointStore(tmp_path)
        path = store.save_point("sweep", point)
        path.write_text("{corrupt")
        assert store.load_point("sweep", "num_slots", 8) is None
        store.save_point("sweep", point)
        assert store.load_point("sweep", "num_slots", 8) == point
        assert path.with_name(path.name + ".corrupt").exists()

    def test_strict_load_leaves_corrupt_file_in_place(
        self, tmp_path, fast_config
    ):
        store, path = self._saved(tmp_path, fast_config)
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            store.load_point("sweep", "num_slots", 8, strict=True)
        assert path.exists()
        assert not path.with_name(path.name + ".corrupt").exists()

    def test_truncated_file_strict_raises(self, tmp_path, fast_config):
        store, path = self._saved(tmp_path, fast_config)
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load_point("sweep", "num_slots", 8, strict=True)

    def test_checksum_mismatch_detected(self, tmp_path, fast_config):
        store, path = self._saved(tmp_path, fast_config)
        document = json.loads(path.read_text())
        document["payload"]["failed_repetitions"] = 99
        path.write_text(json.dumps(document))
        # Strict first: the non-strict load below quarantines the file.
        with pytest.raises(CheckpointError, match="checksum"):
            store.load_point("sweep", "num_slots", 8, strict=True)
        assert store.load_point("sweep", "num_slots", 8) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_unknown_schema_rejected(self, tmp_path, fast_config):
        store, path = self._saved(tmp_path, fast_config)
        document = json.loads(path.read_text())
        document["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="schema"):
            store.load_point("sweep", "num_slots", 8, strict=True)

    def test_alien_point_rejected(self, tmp_path, fast_config):
        point = run_point(fast_config, param="num_slots", value=8)
        store = CheckpointStore(tmp_path)
        path = store.save_point("sweep", point)
        # File moved under the wrong value's name.
        alien = store.path_for("sweep", "num_slots", 10)
        alien.write_text(path.read_text())
        # Strict first: the non-strict load below quarantines the file.
        with pytest.raises(CheckpointError, match="requested"):
            store.load_point("sweep", "num_slots", 10, strict=True)
        assert store.load_point("sweep", "num_slots", 10) is None
        assert alien.with_name(alien.name + ".corrupt").exists()


class TestResume:
    def test_resumed_sweep_is_byte_identical(self, tmp_path, spec):
        """Kill-and-resume: precompute some points' checkpoints, then
        run the sweep against the store — aggregation must match an
        uninterrupted run byte for byte."""
        uninterrupted = run_sweep(spec)

        store = CheckpointStore(tmp_path)
        for point in uninterrupted.points[:2]:  # "killed" after 2 points
            store.save_point(spec.name, point)
        resumed = run_sweep(spec, checkpoint=store)

        for fresh, loaded in zip(uninterrupted.points, resumed.points):
            assert json.dumps(
                point_to_dict(fresh), sort_keys=True
            ) == json.dumps(point_to_dict(loaded), sort_keys=True)

    def test_completed_points_not_recomputed(self, tmp_path, spec, monkeypatch):
        store = CheckpointStore(tmp_path)
        run_sweep(spec, checkpoint=store)  # populate every checkpoint

        import repro.experiments.runner as runner_module

        def boom(*args, **kwargs):
            raise AssertionError("run_point called despite checkpoints")

        monkeypatch.setattr(runner_module, "run_point", boom)
        result = run_sweep(spec, checkpoint=store)
        assert result.values == spec.values

    def test_sweep_populates_the_store(self, tmp_path, spec):
        store = CheckpointStore(tmp_path)
        run_sweep(spec, checkpoint=store)
        for value in spec.values:
            assert store.path_for(spec.name, spec.param, value).exists()


class TestGracefulDegradation:
    def test_retry_recovers_transient_failures(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds[:1], fail_times=1
        )
        waits = []
        point = run_point(
            fast_config,
            workload=flaky,
            retries=2,
            backoff=0.5,
            sleep=waits.append,
        )
        reference = run_point(fast_config)
        assert point.status == "complete"
        assert point.completed_repetitions == len(seeds)
        assert point.of("online").welfare.mean == pytest.approx(
            reference.of("online").welfare.mean
        )
        assert waits == [0.5]

    def test_backoff_grows_exponentially(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds[:1], fail_times=3
        )
        waits = []
        run_point(
            fast_config,
            workload=flaky,
            retries=3,
            backoff=1.0,
            sleep=waits.append,
        )
        assert waits == [1.0, 2.0, 4.0]

    def test_exhausted_retries_raise_by_default(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds[:1], fail_times=10
        )
        with pytest.raises(RuntimeError, match="transient"):
            run_point(fast_config, workload=flaky, retries=1)

    def test_partial_point_drops_the_repetition(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds[:1], fail_times=10
        )
        point = run_point(
            fast_config, workload=flaky, on_failure="partial"
        )
        assert point.status == "partial"
        assert point.completed_repetitions == len(seeds) - 1
        assert point.failed_repetitions == 1
        # Pairing preserved: every mechanism aggregates the same count.
        for metric in point.metrics:
            assert metric.welfare.count == len(seeds) - 1

    def test_all_failed_marks_the_point_failed(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds, fail_times=10
        )
        point = run_point(
            fast_config, workload=flaky, on_failure="partial"
        )
        assert point.status == "failed"
        assert point.metrics == ()
        assert point.completed_repetitions == 0

    def test_failed_points_skipped_by_series(self, fast_config):
        seeds = list(fast_config.seeds())
        flaky = FlakyWorkload(
            fast_config.workload, fail_seeds=seeds, fail_times=10
        )
        failed = run_point(
            fast_config, workload=flaky, param="num_slots", value=6,
            on_failure="partial",
        )
        good = run_point(fast_config, param="num_slots", value=8)
        from repro.experiments.runner import SweepResult

        result = SweepResult(
            name="x",
            param="num_slots",
            points=(failed, good),
            config=fast_config,
        )
        series = result.series("online", "welfare")
        assert [value for value, _ in series] == [8]

    def test_invalid_on_failure_rejected(self, fast_config):
        with pytest.raises(ExperimentError, match="on_failure"):
            run_point(fast_config, on_failure="ignore")

    def test_negative_retries_rejected(self, fast_config):
        with pytest.raises(ExperimentError, match="retries"):
            run_point(fast_config, retries=-1)
