"""Unit tests for the paper-figure sweep specifications."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import figure_spec, list_figures
from repro.experiments.figures import (
    FIGURE_METRIC,
    MEAN_COST_VALUES,
    PHONE_RATE_VALUES,
    SLOT_VALUES,
)


class TestFigureRegistry:
    def test_all_six_figures(self):
        assert list_figures() == (
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        )

    def test_unknown_figure(self):
        with pytest.raises(ExperimentError, match="unknown figure"):
            figure_spec("fig99")

    def test_metric_assignment(self):
        assert FIGURE_METRIC["fig6"] == "welfare"
        assert FIGURE_METRIC["fig9"] == "overpayment_ratio"


class TestAxes:
    def test_fig6_axis_from_paper(self):
        spec = figure_spec("fig6")
        assert spec.param == "num_slots"
        assert spec.values == SLOT_VALUES == (30, 40, 50, 60, 70, 80)

    def test_fig7_axis_from_paper(self):
        spec = figure_spec("fig7")
        assert spec.param == "phone_rate"
        assert spec.values == PHONE_RATE_VALUES == (4.0, 5.0, 6.0, 7.0, 8.0)

    def test_fig8_axis_from_paper(self):
        spec = figure_spec("fig8")
        assert spec.param == "mean_cost"
        assert spec.values == MEAN_COST_VALUES == (
            10.0,
            20.0,
            30.0,
            40.0,
            50.0,
        )

    def test_overpayment_figures_share_axes(self):
        assert figure_spec("fig9").values == figure_spec("fig6").values
        assert figure_spec("fig10").values == figure_spec("fig7").values
        assert figure_spec("fig11").values == figure_spec("fig8").values


class TestConfiguration:
    def test_repetitions_forwarded(self):
        assert figure_spec("fig6", repetitions=3).config.repetitions == 3

    def test_base_seed_forwarded(self):
        assert figure_spec("fig6", base_seed=7).config.base_seed == 7

    def test_default_mechanisms_are_paper_pair(self):
        labels = [
            s.display_label for s in figure_spec("fig6").config.mechanisms
        ]
        assert labels == ["offline", "online"]

    def test_base_workload_is_table1(self):
        from repro.simulation import WorkloadConfig

        assert figure_spec("fig7").config.workload == (
            WorkloadConfig.paper_default()
        )
