"""Unit tests for sweep execution."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, MechanismSpec, SweepSpec
from repro.experiments.runner import run_point, run_sweep
from repro.simulation import WorkloadConfig


@pytest.fixture
def fast_config():
    return ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=8,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=15.0,
        ),
        repetitions=3,
        base_seed=50,
    )


class TestRunPoint:
    def test_metrics_per_mechanism(self, fast_config):
        point = run_point(fast_config)
        labels = [m.label for m in point.metrics]
        assert labels == ["offline", "online"]
        offline = point.of("offline")
        assert offline.welfare.count == 3
        assert offline.tasks_served.mean > 0

    def test_offline_dominates_online(self, fast_config):
        point = run_point(fast_config)
        assert (
            point.of("offline").welfare.mean
            >= point.of("online").welfare.mean - 1e-9
        )

    def test_unknown_label(self, fast_config):
        point = run_point(fast_config)
        with pytest.raises(ExperimentError, match="no mechanism labelled"):
            point.of("bogus")

    def test_deterministic(self, fast_config):
        a = run_point(fast_config)
        b = run_point(fast_config)
        assert a.of("online").welfare.mean == b.of("online").welfare.mean

    def test_custom_mechanisms(self, fast_config):
        config = fast_config.replace(
            mechanisms=(
                MechanismSpec.of("fifo"),
                MechanismSpec.of("fixed-price", price=12.0),
            )
        )
        point = run_point(config)
        assert [m.label for m in point.metrics] == ["fifo", "fixed-price"]


class TestRunSweep:
    def test_sweep_points(self, fast_config):
        spec = SweepSpec(
            name="test",
            title="welfare vs slots",
            param="num_slots",
            values=(6, 10),
            config=fast_config,
        )
        result = run_sweep(spec)
        assert result.values == (6, 10)
        assert len(result.points) == 2
        assert result.param == "num_slots"

    def test_welfare_grows_with_slots(self, fast_config):
        spec = SweepSpec(
            name="test",
            title="t",
            param="num_slots",
            values=(5, 15),
            config=fast_config,
        )
        result = run_sweep(spec)
        series = result.series("online", "welfare")
        assert series[1][1] > series[0][1]

    def test_series_skips_undefined(self, fast_config):
        config = fast_config.replace(
            workload=fast_config.workload.replace(phone_rate=0.0)
        )
        spec = SweepSpec(
            name="test",
            title="t",
            param="task_rate",
            values=(1.0,),
            config=config,
        )
        result = run_sweep(spec)
        # No phones -> nothing allocated -> overpayment undefined.
        assert result.series("online", "overpayment_ratio") == []

    def test_empty_values_rejected(self, fast_config):
        with pytest.raises(ExperimentError):
            SweepSpec(
                name="x", title="t", param="num_slots", values=(),
                config=fast_config,
            )

    def test_duplicate_values_rejected(self, fast_config):
        with pytest.raises(ExperimentError, match="duplicate"):
            SweepSpec(
                name="x", title="t", param="num_slots", values=(5, 5),
                config=fast_config,
            )

    def test_unknown_param_surfaces(self, fast_config):
        spec = SweepSpec(
            name="x", title="t", param="bogus", values=(1,),
            config=fast_config,
        )
        with pytest.raises(ExperimentError, match="unknown workload"):
            run_sweep(spec)
