"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import ascii_chart


class TestAsciiChart:
    def test_single_series(self):
        chart = ascii_chart({"a": [(0, 0.0), (1, 1.0)]}, title="T")
        assert chart.splitlines()[0] == "T"
        assert "o = a" in chart
        assert "o" in chart

    def test_two_series_distinct_markers(self):
        chart = ascii_chart(
            {"a": [(0, 0.0), (1, 1.0)], "b": [(0, 1.0), (1, 0.0)]}
        )
        assert "o = a" in chart
        assert "x = b" in chart

    def test_y_axis_labels(self):
        chart = ascii_chart({"a": [(0, 2.0), (1, 8.0)]})
        assert "8" in chart
        assert "2" in chart

    def test_constant_series_supported(self):
        chart = ascii_chart({"a": [(0, 5.0), (1, 5.0)]})
        assert chart  # no zero-division on flat data

    def test_single_point_supported(self):
        assert ascii_chart({"a": [(3, 7.0)]})

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_chart({})
        with pytest.raises(ExperimentError, match="empty"):
            ascii_chart({"a": []})

    def test_too_small_grid_rejected(self):
        with pytest.raises(ExperimentError, match="at least"):
            ascii_chart({"a": [(0, 0.0)]}, width=5, height=2)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(0, float(i))] for i in range(9)}
        with pytest.raises(ExperimentError, match="at most"):
            ascii_chart(series)

    def test_dimensions_respected(self):
        chart = ascii_chart(
            {"a": [(0, 0.0), (1, 1.0)]}, width=30, height=8
        )
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 8
