"""Unit tests for the Markdown reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.markdown_report import (
    PAPER_CLAIMS,
    build_reproduction_report,
)


@pytest.fixture(scope="module")
def report():
    # One repetition keeps this fast; layout is what is under test.
    return build_reproduction_report(repetitions=1, base_seed=7)


class TestReport:
    def test_contains_all_figures(self, report):
        for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
            assert f"## {name}:" in report

    def test_quotes_paper_claims(self, report):
        for claim in PAPER_CLAIMS.values():
            assert claim in report

    def test_markdown_tables_well_formed(self, report):
        table_lines = [
            line for line in report.splitlines() if line.startswith("|")
        ]
        assert table_lines
        for line in table_lines:
            assert line.endswith("|")
        # Separator rows exist for each table.
        assert any(set(line) <= {"|", "-"} for line in table_lines)

    def test_mentions_calibration_caveat(self, report):
        assert "task value ν" in report

    def test_header_records_parameters(self, report):
        assert "repetitions=1" in report
        assert "base_seed=7" in report

    def test_figure_pairs_share_sweep_axes(self, report):
        """fig6/fig9 derive from one sweep over the same slot values."""
        fig6_section = report.split("## fig6:")[1].split("## ")[0]
        fig9_section = report.split("## fig9:")[1].split("## ")[0]
        for value in (30, 40, 50, 60, 70, 80):
            assert f"| {value} |" in fig6_section
            assert f"| {value} |" in fig9_section
