"""Fig. 6 — social welfare ω vs. number of slots m.

Paper's claims: (1) welfare increases with m for both mechanisms;
(2) the offline mechanism offers larger welfare than the online one;
(3) the gap between them expands as m grows.
"""

from __future__ import annotations

from benchmarks.conftest import (
    assert_increasing,
    print_figure_report,
    series_means,
)


def test_fig6_welfare_vs_slots(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig6",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "welfare",
        "welfare increases with m; offline > online; gap expands with m",
    )

    offline = series_means(result, "offline", "welfare")
    online = series_means(result, "online", "welfare")

    # (1) both series increase with m.
    assert_increasing(offline)
    assert_increasing(online)
    for a, b in zip(offline, offline[1:]):
        assert b > a * 0.95  # monotone up to repetition noise
    # (2) offline >= online at every point.
    for off, on in zip(offline, online):
        assert off >= on - 1e-9
    # (3) the absolute gap grows from the first to the last point.
    assert (offline[-1] - online[-1]) > (offline[0] - online[0])
