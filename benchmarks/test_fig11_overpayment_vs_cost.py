"""Fig. 11 — overpayment ratio σ vs. average of real costs c̄.

Paper's claim: the offline mechanism's overpayment ratio is larger than
the online mechanism's across the cost sweep.

Measured deviation (EXPERIMENTS.md): under our calibration (ν = 30,
uniform costs) the two ratios sit in the same ~0.83-0.98 band but the
*ordering* flips at higher mean costs — Algorithm 2's critical payment
is the maximum winning cost in the winner's window, which grows with
cost dispersion, while the offline VCG externality stays tighter.  The
bench therefore asserts the shared band and closeness (within 0.15)
rather than the strict ordering, and prints both series for inspection.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_figure_report, series_means


def test_fig11_overpayment_vs_mean_cost(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig11",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "overpayment_ratio",
        "paper: offline σ larger than online σ (see module docstring "
        "for the measured deviation)",
    )

    offline = series_means(result, "offline", "overpayment_ratio")
    online = series_means(result, "online", "overpayment_ratio")

    # Both mechanisms' ratios live in the same band and stay close on
    # the sweep average; the paper's strict ordering does not survive
    # our calibration (documented in EXPERIMENTS.md).
    assert abs(float(np.mean(offline)) - float(np.mean(online))) < 0.15
    for value in offline + online:
        assert 0.3 <= value <= 1.6
