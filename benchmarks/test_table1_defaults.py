"""Table I — the default simulation settings, verified empirically.

Regenerates the default workload many times and checks the realised
arrival rates, mean cost, and mean active-time length against the
parameters Table I lists.
"""

from __future__ import annotations

import numpy as np

from repro.simulation import WorkloadConfig
from repro.utils.tables import format_table


def _measure(num_rounds: int = 20):
    config = WorkloadConfig.paper_default()
    phones, tasks, costs, lengths = [], [], [], []
    for seed in range(num_rounds):
        scenario = config.generate(seed=seed)
        phones.append(scenario.num_phones / config.num_slots)
        tasks.append(scenario.num_tasks / config.num_slots)
        costs.extend(p.cost for p in scenario.profiles)
        lengths.extend(
            p.active_length
            for p in scenario.profiles
            # Exclude the horizon edge where departures are clamped.
            if p.arrival <= config.num_slots - 2 * config.mean_active_length
        )
    return {
        "phone_rate": float(np.mean(phones)),
        "task_rate": float(np.mean(tasks)),
        "mean_cost": float(np.mean(costs)),
        "mean_active_length": float(np.mean(lengths)),
    }


def test_table1_defaults(benchmark):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    config = WorkloadConfig.paper_default()

    rows = [
        ["Arrival rate λ of smartphones", 6.0, measured["phone_rate"]],
        ["Arrival rate λt of sensing tasks", 3.0, measured["task_rate"]],
        ["Average of real costs c̄", 25.0, measured["mean_cost"]],
        ["Number of slots m", 50, config.num_slots],
        [
            "Average length of active time",
            5.0,
            measured["mean_active_length"],
        ],
    ]
    print()
    print(
        format_table(
            ["parameter (Table I)", "paper", "measured"],
            rows,
            title="Table I: default settings",
        )
    )

    assert abs(measured["phone_rate"] - 6.0) < 0.5
    assert abs(measured["task_rate"] - 3.0) < 0.3
    assert abs(measured["mean_cost"] - 25.0) < 1.5
    assert abs(measured["mean_active_length"] - 5.0) < 0.5
