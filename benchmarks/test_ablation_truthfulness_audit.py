"""Theorems 1/4 ablation — truthfulness audit matrix.

Runs the unilateral-deviation audit against every registered mechanism
on the same workloads and prints the pass/fail matrix: the paper's
mechanisms must pass, the pay-as-bid and second-price baselines must be
caught cheating.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import (
    FifoMechanism,
    FixedPriceMechanism,
    RandomAllocationMechanism,
    SecondPriceSlotMechanism,
)
from repro.metrics import audit_individual_rationality, audit_truthfulness
from repro.simulation import DeterministicArrivals, WorkloadConfig
from repro.utils.tables import format_table

#: Saturated market: per-slot pool never empties under any unilateral
#: deviation, the regime Theorem 4's critical-value argument covers.
WORKLOAD = WorkloadConfig(
    num_slots=8,
    phone_rate=5.0,
    task_rate=1.0,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=25.0,
)
SEEDS = (0, 1, 2)

MECHANISMS = [
    ("offline-vcg", OfflineVCGMechanism(), True),
    ("online-greedy (paper rule)", OnlineGreedyMechanism(), True),
    (
        "online-greedy (exact rule)",
        OnlineGreedyMechanism(reserve_price=True, payment_rule="exact"),
        True,
    ),
    ("fixed-price(12)", FixedPriceMechanism(price=12.0), True),
    ("second-price-slot", SecondPriceSlotMechanism(), False),
    ("random-alloc (pay-as-bid)", RandomAllocationMechanism(seed=0), False),
    ("fifo (pay-as-bid)", FifoMechanism(), False),
]


def _audit_all():
    rows = []
    for label, mechanism, expected_truthful in MECHANISMS:
        violations = 0
        tested = 0
        ir_violations = 0
        for seed in SEEDS:
            scenario = WORKLOAD.generate(
                seed=seed,
                phone_arrivals=DeterministicArrivals(5),
                task_arrivals=DeterministicArrivals(1),
            )
            rng = np.random.default_rng(seed)
            report = audit_truthfulness(
                mechanism, scenario, rng, max_phones=10
            )
            violations += len(report.violations)
            tested += report.deviations_tested
            ir_violations += len(
                audit_individual_rationality(mechanism, scenario)
            )
        rows.append(
            [
                label,
                tested,
                violations,
                ir_violations,
                expected_truthful,
                violations == 0,
            ]
        )
    return rows


def test_truthfulness_audit_matrix(benchmark):
    rows = benchmark.pedantic(_audit_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "mechanism",
                "deviations tested",
                "profitable deviations",
                "IR violations",
                "designed truthful",
                "audit passed",
            ],
            rows,
            title="Theorems 1/4: truthfulness audit",
        )
    )
    for label, _, violations, ir_violations, expected, _ in rows:
        if expected:
            assert violations == 0, f"{label} should be truthful"
        else:
            assert violations > 0, f"{label} should be caught cheating"
    # Individual rationality: paper mechanisms and posted price.
    for label, _, _, ir_violations, expected, _ in rows:
        if expected:
            assert ir_violations == 0, label
