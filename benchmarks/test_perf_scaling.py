"""Theorems 3/7 — polynomial-time computation, measured.

Times the computational kernels against instance size:

* the Hungarian solve (offline winning-bid determination, O((n+γ)^3)),
* the full offline VCG run (solve + one repair per winner),
* the full online run (greedy + Algorithm-2 payments),
* the city-scale tier: CSR graph construction and the sparse backend's
  solve + VCG at ``num_slots`` in {200, 500, 1000}, far beyond what the
  dense matrix path is benchmarked at (the 1000-slot cases are marked
  ``slow`` and deselected in CI's perf smoke).

These use pytest-benchmark's statistical timing (several rounds), since
here the time itself — not a reproduction table — is the product.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.experiments.config import MechanismSpec
from repro.experiments.sharding import CityConfig, run_sharded_campaign
from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.simulation import WorkloadConfig

#: The sparse-tier sizes.  1000 slots ≈ 6000 bids x 3000 tasks — minutes
#: of dense solving, a few seconds sparse — so it only runs on demand.
SPARSE_TIER = [
    200,
    500,
    pytest.param(1000, marks=pytest.mark.slow),
]

#: The streaming-engine city tier: (phones, slots, bench rounds).  The
#: CI smoke runs the 2·10⁴ case; 10⁵ and 10⁶ phones are ``slow``-marked
#: and exist to demonstrate the event-driven engine at the scale the
#: batch prober cannot reasonably reach (its means are committed under
#: ``before_mean_seconds`` in BENCH_0007.json).
CITY_TIER = [
    pytest.param(20_000, 200, 5, id="20000x200"),
    pytest.param(
        100_000, 1000, 3, id="100000x1000", marks=pytest.mark.slow
    ),
    pytest.param(
        1_000_000, 1000, 1, id="1000000x1000", marks=pytest.mark.slow
    ),
]


def _scenario(num_slots: int):
    return WorkloadConfig.paper_default().replace(
        num_slots=num_slots
    ).generate(seed=1)


def _city_scenario(num_phones: int, num_slots: int):
    return WorkloadConfig(
        num_slots=num_slots, phone_rate=num_phones / num_slots
    ).generate(seed=1)


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_hungarian_solve_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()

    def solve():
        return TaskAssignmentGraph(scenario.schedule, bids).solve()

    allocation, welfare = benchmark(solve)
    assert welfare > 0.0
    assert allocation


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_offline_vcg_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()
    mechanism = OfflineVCGMechanism()

    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_online_greedy_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()
    mechanism = OnlineGreedyMechanism()

    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0


@pytest.mark.parametrize("num_slots", SPARSE_TIER)
def test_graph_build_scaling(benchmark, num_slots):
    """CSR graph construction without the dense matrix."""
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()

    def build():
        return TaskAssignmentGraph(
            scenario.schedule, bids, backend="sparse"
        )

    graph = benchmark(build)
    assert graph.num_edges > 0
    assert graph.edge_density < 0.25


@pytest.mark.parametrize("num_slots", SPARSE_TIER)
def test_sparse_solve_scaling(benchmark, num_slots):
    """Winning-bid determination alone on the CSR backend."""
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()

    def solve():
        return TaskAssignmentGraph(
            scenario.schedule, bids, backend="sparse"
        ).solve()

    allocation, welfare = benchmark(solve)
    assert welfare > 0.0
    assert allocation


@pytest.mark.parametrize("num_slots", SPARSE_TIER)
def test_offline_vcg_scaling_sparse(benchmark, num_slots):
    """Full offline VCG (solve + per-winner repairs), sparse backend.

    The committed baseline records the dense backend's time on the same
    instances under ``before_mean_seconds`` — the tentpole speedup.
    """
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()
    mechanism = OfflineVCGMechanism(backend="sparse")

    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0


@pytest.mark.parametrize("num_phones,num_slots,rounds", CITY_TIER)
def test_online_streaming_scaling(benchmark, num_phones, num_slots, rounds):
    """The full online round on the event-driven streaming engine.

    Allocation plus every Algorithm-2 payment from one pass; the batch
    engine on the same instances is the committed
    ``before_mean_seconds`` baseline (≥5× at the 10⁵-phone tier).
    """
    scenario = _city_scenario(num_phones, num_slots)
    bids = scenario.truthful_bids()
    mechanism = OnlineGreedyMechanism(engine="streaming")

    outcome = benchmark.pedantic(
        mechanism.run,
        args=(bids, scenario.schedule),
        rounds=rounds,
        iterations=1,
    )
    assert outcome.total_payment > 0.0


#: The sharded-campaign tier: (cities, phones/city, rounds/city, pool
#: workers, bench rounds).  The CI smoke runs the 8-city x 2·10⁴-phone
#: case; the before_mean_seconds committed in BENCH_0008.json is the
#: PR 4-era repetition-level pool (per-city ``run_campaign(workers=4)``
#: with scalar bid generation and pickled Bid lists) on the same
#: campaign.
SHARD_TIER = [
    pytest.param(8, 20_000, 2, 2, 3, id="8cityx20000"),
    pytest.param(
        8, 20_000, 10, 4, 1, id="8cityx20000x10", marks=pytest.mark.slow
    ),
]


def _city_workload(num_phones: int) -> WorkloadConfig:
    return WorkloadConfig(num_slots=50, phone_rate=num_phones / 50)


@pytest.mark.parametrize(
    "num_cities,num_phones,rounds_per_city,workers,bench_rounds", SHARD_TIER
)
def test_sharded_campaign_city_scale(
    benchmark, num_cities, num_phones, rounds_per_city, workers, bench_rounds
):
    """The full sharded campaign: columnar generation, shared-memory
    fan-out, streaming mechanism, blob assembly.

    This is the tentpole speedup: the same campaign through the PR 4
    repetition-level pool ships every round as a pickled Bid list and
    generates bids object-by-object; its mean on this instance is the
    committed ``before_mean_seconds`` in BENCH_0008.json (>=3x).
    """
    workload = _city_workload(num_phones)
    cities = [
        CityConfig(f"city-{index}", workload, num_rounds=rounds_per_city)
        for index in range(num_cities)
    ]
    mechanism = MechanismSpec.of("online-greedy", engine="streaming")

    result = benchmark.pedantic(
        run_sharded_campaign,
        args=(mechanism, cities),
        kwargs={"seed": 2014, "workers": workers},
        rounds=bench_rounds,
        iterations=1,
    )
    assert result.num_rounds == num_cities * rounds_per_city
    assert result.total_welfare > 0.0


def test_vectorized_generation_bounds():
    """Pin the batched bid generator's cost at the city tier.

    One 2·10⁴-phone round must stay a handful of numpy draws: measured
    ~4 ms and ~1 MB of column data, asserted here with wide CI headroom
    so a regression back to per-phone scalar draws (~300 ms, millions of
    transient objects) fails loudly.
    """
    workload = _city_workload(20_000)
    workload.generate_columns(seed=0)  # warm numpy + code paths
    tracemalloc.start()
    started = time.perf_counter()
    columns = workload.generate_columns(seed=1)
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert columns.num_phones > 15_000
    assert elapsed < 0.25, f"columnar generation took {elapsed:.3f}s"
    assert peak < 16 * 2**20, f"columnar generation peaked at {peak} bytes"


def test_exact_payment_rule_overhead(benchmark):
    """The binary-search payment rule's cost relative to Algorithm 2."""
    scenario = _scenario(30)
    bids = scenario.truthful_bids()
    mechanism = OnlineGreedyMechanism(
        reserve_price=True, payment_rule="exact"
    )
    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0
