"""Theorems 3/7 — polynomial-time computation, measured.

Times the three computational kernels against instance size:

* the Hungarian solve (offline winning-bid determination, O((n+γ)^3)),
* the full offline VCG run (solve + one repair per winner),
* the full online run (greedy + Algorithm-2 payments).

These use pytest-benchmark's statistical timing (several rounds), since
here the time itself — not a reproduction table — is the product.
"""

from __future__ import annotations

import pytest

from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.simulation import WorkloadConfig


def _scenario(num_slots: int):
    return WorkloadConfig.paper_default().replace(
        num_slots=num_slots
    ).generate(seed=1)


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_hungarian_solve_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()

    def solve():
        return TaskAssignmentGraph(scenario.schedule, bids).solve()

    allocation, welfare = benchmark(solve)
    assert welfare > 0.0
    assert allocation


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_offline_vcg_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()
    mechanism = OfflineVCGMechanism()

    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0


@pytest.mark.parametrize("num_slots", [30, 50, 80])
def test_online_greedy_scaling(benchmark, num_slots):
    scenario = _scenario(num_slots)
    bids = scenario.truthful_bids()
    mechanism = OnlineGreedyMechanism()

    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0


def test_exact_payment_rule_overhead(benchmark):
    """The binary-search payment rule's cost relative to Algorithm 2."""
    scenario = _scenario(30)
    bids = scenario.truthful_bids()
    mechanism = OnlineGreedyMechanism(
        reserve_price=True, payment_rule="exact"
    )
    outcome = benchmark(mechanism.run, bids, scenario.schedule)
    assert outcome.total_payment > 0.0
