"""Extension ablation — welfare vs. sensing-capability coverage.

The base model assumes every phone can serve every task; the typed
extension restricts assignments to capable phones.  This bench sweeps
the probability that a phone carries each sensor kind and shows how the
welfare of both typed mechanisms degrades as hardware gets scarcer —
and that at coverage 1.0 they recover the base mechanisms exactly.
"""

from __future__ import annotations

import numpy as np

from repro.extensions import (
    TypedOfflineVCGMechanism,
    TypedOnlineGreedyMechanism,
    generate_capability_model,
)
from repro.mechanisms import OfflineVCGMechanism
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.utils.tables import format_table

WORKLOAD = WorkloadConfig(
    num_slots=12,
    phone_rate=4.0,
    task_rate=2.0,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=25.0,
)
KINDS = ("mic", "gas", "cam")
COVERAGES = (0.2, 0.4, 0.6, 0.8, 1.0)
SEEDS = range(4)


def _measure():
    engine = SimulationEngine()
    rows = []
    for coverage in COVERAGES:
        offline_welfare, online_welfare, served = [], [], []
        for seed in SEEDS:
            scenario = WORKLOAD.generate(seed=seed)
            rng = np.random.default_rng(1000 + seed)
            model = generate_capability_model(
                scenario.schedule,
                [p.phone_id for p in scenario.profiles],
                KINDS,
                rng,
                capability_probability=coverage,
            )
            offline = engine.run(
                TypedOfflineVCGMechanism(model), scenario
            )
            online = engine.run(
                TypedOnlineGreedyMechanism(model), scenario
            )
            offline_welfare.append(offline.true_welfare)
            online_welfare.append(online.true_welfare)
            served.append(online.service_rate)
        rows.append(
            [
                coverage,
                float(np.mean(offline_welfare)),
                float(np.mean(online_welfare)),
                float(np.mean(served)),
            ]
        )

    # At full coverage the typed offline mechanism must equal the base.
    base_welfare = []
    full_welfare = []
    for seed in SEEDS:
        scenario = WORKLOAD.generate(seed=seed)
        rng = np.random.default_rng(1000 + seed)
        model = generate_capability_model(
            scenario.schedule,
            [p.phone_id for p in scenario.profiles],
            KINDS,
            rng,
            capability_probability=1.0,
        )
        base_welfare.append(
            SimulationEngine()
            .run(OfflineVCGMechanism(), scenario)
            .true_welfare
        )
        full_welfare.append(
            SimulationEngine()
            .run(TypedOfflineVCGMechanism(model), scenario)
            .true_welfare
        )
    return rows, base_welfare, full_welfare


def test_capability_coverage_sweep(benchmark):
    rows, base_welfare, full_welfare = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            [
                "sensor coverage",
                "typed offline welfare",
                "typed online welfare",
                "online service rate",
            ],
            rows,
            title="Extension: welfare vs. sensing-capability coverage",
        )
    )

    offline_series = [row[1] for row in rows]
    online_series = [row[2] for row in rows]
    # Welfare grows with coverage for both mechanisms.
    assert offline_series == sorted(offline_series)
    assert online_series[-1] > online_series[0]
    # Offline dominates online at every coverage level.
    for row in rows:
        assert row[1] >= row[2] - 1e-6
    # Full coverage recovers the base mechanism exactly.
    for base, full in zip(base_welfare, full_welfare):
        assert full == base
