"""Extension ablation — the value of multi-task phone capacity.

The base model caps each phone at one task per round; the capacitated
extension lets a phone serve several.  This bench sweeps a uniform
capacity and reports welfare, service rate, and total payments under
whole-phone VCG: capacity substitutes for population, with diminishing
returns once supply stops binding.
"""

from __future__ import annotations

import numpy as np

from repro.extensions import CapacitatedOfflineVCGMechanism
from repro.simulation import WorkloadConfig
from repro.utils.tables import format_table

CAPACITIES = (1, 2, 3, 5)
SEEDS = range(4)

#: A supply-constrained market where capacity genuinely matters.
WORKLOAD = WorkloadConfig(
    num_slots=12,
    phone_rate=1.0,
    task_rate=2.5,
    mean_cost=10.0,
    mean_active_length=4,
    task_value=25.0,
)


def _measure():
    rows = []
    for capacity in CAPACITIES:
        welfare, served, payments = [], [], []
        for seed in SEEDS:
            scenario = WORKLOAD.generate(seed=seed)
            bids = scenario.truthful_bids()
            mechanism = CapacitatedOfflineVCGMechanism(
                {b.phone_id: capacity for b in bids}
            )
            outcome = mechanism.run(bids, scenario.schedule)
            welfare.append(outcome.claimed_welfare)
            served.append(
                len(outcome.allocation) / max(1, scenario.num_tasks)
            )
            payments.append(outcome.total_payment)
        rows.append(
            [
                capacity,
                float(np.mean(welfare)),
                float(np.mean(served)),
                float(np.mean(payments)),
            ]
        )
    return rows


def test_capacity_sweep(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "capacity per phone",
                "welfare",
                "service rate",
                "total payment",
            ],
            rows,
            title="Extension: welfare vs. per-phone task capacity "
            "(supply-constrained market)",
        )
    )
    welfare = [row[1] for row in rows]
    service = [row[2] for row in rows]
    # More capacity never hurts and helps while supply binds.
    assert welfare == sorted(welfare)
    assert welfare[1] > welfare[0]  # capacity 2 beats capacity 1
    assert service[-1] >= service[0]
    # Diminishing returns per capacity unit: the last step's per-unit
    # gain is below the first step's.
    last_step_units = CAPACITIES[-1] - CAPACITIES[-2]
    per_unit_last = (welfare[-1] - welfare[-2]) / last_step_units
    per_unit_first = welfare[1] - welfare[0]
    assert per_unit_last <= per_unit_first + 1e-6
