"""Fig. 8 — social welfare ω vs. average of real costs c̄.

Paper's claims: welfare decreases as the average real cost grows (the
system pays more to get tasks processed), offline above online.
"""

from __future__ import annotations

from benchmarks.conftest import (
    assert_decreasing,
    print_figure_report,
    series_means,
)


def test_fig8_welfare_vs_mean_cost(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig8",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "welfare",
        "welfare decreases with the average of real costs; offline > online",
    )

    offline = series_means(result, "offline", "welfare")
    online = series_means(result, "online", "welfare")

    assert_decreasing(offline)
    assert_decreasing(online)
    # Strictly decreasing point to point (the effect is strong).
    for a, b in zip(offline, offline[1:]):
        assert b < a
    for off, on in zip(offline, online):
        assert off >= on - 1e-9
