"""Theorem 6 stress test — adversarial search for bad competitive ratios.

Random workloads rarely stress an online algorithm; this bench actively
*searches* for instances that minimise ``ω_online / ω_offline`` with a
simple evolutionary loop (mutate the worst instance found so far:
perturb windows, costs, task placement).  The paper's bound says no
instance can go below 1/2; the search should drive the ratio well below
what random sampling finds, but never through the bound.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import empirical_competitive_ratio
from repro.model import Bid, TaskSchedule
from repro.utils.tables import format_table

NUM_SLOTS = 6
TASK_VALUE = 100.0  # >> costs: the regime of the paper's bound
GENERATIONS = 60
POPULATION = 8


def _random_instance(rng):
    num_phones = int(rng.integers(2, 7))
    bids = []
    for pid in range(num_phones):
        arrival = int(rng.integers(1, NUM_SLOTS + 1))
        departure = int(rng.integers(arrival, NUM_SLOTS + 1))
        cost = float(rng.uniform(1.0, 99.0))
        bids.append(
            Bid(phone_id=pid, arrival=arrival, departure=departure, cost=cost)
        )
    counts = [int(rng.integers(0, 3)) for _ in range(NUM_SLOTS)]
    return bids, counts


def _mutate(bids, counts, rng):
    bids = list(bids)
    counts = list(counts)
    choice = rng.integers(4)
    if choice == 0 and bids:  # perturb one cost
        index = int(rng.integers(len(bids)))
        new_cost = max(
            0.5, bids[index].cost * float(rng.uniform(0.5, 2.0))
        )
        bids[index] = bids[index].with_cost(min(new_cost, 99.0))
    elif choice == 1 and bids:  # perturb one window
        index = int(rng.integers(len(bids)))
        arrival = int(rng.integers(1, NUM_SLOTS + 1))
        departure = int(rng.integers(arrival, NUM_SLOTS + 1))
        bids[index] = bids[index].with_window(arrival, departure)
    elif choice == 2:  # move a task between slots
        source = int(rng.integers(NUM_SLOTS))
        target = int(rng.integers(NUM_SLOTS))
        if counts[source] > 0:
            counts[source] -= 1
            counts[target] += 1
    else:  # add or drop a phone
        if bids and rng.random() < 0.5:
            bids.pop(int(rng.integers(len(bids))))
        else:
            arrival = int(rng.integers(1, NUM_SLOTS + 1))
            departure = int(rng.integers(arrival, NUM_SLOTS + 1))
            bids.append(
                Bid(
                    phone_id=max((b.phone_id for b in bids), default=-1) + 1,
                    arrival=arrival,
                    departure=departure,
                    cost=float(rng.uniform(1.0, 99.0)),
                )
            )
    return bids, counts


def _ratio(bids, counts):
    if not bids or sum(counts) == 0:
        return None
    schedule = TaskSchedule.from_counts(counts, value=TASK_VALUE)
    return empirical_competitive_ratio(bids, schedule)


def _search():
    rng = np.random.default_rng(0)
    population = []
    for _ in range(POPULATION):
        bids, counts = _random_instance(rng)
        ratio = _ratio(bids, counts)
        population.append((ratio if ratio is not None else 1.0, bids, counts))

    random_min = min(entry[0] for entry in population)
    trajectory = [random_min]
    for _ in range(GENERATIONS):
        population.sort(key=lambda entry: entry[0])
        parents = population[: POPULATION // 2]
        children = []
        for _, bids, counts in parents:
            mutated_bids, mutated_counts = _mutate(bids, counts, rng)
            ratio = _ratio(mutated_bids, mutated_counts)
            if ratio is not None:
                children.append((ratio, mutated_bids, mutated_counts))
        population = (parents + children)[:POPULATION]
        trajectory.append(min(entry[0] for entry in population))
    best_ratio, best_bids, best_counts = min(
        population, key=lambda entry: entry[0]
    )
    return random_min, best_ratio, best_bids, best_counts, trajectory


def test_adversarial_ratio_search(benchmark):
    random_min, best_ratio, best_bids, best_counts, trajectory = (
        benchmark.pedantic(_search, rounds=1, iterations=1)
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["initial random minimum", random_min],
                ["after evolutionary search", best_ratio],
                ["Theorem 6 bound", 0.5],
                ["phones in worst instance", len(best_bids)],
                ["tasks in worst instance", sum(best_counts)],
            ],
            title="Adversarial search for the competitive ratio",
        )
    )
    # The search made progress (found something at least as bad) ...
    assert best_ratio <= random_min + 1e-9
    # ... but the paper's bound held throughout.
    assert best_ratio >= 0.5 - 1e-9
    assert all(r >= 0.5 - 1e-9 for r in trajectory)
