"""Fig. 10 — overpayment ratio σ vs. smartphone arrival rate λ.

Paper's claims: the ratio keeps stable as the number of smartphones
grows; the online mechanism's ratio decreases slightly (more phones ⇒
cheaper replacements cap the critical payments).
"""

from __future__ import annotations

from benchmarks.conftest import print_figure_report, series_means


def test_fig10_overpayment_vs_arrival_rate(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig10",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "overpayment_ratio",
        "ratio stable in λ; online decreases slightly with more phones",
    )

    offline = series_means(result, "offline", "overpayment_ratio")
    online = series_means(result, "online", "overpayment_ratio")

    for series in (offline, online):
        assert max(series) - min(series) < 0.4 * max(series)
        assert all(0.3 <= v <= 1.6 for v in series)
    # Online's slight decrease: last point below first.
    assert online[-1] <= online[0] + 0.05
