"""Ablation — all mechanisms compared on the Table I default workload.

Not a paper figure, but the comparison the paper's related-work section
implies: the truthful mechanisms against naive dispatching (FIFO,
random), posted prices, and the broken second-price rule, on welfare,
payments, overpayment, and service rate.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.mechanisms.baselines import (
    FifoMechanism,
    FixedPriceMechanism,
    RandomAllocationMechanism,
    SecondPriceSlotMechanism,
)
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.utils.tables import format_table

SEEDS = range(5)

MECHANISMS = [
    ("offline-vcg", OfflineVCGMechanism()),
    ("online-greedy", OnlineGreedyMechanism()),
    ("second-price-slot", SecondPriceSlotMechanism()),
    ("fixed-price(25)", FixedPriceMechanism(price=25.0)),
    ("random-alloc", RandomAllocationMechanism(seed=0)),
    ("fifo", FifoMechanism()),
]


def _measure():
    workload = WorkloadConfig.paper_default()
    engine = SimulationEngine()
    rows = []
    welfare_by_label = {}
    for label, mechanism in MECHANISMS:
        welfare, payment, ratios, service = [], [], [], []
        for seed in SEEDS:
            scenario = workload.generate(seed=seed)
            result = engine.run(mechanism, scenario)
            welfare.append(result.true_welfare)
            payment.append(result.total_payment)
            if result.overpayment_ratio is not None:
                ratios.append(result.overpayment_ratio)
            service.append(result.service_rate)
        rows.append(
            [
                label,
                float(np.mean(welfare)),
                float(np.mean(payment)),
                float(np.mean(ratios)) if ratios else float("nan"),
                float(np.mean(service)),
            ]
        )
        welfare_by_label[label] = float(np.mean(welfare))
    return rows, welfare_by_label


def test_baseline_comparison(benchmark):
    rows, welfare = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "mechanism",
                "welfare",
                "total payment",
                "overpayment ratio",
                "service rate",
            ],
            rows,
            title="Baseline comparison (Table I defaults, 5 seeds)",
        )
    )
    # The offline optimum dominates everything on welfare.
    for label, value in welfare.items():
        assert welfare["offline-vcg"] >= value - 1e-6, label
    # Cost-aware allocation beats cost-blind dispatch.
    assert welfare["online-greedy"] > welfare["fifo"]
    assert welfare["online-greedy"] > welfare["random-alloc"]
