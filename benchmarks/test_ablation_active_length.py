"""Ablation — sensitivity to the average active-time length.

Table I fixes the mean active time at 5 slots (10% of the default
round) without studying it.  Longer windows mean more flexible supply:
the matching has more edges, so welfare should rise and the
offline/online gap shrink; payments face more competition per window,
so the overpayment ratio should ease.  This bench quantifies all three.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.utils.tables import format_table

ACTIVE_LENGTHS = (1, 2, 3, 5, 8, 12)
SEEDS = range(4)


def _measure():
    engine = SimulationEngine()
    offline = OfflineVCGMechanism()
    online = OnlineGreedyMechanism()
    rows = []
    for length in ACTIVE_LENGTHS:
        workload = WorkloadConfig.paper_default().replace(
            mean_active_length=length
        )
        off_welfare, on_welfare, on_sigma = [], [], []
        for seed in SEEDS:
            scenario = workload.generate(seed=seed)
            off = engine.run(offline, scenario)
            on = engine.run(online, scenario)
            off_welfare.append(off.true_welfare)
            on_welfare.append(on.true_welfare)
            if on.overpayment_ratio is not None:
                on_sigma.append(on.overpayment_ratio)
        rows.append(
            [
                length,
                float(np.mean(off_welfare)),
                float(np.mean(on_welfare)),
                float(np.mean(off_welfare) - np.mean(on_welfare)),
                float(np.mean(on_sigma)),
            ]
        )
    return rows


def test_active_length_sensitivity(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "mean active length",
                "offline welfare",
                "online welfare",
                "offline-online gap",
                "online σ",
            ],
            rows,
            title="Ablation: sensitivity to the mean active-time length",
        )
    )
    offline_welfare = [row[1] for row in rows]
    online_welfare = [row[2] for row in rows]
    # Longer windows help both mechanisms end to end.
    assert offline_welfare[-1] > offline_welfare[0]
    assert online_welfare[-1] > online_welfare[0]
    # Offline dominates at every length.
    for row in rows:
        assert row[1] >= row[2] - 1e-6
