"""Ablation — why the offline mechanism needs an *optimal* allocation.

Section V-A: "the VCG-style payment scheme is no longer truthful when
the allocation of sensing tasks is not optimal".  This bench quantifies
both halves of that sentence: the welfare gap between the greedy and the
Hungarian offline allocations, and the profitable deviations the audit
finds against greedy+VCG but not against optimal+VCG.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import OfflineVCGMechanism
from repro.mechanisms.baselines import OfflineGreedyMechanism
from repro.agents import best_response_search
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.utils.tables import format_table

WORKLOAD = WorkloadConfig(
    num_slots=15,
    phone_rate=3.0,
    task_rate=2.0,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=20.0,
)
SEEDS = range(20)


def _measure():
    engine = SimulationEngine()
    optimal = OfflineVCGMechanism()
    greedy = OfflineGreedyMechanism()

    welfare_ratios = []
    for seed in SEEDS:
        scenario = WORKLOAD.generate(seed=seed)
        optimal_result = engine.run(optimal, scenario)
        greedy_result = engine.run(greedy, scenario)
        if optimal_result.true_welfare > 0:
            welfare_ratios.append(
                greedy_result.true_welfare / optimal_result.true_welfare
            )

    # Truthfulness: the coarse battery is too weak to expose greedy+VCG,
    # so run the exhaustive best-response search on small instances.
    small = WORKLOAD.replace(num_slots=5, phone_rate=2.0, task_rate=1.5)
    greedy_violations = 0
    optimal_violations = 0
    searches = 0
    for seed in range(8):
        scenario = small.generate(seed=seed)
        bids = scenario.truthful_bids()
        for profile in scenario.profiles:
            searches += 1
            greedy_result = best_response_search(
                greedy, profile, bids, scenario.schedule, max_windows=4
            )
            if greedy_result.profitable:
                greedy_violations += 1
            optimal_result = best_response_search(
                optimal, profile, bids, scenario.schedule, max_windows=4
            )
            if optimal_result.profitable:
                optimal_violations += 1
    return (
        welfare_ratios,
        searches,
        greedy_violations,
        optimal_violations,
    )


def test_offline_greedy_vs_optimal(benchmark):
    (
        welfare_ratios,
        searches,
        greedy_violations,
        optimal_violations,
    ) = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["rounds measured", len(welfare_ratios)],
                ["mean greedy/optimal welfare", float(np.mean(welfare_ratios))],
                ["min greedy/optimal welfare", float(np.min(welfare_ratios))],
                ["best-response searches", searches],
                ["phones with profitable deviation vs greedy+VCG", greedy_violations],
                ["phones with profitable deviation vs optimal+VCG", optimal_violations],
            ],
            title="Ablation: offline greedy vs. optimal allocation",
        )
    )
    # Greedy never beats the optimum and loses something on average.
    assert max(welfare_ratios) <= 1.0 + 1e-9
    assert float(np.mean(welfare_ratios)) < 1.0
    # VCG payments on the optimal allocation survive the search...
    assert optimal_violations == 0
    # ...and on the greedy allocation they do not (the paper's warning).
    assert greedy_violations > 0
