"""Ablation — interaction of round length and supply density.

Fig. 6 (welfare vs. m) and Fig. 7 (welfare vs. λ) vary one parameter at
a time; this bench sweeps both jointly and inspects the *gap* between
offline and online welfare across the grid: the online mechanism's
regret should shrink (relatively) as supply densifies, regardless of
the round length.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED
from repro.experiments import ExperimentConfig
from repro.experiments.grid import render_grid_heatmap, run_grid

SLOT_VALUES = (30, 50, 70)
RATE_VALUES = (4.0, 6.0, 8.0)


def _measure():
    config = ExperimentConfig(repetitions=3, base_seed=BENCH_SEED)
    return run_grid(
        config,
        param_x="phone_rate",
        values_x=RATE_VALUES,
        param_y="num_slots",
        values_y=SLOT_VALUES,
    )


def test_slots_by_supply_grid(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(render_grid_heatmap(result, "offline", "welfare"))
    print()
    print(render_grid_heatmap(result, "online", "welfare"))

    offline = result.metric_grid("offline", "welfare")
    online = result.metric_grid("online", "welfare")

    # Offline dominates online in every cell.
    for row_off, row_on in zip(offline, online):
        for off, on in zip(row_off, row_on):
            assert off >= on - 1e-6

    # The relative gap shrinks with supply density in every row.
    relative_gap = [
        [(off - on) / off for off, on in zip(row_off, row_on)]
        for row_off, row_on in zip(offline, online)
    ]
    print()
    for slots, row in zip(SLOT_VALUES, relative_gap):
        rendered = ", ".join(f"{g:.3f}" for g in row)
        print(f"relative gap at m={slots}: λ=4/6/8 -> {rendered}")
    for row in relative_gap:
        assert row[-1] <= row[0] + 0.02  # densest supply ≈ smallest gap

    # Welfare increases along both axes in every line of the grid.
    for row in offline:
        assert row == sorted(row)
    for col in range(len(RATE_VALUES)):
        column = [offline[r][col] for r in range(len(SLOT_VALUES))]
        assert column == sorted(column)
