"""Ablation — sensitivity to the unpublished task value ν.

The paper never states ν (DESIGN.md §2); this bench sweeps it and shows
that the figures' qualitative shapes (offline ≥ online, both increasing
in ν; overpayment band) are insensitive to the choice — the evidence
behind our default of ν = 30.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import OfflineVCGMechanism, OnlineGreedyMechanism
from repro.simulation import SimulationEngine, WorkloadConfig
from repro.utils.tables import format_table

TASK_VALUES = (20.0, 30.0, 40.0, 60.0, 100.0)
SEEDS = range(4)


def _measure():
    engine = SimulationEngine()
    offline = OfflineVCGMechanism()
    online = OnlineGreedyMechanism()
    rows = []
    for value in TASK_VALUES:
        workload = WorkloadConfig.paper_default().replace(task_value=value)
        off_welfare, on_welfare, off_sigma, on_sigma = [], [], [], []
        for seed in SEEDS:
            scenario = workload.generate(seed=seed)
            off = engine.run(offline, scenario)
            on = engine.run(online, scenario)
            off_welfare.append(off.true_welfare)
            on_welfare.append(on.true_welfare)
            if off.overpayment_ratio is not None:
                off_sigma.append(off.overpayment_ratio)
            if on.overpayment_ratio is not None:
                on_sigma.append(on.overpayment_ratio)
        rows.append(
            [
                value,
                float(np.mean(off_welfare)),
                float(np.mean(on_welfare)),
                float(np.mean(off_sigma)),
                float(np.mean(on_sigma)),
            ]
        )
    return rows


def test_task_value_sensitivity(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "task value ν",
                "offline welfare",
                "online welfare",
                "offline σ",
                "online σ",
            ],
            rows,
            title="Ablation: sensitivity to the task value ν",
        )
    )
    offline_welfare = [row[1] for row in rows]
    online_welfare = [row[2] for row in rows]
    # Welfare increases with ν for both mechanisms...
    assert offline_welfare == sorted(offline_welfare)
    assert online_welfare == sorted(online_welfare)
    # ...and the offline/online ordering holds at every ν.
    for row in rows:
        assert row[1] >= row[2] - 1e-6
