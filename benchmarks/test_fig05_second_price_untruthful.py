"""Fig. 4/5 — the worked example and the second-price counterexample.

Reproduces every number in the paper's running example in one bench:
the online allocation of Fig. 4, the Algorithm-2 payment walk-through
of Section V-C (Smartphone 1 paid 9), and the Fig. 5 demonstration that
per-slot second-price payments reward an arrival-delay misreport by
exactly 4 — while our online mechanism does not.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import OnlineGreedyMechanism
from repro.mechanisms.baselines import SecondPriceSlotMechanism
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_schedule,
)
from repro.utils.tables import format_table


def _run_counterexample():
    schedule = paper_example_schedule()
    truthful = paper_example_bids()
    deviated = [
        b.with_window(4, 5) if b.phone_id == 1 else b for b in truthful
    ]
    second_price = SecondPriceSlotMechanism()
    ours = OnlineGreedyMechanism()
    return {
        "sp_truthful": second_price.run(truthful, schedule),
        "sp_deviated": second_price.run(deviated, schedule),
        "ours_truthful": ours.run(truthful, schedule),
        "ours_deviated": ours.run(deviated, schedule),
    }


def test_fig5_second_price_untruthful(benchmark):
    outcomes = benchmark.pedantic(_run_counterexample, rounds=1, iterations=1)
    real_cost = 3.0  # Smartphone 1

    def utility(outcome):
        return outcome.payment(1) - (
            real_cost if outcome.is_winner(1) else 0.0
        )

    rows = [
        [
            "second-price-slot",
            outcomes["sp_truthful"].payment(1),
            outcomes["sp_deviated"].payment(1),
            utility(outcomes["sp_deviated"]) - utility(outcomes["sp_truthful"]),
        ],
        [
            "online-greedy (ours)",
            outcomes["ours_truthful"].payment(1),
            outcomes["ours_deviated"].payment(1),
            utility(outcomes["ours_deviated"])
            - utility(outcomes["ours_truthful"]),
        ],
    ]
    print()
    print(
        format_table(
            [
                "mechanism",
                "payment (truthful)",
                "payment (delay 2 slots)",
                "utility gain",
            ],
            rows,
            title="Fig. 5: Smartphone 1 delays its arrival by 2 slots",
        )
    )
    print("paper: second price pays 4 -> 8 (gain 4); Algorithm 2 is immune")

    # Paper's numbers, exactly.
    assert outcomes["sp_truthful"].payment(1) == pytest.approx(4.0)
    assert outcomes["sp_deviated"].payment(1) == pytest.approx(8.0)
    sp_gain = utility(outcomes["sp_deviated"]) - utility(
        outcomes["sp_truthful"]
    )
    assert sp_gain == pytest.approx(4.0)

    # Our mechanism: Algorithm 2 pays 9 truthfully; no gain from delay.
    assert outcomes["ours_truthful"].payment(1) == pytest.approx(9.0)
    ours_gain = utility(outcomes["ours_deviated"]) - utility(
        outcomes["ours_truthful"]
    )
    assert ours_gain <= 1e-9
