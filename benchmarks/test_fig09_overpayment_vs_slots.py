"""Fig. 9 — overpayment ratio σ vs. number of slots m.

Paper's claims: the overpayment ratio stays essentially flat as m grows
("modest and stable ... even in the long run"), within roughly
[0.7, 1.0] for its workload.  We assert stability (bounded band, no
trend blow-up); the band's absolute location depends on the unpublished
task value (EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_figure_report, series_means


def test_fig9_overpayment_vs_slots(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig9",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "overpayment_ratio",
        "overpayment ratio stays stable as m grows (paper band ~0.7-1.0)",
    )

    offline = series_means(result, "offline", "overpayment_ratio")
    online = series_means(result, "online", "overpayment_ratio")

    for series in (offline, online):
        # Stability: the spread across the sweep stays small relative to
        # the level, and there is no monotone blow-up.
        assert max(series) - min(series) < 0.35 * max(series)
        assert float(np.mean(series)) > 0.0
    # The ratios live in the same band the paper reports.
    for value in offline + online:
        assert 0.3 <= value <= 1.6
