"""Theorem 6 ablation — empirical competitive ratio of the online
mechanism over many random instances.

The paper states (proof omitted) that the online algorithm is
1/2-competitive for *every* input.  This bench samples hundreds of
random rounds across market regimes and reports the ratio distribution;
the minimum must respect the bound.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import empirical_competitive_ratio
from repro.simulation import WorkloadConfig
from repro.utils.tables import format_table

#: Market regimes: (label, workload).  ν is set above the cost support
#: so every assignment has non-negative weight — the regime in which the
#: paper's "revealing equivalence" step (and hence the bound) applies.
REGIMES = [
    (
        "balanced",
        WorkloadConfig(
            num_slots=15,
            phone_rate=3.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=25.0,
        ),
    ),
    (
        "tight supply",
        WorkloadConfig(
            num_slots=15,
            phone_rate=1.5,
            task_rate=2.5,
            mean_cost=10.0,
            mean_active_length=2,
            task_value=25.0,
        ),
    ),
    (
        "long windows",
        WorkloadConfig(
            num_slots=15,
            phone_rate=2.0,
            task_rate=2.0,
            mean_cost=10.0,
            mean_active_length=6,
            task_value=25.0,
        ),
    ),
]

ROUNDS_PER_REGIME = 100


def _measure():
    rows = []
    overall_min = 1.0
    for label, workload in REGIMES:
        ratios = []
        for seed in range(ROUNDS_PER_REGIME):
            scenario = workload.generate(seed=seed)
            ratio = empirical_competitive_ratio(
                scenario.truthful_bids(), scenario.schedule
            )
            if ratio is not None:
                ratios.append(ratio)
        rows.append(
            [
                label,
                len(ratios),
                float(np.min(ratios)),
                float(np.mean(ratios)),
                float(np.max(ratios)),
            ]
        )
        overall_min = min(overall_min, float(np.min(ratios)))
    return rows, overall_min


def test_competitive_ratio_bound(benchmark):
    rows, overall_min = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["regime", "rounds", "min ratio", "mean ratio", "max ratio"],
            rows,
            title="Theorem 6: empirical competitive ratio (bound: 0.5)",
        )
    )
    assert overall_min >= 0.5 - 1e-9
    for row in rows:
        assert row[4] <= 1.0 + 1e-9  # never beats the optimum
