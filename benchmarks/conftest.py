"""Shared helpers for the figure-reproduction benches.

Each bench regenerates one table or figure of the paper's evaluation
(Section VI), prints the measured series next to the paper's qualitative
claim, and asserts the *shape* (who wins, monotonicity, stability) — not
absolute numbers, which depend on the unpublished task value ν and cost
distribution shape (see EXPERIMENTS.md).

Benches run the sweep once inside ``benchmark.pedantic`` so that
``pytest benchmarks/ --benchmark-only`` both times the harness and emits
the reproduction report.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro import obs
from repro.experiments import figure_spec, render_sweep_table, run_sweep
from repro.experiments.report import render_sweep_chart

#: Repetitions per sweep point in bench runs — enough to average noise,
#: small enough to keep the full bench suite fast.
BENCH_REPETITIONS = 5
BENCH_SEED = 2014


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        default=None,
        help="export every span/event of the bench session as JSONL",
    )
    parser.addoption(
        "--perf-snapshot",
        default=None,
        help="write a BENCH_<label>.json perf snapshot into this directory",
    )


@pytest.fixture(autouse=True, scope="session")
def _bench_telemetry(request):
    """Trace the whole bench session when CI asks for artifacts.

    With neither option given this fixture installs nothing, so plain
    ``pytest benchmarks/`` keeps measuring the untraced fast path.
    """
    trace_out = request.config.getoption("--trace-out")
    snapshot_dir = request.config.getoption("--perf-snapshot")
    if trace_out is None and snapshot_dir is None:
        yield None
        return
    sink = obs.JsonlSink(trace_out) if trace_out else obs.NullSink()
    tracer = obs.Tracer(sink=sink)
    with obs.activate(tracer):
        yield tracer
    sink.close()
    if snapshot_dir is not None:
        path = obs.snapshot_path(snapshot_dir, "perf-smoke")
        obs.write_snapshot(
            path,
            obs.build_snapshot(
                tracer,
                label="perf-smoke",
                meta={"suite": "benchmarks", "seed": BENCH_SEED},
            ),
        )


@pytest.fixture(scope="session")
def figure_results():
    """Cache: each figure's sweep runs at most once per bench session."""
    cache = {}

    def run(name: str):
        if name not in cache:
            spec = figure_spec(
                name, repetitions=BENCH_REPETITIONS, base_seed=BENCH_SEED
            )
            cache[name] = run_sweep(spec)
        return cache[name]

    return run


def print_figure_report(result, metric: str, paper_claim: str) -> None:
    """Emit the measured table + chart and the paper's expected shape."""
    print()
    print(render_sweep_table(result, metric))
    print()
    print(render_sweep_chart(result, metric))
    print()
    print(f"paper claim: {paper_claim}")


def series_means(result, label: str, metric: str) -> List[float]:
    """Mean series of one mechanism over the sweep values."""
    return [value for _, value in result.series(label, metric)]


def assert_increasing(values: Sequence[float], tolerance: float = 0.0) -> None:
    """Assert a series trends upward end-to-end (noise-tolerant)."""
    assert values[-1] > values[0] * (1.0 - tolerance), values


def assert_decreasing(values: Sequence[float]) -> None:
    """Assert a series trends downward end-to-end."""
    assert values[-1] < values[0], values


def assert_stable(
    values: Sequence[float], low: float, high: float
) -> None:
    """Assert every point of a series stays inside ``[low, high]``."""
    for value in values:
        assert low <= value <= high, (values, low, high)
