"""Fig. 7 — social welfare ω vs. smartphone arrival rate λ.

Paper's claims: welfare increases when the arrival rate of smartphones
goes up (more phones ⇒ more likely to hire cheap ones), and the offline
mechanism stays above the online one.
"""

from __future__ import annotations

from benchmarks.conftest import (
    assert_increasing,
    print_figure_report,
    series_means,
)


def test_fig7_welfare_vs_arrival_rate(benchmark, figure_results):
    result = benchmark.pedantic(
        figure_results, args=("fig7",), rounds=1, iterations=1
    )
    print_figure_report(
        result,
        "welfare",
        "welfare increases with λ; offline > online",
    )

    offline = series_means(result, "offline", "welfare")
    online = series_means(result, "online", "welfare")

    assert_increasing(offline)
    assert_increasing(online)
    for off, on in zip(offline, online):
        assert off >= on - 1e-9
