#!/usr/bin/env python
"""Heterogeneous sensing hardware (the typed-task extension).

The paper assumes every phone can serve every sensing task; a real
campaign mixes microphones (noise), gas sensors (air quality), and
cameras (road conditions), and not every phone carries every sensor.
This example builds a mixed campaign, runs the capability-aware
mechanisms from ``repro.extensions``, and shows (a) allocations respect
hardware, (b) the price of hardware scarcity, and (c) truthfulness
survives the restriction.

Run:  python examples/heterogeneous_sensors.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OfflineVCGMechanism,
    SimulationEngine,
    WorkloadConfig,
    audit_truthfulness,
)
from repro.extensions import (
    TypedOfflineVCGMechanism,
    TypedOnlineGreedyMechanism,
    generate_capability_model,
)
from repro.extensions.capabilities import check_typed_outcome
from repro.utils.tables import format_table

KINDS = ("noise", "air-quality", "road-photo")

WORKLOAD = WorkloadConfig(
    num_slots=12,
    phone_rate=4.0,
    task_rate=2.0,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=25.0,
)


def main() -> None:
    scenario = WORKLOAD.generate(seed=5)
    rng = np.random.default_rng(5)
    model = generate_capability_model(
        scenario.schedule,
        [p.phone_id for p in scenario.profiles],
        KINDS,
        rng,
        capability_probability=0.5,
    )

    kind_counts = {}
    for task in scenario.schedule:
        kind = model.kind_of(task)
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
    print(
        format_table(
            ["task kind", "tasks"],
            sorted(kind_counts.items()),
            title="The campaign's sensing mix",
        )
    )
    print()

    engine = SimulationEngine()
    typed_offline = engine.run(TypedOfflineVCGMechanism(model), scenario)
    typed_online = engine.run(TypedOnlineGreedyMechanism(model), scenario)
    base_offline = engine.run(OfflineVCGMechanism(), scenario)

    # Allocations respect hardware (raises on violation).
    check_typed_outcome(typed_offline.outcome, model)
    check_typed_outcome(typed_online.outcome, model)

    print(
        format_table(
            ["mechanism", "welfare", "spend", "tasks served"],
            [
                [
                    "base offline (ignores hardware!)",
                    base_offline.true_welfare,
                    base_offline.total_payment,
                    base_offline.tasks_served,
                ],
                [
                    "typed offline",
                    typed_offline.true_welfare,
                    typed_offline.total_payment,
                    typed_offline.tasks_served,
                ],
                [
                    "typed online",
                    typed_online.true_welfare,
                    typed_online.total_payment,
                    typed_online.tasks_served,
                ],
            ],
            title="The price of hardware constraints (coverage 0.5)",
        )
    )
    print(
        "\nThe base mechanism's welfare is an infeasible upper bound — "
        "it happily\nassigns an air-quality reading to a phone without "
        "a gas sensor.  The typed\nmechanisms stay feasible and pay the "
        "scarcity premium instead.\n"
    )

    report = audit_truthfulness(
        TypedOnlineGreedyMechanism(model),
        scenario,
        np.random.default_rng(0),
        max_phones=8,
    )
    print(
        f"truthfulness audit of the typed online mechanism: "
        f"{report.deviations_tested} deviations tested, "
        f"{len(report.violations)} profitable "
        f"({'PASS' if report.passed else 'FAIL'})"
    )


if __name__ == "__main__":
    main()
