#!/usr/bin/env python
"""Regenerate all six evaluation figures of the paper in one run.

For each of Figs. 6-11 this runs the declarative sweep spec, prints the
mean ± CI table and an ASCII chart, and writes a CSV next to this
script (``paper_figures_out/figN.csv``) for external plotting.

Run:  python examples/paper_figures.py [--repetitions N]
(defaults to 5 repetitions per sweep point; ~1 minute total)
"""

from __future__ import annotations

import argparse
import pathlib

from repro.experiments import (
    figure_spec,
    list_figures,
    render_sweep_csv,
    render_sweep_table,
    run_sweep,
)
from repro.experiments.figures import FIGURE_METRIC
from repro.experiments.report import render_sweep_chart

PAPER_CLAIMS = {
    "fig6": "welfare increases with m; offline > online, gap expands",
    "fig7": "welfare increases with smartphone arrival rate λ",
    "fig8": "welfare decreases with the average of real costs",
    "fig9": "overpayment ratio stable in m",
    "fig10": "overpayment ratio stable in λ; online slightly decreasing",
    "fig11": "offline overpayment ratio above online",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions",
        type=int,
        default=5,
        help="seeded repetitions per sweep point (default 5)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "paper_figures_out",
        help="directory for CSV output",
    )
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    # Figs. 6/9, 7/10, 8/11 share sweeps; run each sweep once.
    cache = {}
    for name in list_figures():
        spec = figure_spec(name, repetitions=args.repetitions)
        key = (spec.param, spec.values)
        if key not in cache:
            print(f"running sweep over {spec.param} ...")
            cache[key] = run_sweep(spec)
        result = cache[key]
        metric = FIGURE_METRIC[name]

        print()
        print("=" * 72)
        print(f"{name.upper()}  —  {spec.title}")
        print(f"paper: {PAPER_CLAIMS[name]}")
        print("=" * 72)
        print(render_sweep_table(result, metric, title=""))
        print()
        print(render_sweep_chart(result, metric))

        csv_path = args.out / f"{name}.csv"
        csv_path.write_text(render_sweep_csv(result, metric))
        print(f"\n(csv written to {csv_path})")


if __name__ == "__main__":
    main()
