#!/usr/bin/env python
"""Strategic smartphones: does lying ever pay?

Puts a population of misreporting agents (cost inflators, arrival
delayers, early leavers, random deviants) against three mechanisms and
measures what each *individual* lie earns relative to truth-telling,
using the library's truthfulness auditor and best-response search.

Expected picture (Theorems 1 and 4): against the paper's two mechanisms
no lie helps; against the per-slot second-price baseline the auditor
rediscovers the paper's Fig. 5 deviation.

Run:  python examples/strategic_agents.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OfflineVCGMechanism,
    OnlineGreedyMechanism,
    SecondPriceSlotMechanism,
    audit_truthfulness,
    best_response_search,
)
from repro.simulation import DeterministicArrivals, WorkloadConfig
from repro.utils.tables import format_table


def main() -> None:
    # Saturated market: supply always exceeds demand, the regime the
    # paper's Theorem 4 covers (see DESIGN.md §7 for the sparse case).
    workload = WorkloadConfig(
        num_slots=8,
        phone_rate=5.0,
        task_rate=1.0,
        mean_cost=10.0,
        mean_active_length=3,
        task_value=25.0,
    )
    scenario = workload.generate(
        seed=0,
        phone_arrivals=DeterministicArrivals(5),
        task_arrivals=DeterministicArrivals(1),
    )
    print(
        f"Market: {scenario.num_phones} phones, {scenario.num_tasks} "
        f"tasks over {scenario.num_slots} slots\n"
    )

    mechanisms = [
        OfflineVCGMechanism(),
        OnlineGreedyMechanism(),
        SecondPriceSlotMechanism(),
    ]

    # ------------------------------------------------------------------
    # 1. The deviation battery (one lie per misreport dimension).
    # ------------------------------------------------------------------
    rows = []
    for mechanism in mechanisms:
        report = audit_truthfulness(
            mechanism,
            scenario,
            np.random.default_rng(1),
            max_phones=15,
        )
        best_gain = max(
            (v.gain for v in report.violations), default=0.0
        )
        rows.append(
            [
                mechanism.name,
                report.deviations_tested,
                len(report.violations),
                best_gain,
            ]
        )
    print(
        format_table(
            [
                "mechanism",
                "lies tested",
                "profitable lies",
                "best gain found",
            ],
            rows,
            title="Unilateral-deviation audit",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 2. Best-response search for a handful of phones.
    # ------------------------------------------------------------------
    bids = scenario.truthful_bids()
    sample = list(scenario.profiles[:5])
    rows = []
    for mechanism in mechanisms:
        profitable = 0
        biggest = 0.0
        for profile in sample:
            result = best_response_search(
                mechanism, profile, bids, scenario.schedule, max_windows=4
            )
            if result.profitable:
                profitable += 1
                biggest = max(biggest, result.gain)
        rows.append([mechanism.name, len(sample), profitable, biggest])
    print(
        format_table(
            [
                "mechanism",
                "phones searched",
                "phones with a best response ≠ truth",
                "largest gain",
            ],
            rows,
            title="Exhaustive best-response search (grid over windows x costs)",
        )
    )
    print(
        "\nTruth-telling is a dominant strategy under both of the "
        "paper's mechanisms;\nthe second-price strawman is manipulable, "
        "as Fig. 5 warns.\n"
    )

    # ------------------------------------------------------------------
    # 3. The utility landscape of one phone: flat at truth (ours) vs.
    #    a profitable bump (second price), on the paper's own example.
    # ------------------------------------------------------------------
    from repro.metrics import arrival_landscape
    from repro.simulation.paper_example import (
        paper_example_bids,
        paper_example_profiles,
        paper_example_schedule,
    )

    phone1 = next(
        p for p in paper_example_profiles() if p.phone_id == 1
    )
    rows = []
    for mechanism in (OnlineGreedyMechanism(), SecondPriceSlotMechanism()):
        landscape = arrival_landscape(
            mechanism,
            phone1,
            paper_example_bids(),
            paper_example_schedule(),
        )
        utilities = {
            p.bid.arrival: round(p.utility, 2) for p in landscape.points
        }
        rows.append(
            [
                mechanism.name,
                utilities.get(2, 0.0),
                utilities.get(3, 0.0),
                utilities.get(4, 0.0),
                utilities.get(5, 0.0),
                "flat" if landscape.is_flat_at_truth else "bump!",
            ]
        )
    print(
        format_table(
            [
                "mechanism",
                "claim slot 2 (truth)",
                "slot 3",
                "slot 4",
                "slot 5",
                "landscape",
            ],
            rows,
            title="Smartphone 1's utility vs. its claimed arrival "
            "(Fig. 4/5 instance)",
        )
    )


if __name__ == "__main__":
    main()
