#!/usr/bin/env python
"""Crash-consistent journaling: kill a round mid-write, recover, resume.

A mobile-crowdsourcing platform is long-running infrastructure: bids,
dropouts, and task announcements arrive over hours, and the process
operating the auction can die at any instant — including halfway
through writing its own log.  This example shows the repo's durability
layer end to end:

1. run a fault-injected round through a :class:`JournaledPlatform`
   that journals every command to a write-ahead log *before* applying
   it (hash-chained, fsync'd JSONL segments);
2. kill the process (simulated) after an arbitrary journal write, with
   the final record torn in half — the classic crash signature;
3. recover: re-open the journal (the torn tail is detected via the
   hash chain and truncated), deterministically replay the surviving
   prefix, and resume the round to completion;
4. verify the resumed outcome is **byte-identical** to the outcome of
   an uninterrupted run, and that an independent replay of the final
   journal reproduces it again.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

import pickle
import tempfile
from pathlib import Path

from repro import WorkloadConfig
from repro.durability import (
    Journal,
    JournaledPlatform,
    execute_commands,
    replay_journal,
    resume_round,
    round_commands,
    scan_journal,
)
from repro.faults import (
    CrashController,
    CrashPlan,
    FaultConfig,
    FaultInjector,
    SimulatedCrash,
)
from repro.faults.recovery import apply_bid_faults

WORKLOAD = WorkloadConfig(
    num_slots=6,
    phone_rate=2.5,
    task_rate=1.5,
    mean_cost=10.0,
    mean_active_length=3,
    task_value=20.0,
)

FAULTS = FaultConfig(dropout_prob=0.25, task_failure_prob=0.2)

SEED = 7
CRASH_AFTER_WRITES = 23  # die mid-round, tearing the 23rd record


def build_round():
    """The faulty round under test: scenario, fault plan, commands."""
    scenario = WORKLOAD.generate(seed=SEED)
    plan = FaultInjector(FAULTS).plan(scenario, seed=SEED)
    bids, lost, _ = apply_bid_faults(list(scenario.truthful_bids()), plan)
    commands = round_commands(bids, scenario, plan)
    print(
        f"round: {scenario.num_phones} phones, {scenario.num_tasks} "
        f"tasks, {scenario.num_slots} slots; {len(lost)} bids lost, "
        f"{len(commands)} platform commands"
    )
    return scenario, plan, commands


def run_round(directory, scenario, plan, commands, crash_hook=None):
    """Drive the round through a journaling platform."""
    journal = Journal(directory, crash_hook=crash_hook)
    try:
        platform = JournaledPlatform(
            journal,
            num_slots=scenario.num_slots,
            max_reassignments=plan.config.max_reassignments,
        )
        outcome = execute_commands(platform, commands)
    finally:
        journal.close()
    return outcome


def main(journal_root: Path) -> None:
    scenario, plan, commands = build_round()

    # -- 1. the uninterrupted reference run --------------------------------
    reference = run_round(
        journal_root / "reference", scenario, plan, commands
    )
    print(
        f"\nreference run: {len(reference.winners)} winners, total "
        f"payment {reference.total_payment:.2f}"
    )

    # -- 2. the crashing run ----------------------------------------------
    crash_dir = journal_root / "crashed"
    controller = CrashController(
        CrashPlan(
            after_writes=CRASH_AFTER_WRITES, mode="torn", torn_fraction=0.5
        )
    )
    try:
        run_round(crash_dir, scenario, plan, commands, crash_hook=controller)
        raise SystemExit("the simulated crash never fired")
    except SimulatedCrash:
        pass
    scan = scan_journal(crash_dir)
    print(
        f"\nsimulated kill after write {CRASH_AFTER_WRITES}: journal "
        f"holds {len(scan.records)} intact records"
        + (
            f" plus a torn tail ({scan.truncated_bytes} bytes, "
            f"{scan.torn_reason})"
            if scan.torn
            else ""
        )
    )

    # -- 3. recover and resume --------------------------------------------
    with Journal(crash_dir) as journal:  # open() truncates the torn tail
        result = resume_round(
            journal,
            commands,
            num_slots=scenario.num_slots,
            max_reassignments=plan.config.max_reassignments,
        )
    print(
        f"recovered: replayed {result.replayed_commands} journaled "
        f"commands, executed the remaining {result.executed_commands}"
    )

    # -- 4. verify ---------------------------------------------------------
    identical = pickle.dumps(result.outcome) == pickle.dumps(reference)
    print(
        f"\nresumed outcome byte-identical to uninterrupted run: "
        f"{identical}"
    )
    if not identical:
        raise SystemExit("recovery diverged from the reference run")

    replayed = replay_journal(crash_dir)
    assert pickle.dumps(replayed.outcome) == pickle.dumps(reference)
    print(
        f"independent replay of the recovered journal "
        f"({len(replayed.records)} records) reproduces it byte-for-byte"
    )
    print(
        "\ninspect any journal directory with:\n"
        "  python -m repro verify-log <journal_dir>\n"
        "  python -m repro replay <journal_dir>"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        main(Path(tmp))
