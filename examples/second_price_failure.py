#!/usr/bin/env python
"""The paper's Fig. 4 / Fig. 5 worked example, end to end.

Walks the 7-smartphone, 5-slot instance the paper uses throughout
Sections IV-V:

1. the online greedy allocation of Fig. 4 (who wins each slot),
2. the Algorithm-2 payment walk-through of Section V-C (Smartphone 1 is
   paid 9),
3. the Fig. 5 counterexample: under per-slot second-price payments,
   Smartphone 1 gains 4 by delaying its reported arrival by two slots —
   and under our online mechanism the same lie does not pay.

Run:  python examples/second_price_failure.py
"""

from __future__ import annotations

from repro import OnlineGreedyMechanism, SecondPriceSlotMechanism
from repro.simulation.paper_example import (
    paper_example_bids,
    paper_example_profiles,
    paper_example_schedule,
)
from repro.utils.tables import format_table


def main() -> None:
    schedule = paper_example_schedule()
    truthful = paper_example_bids()
    profiles = {p.phone_id: p for p in paper_example_profiles()}

    print(
        format_table(
            ["phone", "active window", "real cost"],
            [
                [p.phone_id, f"[{p.arrival}, {p.departure}]", p.cost]
                for p in paper_example_profiles()
            ],
            title="The 7 smartphones of Fig. 4 (one task per slot, 5 slots)",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 1. Fig. 4: the online greedy allocation.
    # ------------------------------------------------------------------
    ours = OnlineGreedyMechanism()
    outcome = ours.run(truthful, schedule)
    rows = [
        [schedule.task(task_id).slot, phone_id,
         profiles[phone_id].cost, outcome.payment(phone_id)]
        for task_id, phone_id in sorted(outcome.allocation.items())
    ]
    print(
        format_table(
            ["slot", "winner", "claimed cost", "Algorithm-2 payment"],
            rows,
            title="Fig. 4: greedy allocation + critical-value payments",
        )
    )
    print(
        f"\nSection V-C check: Smartphone 1 is paid "
        f"{outcome.payment(1):g} (paper: 9)\n"
    )

    # ------------------------------------------------------------------
    # 2. Fig. 5: the arrival-delay deviation.
    # ------------------------------------------------------------------
    deviated = [
        b.with_window(4, 5) if b.phone_id == 1 else b for b in truthful
    ]
    second_price = SecondPriceSlotMechanism()

    def utility(mechanism, bids):
        out = mechanism.run(bids, schedule)
        cost = profiles[1].cost if out.is_winner(1) else 0.0
        return out.payment(1) - cost

    rows = []
    for label, mechanism in [
        ("second-price-slot", second_price),
        ("online-greedy (ours)", ours),
    ]:
        truthful_u = utility(mechanism, truthful)
        deviated_u = utility(mechanism, deviated)
        rows.append(
            [label, truthful_u, deviated_u, deviated_u - truthful_u]
        )
    print(
        format_table(
            [
                "mechanism",
                "utility (truthful)",
                "utility (delay arrival by 2)",
                "gain from lying",
            ],
            rows,
            title="Fig. 5: Smartphone 1 misreports its arrival",
        )
    )
    print(
        "\nThe second-price rule rewards the lie by 4 (the paper's "
        "number);\nthe critical-value payment scheme makes it useless."
    )


if __name__ == "__main__":
    main()
