#!/usr/bin/env python
"""Traffic-delay probing (the paper's VTrack motivation [4]).

A navigation service buys travel-time probes from commuter phones.  The
fleet is heterogeneous — taxis are cheap to task (always driving),
commuters mid-range, occasional drivers expensive — and the service
plans capacity offline (yesterday's schedule is known) but must operate
online.  This example:

1. builds the heterogeneous population from profiles directly,
2. compares the offline optimal plan against live online operation,
3. measures the empirical competitive ratio across many days against
   Theorem 6's 1/2 bound.

Run:  python examples/traffic_monitoring.py
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import (
    OfflineVCGMechanism,
    OnlineGreedyMechanism,
    SimulationEngine,
    empirical_competitive_ratio,
)
from repro.model import SmartphoneProfile, TaskSchedule
from repro.simulation import Scenario
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table

NUM_SLOTS = 30  # half-day in 15-minute slots
PROBE_VALUE = 18.0

#: (fleet, per-slot arrival rate, mean window, cost range)
FLEET_SEGMENTS = [
    ("taxi", 1.2, 10, (1.0, 4.0)),
    ("commuter", 2.5, 4, (3.0, 9.0)),
    ("occasional", 1.0, 2, (8.0, 16.0)),
]


def build_scenario(seed: int) -> Scenario:
    streams = RngStreams(seed)
    profiles: List[SmartphoneProfile] = []
    phone_id = 0
    for segment, rate, mean_window, (low, high) in FLEET_SEGMENTS:
        rng = streams.get(f"fleet-{segment}")
        for slot in range(1, NUM_SLOTS + 1):
            for _ in range(int(rng.poisson(rate))):
                window = max(1, int(rng.integers(1, 2 * mean_window)))
                profiles.append(
                    SmartphoneProfile(
                        phone_id=phone_id,
                        arrival=slot,
                        departure=min(slot + window - 1, NUM_SLOTS),
                        cost=float(rng.uniform(low, high)),
                    )
                )
                phone_id += 1
    task_rng = streams.get("probes")
    counts = [int(task_rng.poisson(2.5)) for _ in range(NUM_SLOTS)]
    schedule = TaskSchedule.from_counts(counts, value=PROBE_VALUE)
    return Scenario(profiles, schedule, metadata={"seed": seed})


def main() -> None:
    engine = SimulationEngine()
    offline = OfflineVCGMechanism()
    online = OnlineGreedyMechanism(reserve_price=True)

    # ------------------------------------------------------------------
    # 1. One day: planned (offline) vs. live (online).
    # ------------------------------------------------------------------
    scenario = build_scenario(seed=1)
    planned = engine.run(offline, scenario)
    live = engine.run(online, scenario)
    print(
        f"Fleet: {scenario.num_phones} phones; "
        f"{scenario.num_tasks} probe requests over {NUM_SLOTS} slots\n"
    )
    print(
        format_table(
            ["operation", "welfare", "spend", "probes served"],
            [
                ["offline plan (VCG)", planned.true_welfare,
                 planned.total_payment, planned.tasks_served],
                ["live online (greedy)", live.true_welfare,
                 live.total_payment, live.tasks_served],
            ],
            title="Planned vs. live operation, same day",
        )
    )

    # Which segments end up hired?
    def segment_of(cost: float) -> str:
        for segment, _, _, (low, high) in FLEET_SEGMENTS:
            if low <= cost <= high:
                return segment
        return "?"

    hired = {}
    for phone_id in live.outcome.winners:
        segment = segment_of(scenario.profile(phone_id).cost)
        hired[segment] = hired.get(segment, 0) + 1
    print()
    print(
        format_table(
            ["fleet segment", "phones hired (online)"],
            sorted(hired.items()),
        )
    )

    # ------------------------------------------------------------------
    # 2. Theorem 6 over many days.
    # ------------------------------------------------------------------
    ratios = []
    for seed in range(40):
        day = build_scenario(seed=seed)
        ratio = empirical_competitive_ratio(
            day.truthful_bids(), day.schedule
        )
        if ratio is not None:
            ratios.append(ratio)
    print()
    print(
        format_table(
            ["days", "min ratio", "mean ratio", "Theorem 6 bound"],
            [[len(ratios), float(np.min(ratios)),
              float(np.mean(ratios)), 0.5]],
            title="Empirical competitive ratio, online vs. offline optimum",
        )
    )
    assert min(ratios) >= 0.5 - 1e-9


if __name__ == "__main__":
    main()
