#!/usr/bin/env python
"""Urban noise-mapping campaign (the paper's Ear-Phone motivation [2]).

A city runs a crowdsourced noise-mapping service: sensing queries spike
during the morning and evening rush hours, while commuter phones drift
in and out of availability.  The platform must decide, slot by slot,
which phone takes which measurement and what to pay — the exact setting
of the paper's online mechanism.

This example builds the rush-hour workload from the library's arrival
primitives (a trace-driven task process, Poisson phones), runs the
online mechanism through the *incremental* platform (events included),
and compares it against FIFO dispatch and a posted price.

Run:  python examples/noise_mapping.py
"""

from __future__ import annotations

from repro import (
    FifoMechanism,
    FixedPriceMechanism,
    OnlineGreedyMechanism,
    SimulationEngine,
    WorkloadConfig,
    replay_scenario,
)
from repro.auction.events import PaymentSettled, TaskAllocated
from repro.simulation import PoissonArrivals, TraceArrivals, UniformCosts
from repro.utils.tables import format_table

#: 24 slots = one day in hour slots; queries spike at 8-9 am and 5-7 pm.
RUSH_HOUR_QUERIES = [
    0, 0, 0, 0, 0, 1,        # night
    2, 5, 6, 3, 2, 2,        # morning rush around slots 8-9
    2, 2, 2, 2, 5, 6,        # evening rush from slot 17
    5, 3, 1, 1, 0, 0,        # winding down
]


def build_scenario(seed: int = 3):
    """One day of the campaign."""
    workload = WorkloadConfig(
        num_slots=24,
        phone_rate=4.0,          # commuter phones joining per hour
        task_rate=2.0,           # overridden by the trace below
        mean_cost=8.0,           # battery + data cost of one measurement
        mean_active_length=3,    # phones idle for ~3 hours
        task_value=20.0,         # value of one noise sample to the city
    )
    return workload.generate(
        seed=seed,
        phone_arrivals=PoissonArrivals(4.0),
        task_arrivals=TraceArrivals(RUSH_HOUR_QUERIES),
        cost_distribution=UniformCosts(2.0, 14.0),
    )


def main() -> None:
    scenario = build_scenario()
    print(
        f"Noise-mapping day: {scenario.num_phones} commuter phones, "
        f"{scenario.num_tasks} measurement queries over 24 hour-slots\n"
    )

    # ------------------------------------------------------------------
    # 1. Live operation through the incremental platform.
    # ------------------------------------------------------------------
    outcome, events = replay_scenario(scenario)
    allocations = [e for e in events if isinstance(e, TaskAllocated)]
    settlements = [e for e in events if isinstance(e, PaymentSettled)]
    print("First platform events of the morning rush:")
    shown = 0
    for event in events:
        if isinstance(event, (TaskAllocated, PaymentSettled)):
            print("  " + event.describe())
            shown += 1
        if shown == 8:
            break
    print(
        f"  ... {len(allocations)} allocations, {len(settlements)} "
        f"settlements in total\n"
    )

    # ------------------------------------------------------------------
    # 2. Mechanism comparison on the same day.
    # ------------------------------------------------------------------
    engine = SimulationEngine()
    mechanisms = [
        OnlineGreedyMechanism(),
        FifoMechanism(),
        FixedPriceMechanism(price=8.0),
    ]
    rows = []
    for mechanism in mechanisms:
        result = engine.run(mechanism, scenario)
        rows.append(
            [
                mechanism.name,
                result.true_welfare,
                result.total_payment,
                f"{100 * result.service_rate:.0f}%",
                "yes" if mechanism.is_truthful else "no",
            ]
        )
    print(
        format_table(
            [
                "mechanism",
                "welfare",
                "city spend",
                "queries served",
                "truthful",
            ],
            rows,
            title="One day of noise mapping, three dispatch policies",
        )
    )
    print(
        "\nFIFO ignores costs (it hires whoever waited longest at their "
        "claimed price);\nthe posted price can't adapt to rush-hour "
        "scarcity.  The auction serves the\nqueries cost-aware and stays "
        "truthful."
    )


if __name__ == "__main__":
    main()
