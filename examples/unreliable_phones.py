#!/usr/bin/env python
"""How unreliable phones degrade the crowdsourcing market.

The paper's model assumes every winner delivers its sensing task.  This
example drops that assumption: phones drop out before their reported
departure or simply fail to deliver, the platform withholds their
payments and reallocates the task to the next cheapest active phone
(bounded retry chain), and we measure what reliability costs — task
completion rate and social-welfare degradation against a *paired*
fault-free run of the exact same bids — as the dropout probability
rises.

Run:  python examples/unreliable_phones.py
"""

from __future__ import annotations

from repro import WorkloadConfig
from repro.experiments.ascii_plot import ascii_chart
from repro.faults import FaultConfig, run_with_faults
from repro.utils.tables import format_table

WORKLOAD = WorkloadConfig(
    num_slots=25,
    phone_rate=5.0,
    task_rate=2.5,
    mean_cost=12.0,
    mean_active_length=4,
    task_value=25.0,
)

DROPOUT_PROBS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SEEDS = range(5)


def main() -> None:
    scenarios = [WORKLOAD.generate(seed=seed) for seed in SEEDS]

    rows = []
    completion_curve = []
    welfare_curve = []
    for dropout in DROPOUT_PROBS:
        config = FaultConfig(
            dropout_prob=dropout,
            task_failure_prob=0.05,
        )
        completion = []
        recovered = []
        degradation = []
        withheld = []
        for seed, scenario in zip(SEEDS, scenarios):
            run = run_with_faults(
                scenario, config, seed=seed, paired=True
            )
            reliability = run.reliability
            completion.append(reliability.completion_rate)
            recovered.append(reliability.recovered_fraction)
            degradation.append(reliability.welfare_degradation)
            withheld.append(reliability.payments_withheld)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        rows.append(
            [
                f"{dropout:.1f}",
                f"{100 * mean(completion):.1f}%",
                f"{100 * mean(recovered):.1f}%",
                f"{100 * mean(degradation):.1f}%",
                f"{mean(withheld):.1f}",
            ]
        )
        completion_curve.append((dropout, mean(completion)))
        welfare_curve.append((dropout, 1.0 - mean(degradation)))

    print(
        format_table(
            [
                "dropout prob",
                "completion",
                "recovered",
                "welfare lost",
                "payments withheld",
            ],
            rows,
            title=(
                "Reliability vs. dropout probability "
                f"(mean over {len(list(SEEDS))} seeded rounds, "
                "paired fault-free baseline)"
            ),
        )
    )
    print()
    print(
        ascii_chart(
            {
                "completion rate": completion_curve,
                "welfare retained": welfare_curve,
            },
            title="Reliability vs. dropout probability (x: prob, y: rate)",
        )
    )
    print(
        "\nEvery recovered outcome above passed the fault-aware "
        "sanitizer: feasibility (4)-(6), IR for every paid winner, and "
        "zero payment to any phone that failed to deliver."
    )


if __name__ == "__main__":
    main()
