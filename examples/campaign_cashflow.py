#!/usr/bin/env python
"""Round-by-round operation and within-round cash flow.

Section III-B runs the reverse auction "round by round"; this example
operates a week-long campaign (7 rounds) of the online mechanism, with
losers of one round re-entering the next, and then zooms into a single
round's slot-level dynamics: when welfare is earned vs. when cash is
actually paid out (payments settle at reported departures), how deep the
phone pool is, and how long winners waited.

Run:  python examples/campaign_cashflow.py
"""

from __future__ import annotations

from repro import OnlineGreedyMechanism, WorkloadConfig, run_campaign
from repro.auction.multi_round import RETRY_LOSERS
from repro.experiments.ascii_plot import ascii_chart
from repro.metrics import (
    cumulative,
    payments_by_slot,
    pool_occupancy,
    welfare_by_slot,
    winner_waiting_stats,
)
from repro.simulation import SimulationEngine
from repro.utils.tables import format_table

WORKLOAD = WorkloadConfig(
    num_slots=20,
    phone_rate=4.0,
    task_rate=2.5,
    mean_cost=12.0,
    mean_active_length=4,
    task_value=25.0,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A week of rounds, losers re-entering.
    # ------------------------------------------------------------------
    campaign = run_campaign(
        OnlineGreedyMechanism(),
        WORKLOAD,
        num_rounds=7,
        seed=11,
        retry_policy=RETRY_LOSERS,
    )
    rows = [
        [
            day + 1,
            result.true_welfare,
            result.total_payment,
            result.tasks_served,
            f"{100 * result.service_rate:.0f}%",
        ]
        for day, result in enumerate(campaign.rounds)
    ]
    print(
        format_table(
            ["day", "welfare", "spend", "tasks", "service"],
            rows,
            title="A week of crowdsourcing (losers retry the next day)",
        )
    )
    print(
        f"\nweek totals: welfare {campaign.total_welfare:.0f}, spend "
        f"{campaign.total_payment:.0f}; {campaign.returning_phones} "
        f"phones returned after losing a round\n"
    )

    # ------------------------------------------------------------------
    # 2. Inside one round: earned vs. paid, per slot.
    # ------------------------------------------------------------------
    scenario = WORKLOAD.generate(seed=11)
    result = SimulationEngine().run(OnlineGreedyMechanism(), scenario)
    earned = cumulative(welfare_by_slot(result.outcome, scenario))
    paid = cumulative(payments_by_slot(result.outcome))
    slots = list(range(1, scenario.num_slots + 1))
    print(
        ascii_chart(
            {
                "welfare earned (cum.)": list(zip(slots, earned)),
                "cash paid out (cum.)": list(zip(slots, paid)),
            },
            title="Within one round: payments settle at departures, so "
            "cash lags welfare",
            width=64,
            height=14,
        )
    )
    print()

    occupancy = pool_occupancy(scenario)
    waiting = winner_waiting_stats(result.outcome, scenario)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["peak pool occupancy", max(occupancy)],
                ["mean pool occupancy", sum(occupancy) / len(occupancy)],
                ["mean winner waiting time (slots)", waiting.mean_wait],
                ["max winner waiting time (slots)", waiting.max_wait],
            ],
            title="Supply-side dynamics of the round",
        )
    )


if __name__ == "__main__":
    main()
