#!/usr/bin/env python
"""Quickstart: one auction round under both of the paper's mechanisms.

Generates the Table I default workload, runs the offline optimal VCG
mechanism and the online greedy mechanism on the same truthful bids, and
prints the headline metrics plus a settlement table for the first few
winners.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    OfflineVCGMechanism,
    OnlineGreedyMechanism,
    SimulationEngine,
    WorkloadConfig,
)
from repro.utils.tables import format_table


def main() -> None:
    # 1. A random round with the paper's default parameters (Table I):
    #    λ = 6 phones/slot, λ_t = 3 tasks/slot, c̄ = 25, m = 50 slots.
    workload = WorkloadConfig.paper_default()
    scenario = workload.generate(seed=7)
    print(
        f"Round: {scenario.num_phones} smartphones, "
        f"{scenario.num_tasks} sensing tasks, "
        f"{scenario.num_slots} slots, task value ν = "
        f"{workload.task_value:g}"
    )
    print()

    # 2. Run both mechanisms on the same truthful bids.
    engine = SimulationEngine()
    results = [
        engine.run(OfflineVCGMechanism(), scenario),
        engine.run(OnlineGreedyMechanism(), scenario),
    ]

    # 3. Headline metrics (the paper's two evaluation quantities).
    print(
        format_table(
            [
                "mechanism",
                "social welfare ω",
                "overpayment ratio σ",
                "total payment",
                "tasks served",
            ],
            [
                [
                    r.mechanism_name,
                    r.true_welfare,
                    r.overpayment_ratio,
                    r.total_payment,
                    r.tasks_served,
                ]
                for r in results
            ],
            title="One round, both mechanisms",
        )
    )
    print()

    # 4. Per-phone settlement for the online mechanism's first winners.
    online = results[1]
    rows = []
    for phone_id in online.outcome.winners[:8]:
        profile = scenario.profile(phone_id)
        task = online.outcome.task_of(phone_id)
        rows.append(
            [
                phone_id,
                task.label,
                profile.cost,
                online.outcome.payment(phone_id),
                online.utilities[phone_id],
                online.outcome.payment_slot(phone_id),
            ]
        )
    print(
        format_table(
            [
                "phone",
                "task",
                "real cost",
                "payment",
                "utility",
                "paid in slot",
            ],
            rows,
            title="Online mechanism: first winners (payment at departure)",
        )
    )


if __name__ == "__main__":
    main()
